//! Background flush rounds and LSE advancement (Section III-D).
//!
//! "Every time a disk flush round is initialized, a new candidate LSE
//! (LSE') is selected and data between LSE and LSE' is flushed on
//! every single partition. … After the flush procedure finishes, LSE
//! is eventually updated to LSE'." LSE is only allowed to move once
//! the replication tracker confirms every replica holds the epoch
//! durably and the transaction manager confirms no active reader
//! would be disturbed.
//!
//! A round becomes durable in four syscalls, each of which the crash
//! torture harness can cut: write the `.tmp` file, fsync it, rename
//! it to `round-NNNNNNNN.cbk`, and fsync the directory so the new
//! entry itself survives power loss. Opening a controller on an
//! existing directory *resumes* the chain found on disk — sequence
//! number, flushed-through epoch, and dictionary watermarks — rather
//! than restarting at zero and clobbering `round-00000000.cbk`.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use aosi::{AosiError, Epoch};
use cluster::{NodeId, ReplicationTracker};
use cubrick::Engine;
use obs::{Counter, Gauge, ReportBuilder};

use crate::chain;
use crate::codec::{self, DictDelta, FlushRound, WalError};
use crate::fault::{RealFs, WalFs};

/// What one flush round accomplished.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlushOutcome {
    /// The round's inclusive upper epoch (candidate LSE').
    pub lse_prime: Epoch,
    /// Bytes written to the round file (0 if the round was empty and
    /// skipped).
    pub bytes_written: u64,
    /// Brick deltas persisted.
    pub deltas: usize,
    /// Whether the node's LSE advanced as a result.
    pub lse_advanced: bool,
}

/// Durability-path counters, reported under `[wal.flush]`.
#[derive(Debug, Default)]
struct FlushMetrics {
    rounds_written: Counter,
    bytes_written: Counter,
    file_syncs: Counter,
    dir_syncs: Counter,
    renames: Counter,
    /// Rounds found on disk and resumed at controller open.
    resumed_rounds: Gauge,
}

/// Drives flush rounds for one node.
pub struct FlushController {
    fs: Arc<dyn WalFs>,
    dir: PathBuf,
    node: NodeId,
    next_seq: u64,
    /// Upper bound of the last persisted round (exclusive lower bound
    /// of the next).
    flushed_through: Epoch,
    /// Dictionary lengths already persisted, per `(cube, dim)`: the
    /// next round only ships the new entries.
    dict_watermarks: HashMap<(String, u16), u32>,
    metrics: FlushMetrics,
    skip_dir_sync: bool,
}

impl FlushController {
    /// A controller writing round files into `dir` for `node`,
    /// resuming any round chain already on disk.
    pub fn new(dir: impl Into<PathBuf>, node: NodeId) -> std::io::Result<Self> {
        Self::with_fs(Arc::new(RealFs), dir, node)
    }

    /// Like [`FlushController::new`] but routing every syscall
    /// through `fs` — the torture harness substitutes its simulated
    /// filesystem here.
    pub fn with_fs(
        fs: Arc<dyn WalFs>,
        dir: impl Into<PathBuf>,
        node: NodeId,
    ) -> std::io::Result<Self> {
        let dir = dir.into();
        fs.create_dir_all(&dir)?;
        let scan = chain::scan_chain(fs.as_ref(), &dir, true).map_err(wal_to_io)?;
        let mut dict_watermarks: HashMap<(String, u16), u32> = HashMap::new();
        for r in &scan.prefix {
            for d in &r.round.dictionaries {
                let watermark = dict_watermarks.entry((d.cube.clone(), d.dim)).or_insert(0);
                *watermark = (*watermark).max(d.first_id + d.entries.len() as u32);
            }
        }
        // Files beyond the consistent prefix (partial flushes, stray
        // tmp files, rounds stranded past a hole) are unreachable by
        // recovery; clear them so the resumed chain is unambiguous.
        let mut removed = false;
        for path in &scan.dead_paths {
            fs.remove_file(path)?;
            removed = true;
        }
        if removed {
            fs.sync_dir(&dir)?;
        }
        let metrics = FlushMetrics::default();
        metrics.resumed_rounds.set(scan.prefix.len() as u64);
        Ok(FlushController {
            fs,
            node,
            next_seq: scan.prefix.len() as u64,
            flushed_through: scan.flushed_through(),
            dict_watermarks,
            metrics,
            skip_dir_sync: false,
            dir,
        })
    }

    /// Directory holding this node's round files.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Highest epoch durably flushed by this controller.
    pub fn flushed_through(&self) -> Epoch {
        self.flushed_through
    }

    /// Round files this controller resumed from disk when opened.
    pub fn resumed_rounds(&self) -> u64 {
        self.metrics.resumed_rounds.get()
    }

    /// Reintroduces the restart-clobber bug for the torture-harness
    /// meta-tests: forgets everything resume learned from disk, as
    /// `new` did before the fix.
    #[doc(hidden)]
    pub fn reset_state_for_test(&mut self) {
        self.next_seq = 0;
        self.flushed_through = 0;
        self.dict_watermarks.clear();
    }

    /// Reintroduces the lost-rename bug for the torture-harness
    /// meta-tests: skips the directory fsync after rename, so a
    /// completed round's directory entry does not survive power loss.
    #[doc(hidden)]
    pub fn skip_dir_sync_for_test(&mut self) {
        self.skip_dir_sync = true;
    }

    /// Runs one flush round against `engine` and reports it to
    /// `tracker`; advances the node's LSE if every replica (per the
    /// tracker) is caught up and no active reader blocks it.
    pub fn flush_round(
        &mut self,
        engine: &Engine,
        tracker: &ReplicationTracker,
    ) -> Result<FlushOutcome, WalError> {
        // Candidate LSE': everything committed so far. All
        // transactions at or below LCE are finished by the LCE rule.
        let candidate = engine.manager().lce();
        let mut outcome = FlushOutcome {
            lse_prime: candidate,
            ..Default::default()
        };
        if candidate > self.flushed_through {
            let deltas = engine.export_delta(self.flushed_through, candidate);
            let dictionaries = self.export_dictionaries(engine);
            let round = FlushRound {
                lse: self.flushed_through,
                lse_prime: candidate,
                deltas,
                dictionaries,
            };
            outcome.deltas = round.deltas.len();
            let bytes = codec::encode(&round);
            let path = self.dir.join(format!("round-{:08}.cbk", self.next_seq));
            let tmp = self.dir.join(format!("round-{:08}.tmp", self.next_seq));
            self.fs.write_file(&tmp, &bytes)?;
            self.fs.sync_file(&tmp)?;
            self.metrics.file_syncs.inc();
            self.fs.rename(&tmp, &path)?;
            self.metrics.renames.inc();
            if !self.skip_dir_sync {
                // The rename made the round visible; this makes it
                // durable. Without it a power cut can lose the
                // directory entry of a fully synced round.
                self.fs.sync_dir(&self.dir)?;
                self.metrics.dir_syncs.inc();
            }
            // Controller state only moves once the round is durable:
            // a failure above leaves the next attempt to rewrite the
            // same sequence number from the same watermarks.
            self.next_seq += 1;
            self.flushed_through = candidate;
            for d in &round.dictionaries {
                self.dict_watermarks
                    .insert((d.cube.clone(), d.dim), d.first_id + d.entries.len() as u32);
            }
            outcome.bytes_written = bytes.len() as u64;
            self.metrics.rounds_written.inc();
            self.metrics.bytes_written.add(bytes.len() as u64);
        }
        tracker.mark_flushed(self.node, self.flushed_through);

        // LSE may advance to what is durable on every replica.
        if let Some(safe) = tracker.safe_epoch() {
            let target = safe.min(engine.manager().lce());
            if target > engine.manager().lse() {
                match engine.manager().advance_lse(target) {
                    Ok(()) => outcome.lse_advanced = true,
                    // An in-flight reader below the target: retry on
                    // the next round rather than stall the flush.
                    Err(AosiError::ActiveReaderBelow { .. }) => {}
                    Err(e) => {
                        debug_assert!(false, "unexpected LSE failure: {e}");
                    }
                }
            }
        }
        Ok(outcome)
    }

    /// Appends this controller's counters to `report` under
    /// `section`.
    pub fn report_into(&self, report: &mut ReportBuilder, section: &str) {
        report
            .section(section)
            .counter("rounds_written", &self.metrics.rounds_written)
            .counter("bytes_written", &self.metrics.bytes_written)
            .counter("file_syncs", &self.metrics.file_syncs)
            .counter("dir_syncs", &self.metrics.dir_syncs)
            .counter("renames", &self.metrics.renames)
            .gauge("resumed_rounds", &self.metrics.resumed_rounds)
            .metric("flushed_through", self.flushed_through)
            .metric("next_seq", self.next_seq);
    }

    /// This controller's durability counters as a standalone
    /// `[wal.flush]` report.
    pub fn metrics_report(&self) -> String {
        let mut report = ReportBuilder::new();
        self.report_into(&mut report, "wal.flush");
        report.finish()
    }

    /// New dictionary entries since the last round, for every string
    /// dimension of every cube. Coordinates on disk reference these
    /// ids, so they must be durable alongside the data. Watermarks
    /// only advance after the round is durably written (see
    /// `flush_round`).
    fn export_dictionaries(&self, engine: &Engine) -> Vec<DictDelta> {
        let mut deltas = Vec::new();
        for cube_name in engine.cube_names() {
            let Ok(cube) = engine.cube(&cube_name) else {
                continue;
            };
            for (dim, dict) in cube.dictionaries().iter().enumerate() {
                let Some(dict) = dict else { continue };
                let dict = dict.lock();
                let key = (cube_name.clone(), dim as u16);
                let from = self.dict_watermarks.get(&key).copied().unwrap_or(0);
                let entries = dict.entries_from(from);
                if entries.is_empty() {
                    continue;
                }
                deltas.push(DictDelta {
                    cube: cube_name.clone(),
                    dim: dim as u16,
                    first_id: from,
                    entries,
                });
            }
        }
        deltas
    }
}

fn wal_to_io(e: WalError) -> std::io::Error {
    match e {
        WalError::Io(io) => io,
        other => std::io::Error::new(std::io::ErrorKind::InvalidData, other.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recovery::recover_into;
    use columnar::Value;
    use cubrick::{AggFn, Aggregation, CubeSchema, Dimension, IsolationMode, Metric, Query};
    use std::fs;

    fn engine() -> Engine {
        let engine = Engine::new(2);
        engine
            .create_cube(
                CubeSchema::new(
                    "events",
                    vec![Dimension::int("day", 8, 4)],
                    vec![Metric::int("likes")],
                )
                .unwrap(),
            )
            .unwrap();
        engine
    }

    fn load(engine: &Engine, day: i64, likes: i64) {
        engine
            .load("events", &[vec![Value::from(day), Value::from(likes)]], 0)
            .unwrap();
    }

    fn sum(engine: &Engine) -> f64 {
        engine
            .query(
                "events",
                &Query::aggregate(vec![Aggregation::new(AggFn::Sum, "likes")]),
                IsolationMode::Snapshot,
            )
            .unwrap()
            .scalar()
            .unwrap_or(0.0)
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("aosi-wal-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn flush_writes_rounds_and_advances_lse() {
        let dir = tempdir("basic");
        let engine = engine();
        let tracker = ReplicationTracker::new(1);
        let mut ctl = FlushController::new(&dir, 1).unwrap();

        load(&engine, 0, 10);
        load(&engine, 1, 20);
        let outcome = ctl.flush_round(&engine, &tracker).unwrap();
        assert_eq!(outcome.lse_prime, 2);
        assert!(outcome.bytes_written > 0);
        assert!(outcome.lse_advanced);
        assert_eq!(engine.manager().lse(), 2);
        assert_eq!(ctl.flushed_through(), 2);
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 1);

        // Nothing new: no file, no movement.
        let outcome = ctl.flush_round(&engine, &tracker).unwrap();
        assert_eq!(outcome.bytes_written, 0);
        assert!(!outcome.lse_advanced);
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lse_waits_for_replicas() {
        let dir = tempdir("replicas");
        let engine = engine();
        // Two "replicas": node 2 never reports.
        let tracker = ReplicationTracker::new(2);
        let mut ctl = FlushController::new(&dir, 1).unwrap();
        load(&engine, 0, 1);
        let outcome = ctl.flush_round(&engine, &tracker).unwrap();
        assert!(!outcome.lse_advanced, "replica 2 not caught up");
        assert_eq!(engine.manager().lse(), 0);
        // Replica catches up; next round advances.
        tracker.mark_flushed(2, 1);
        let outcome = ctl.flush_round(&engine, &tracker).unwrap();
        assert!(outcome.lse_advanced);
        assert_eq!(engine.manager().lse(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn offline_replica_blocks_lse() {
        let dir = tempdir("offline");
        let engine = engine();
        let tracker = ReplicationTracker::new(1);
        tracker.mark_offline(1);
        let mut ctl = FlushController::new(&dir, 1).unwrap();
        load(&engine, 0, 1);
        let outcome = ctl.flush_round(&engine, &tracker).unwrap();
        assert!(!outcome.lse_advanced);
        assert_eq!(engine.manager().lse(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn active_reader_defers_lse_until_next_round() {
        let dir = tempdir("reader");
        let engine = engine();
        let tracker = ReplicationTracker::new(1);
        let mut ctl = FlushController::new(&dir, 1).unwrap();
        load(&engine, 0, 1);
        let guard = engine.manager().begin_read(); // reader at epoch 1
        load(&engine, 1, 2);
        let outcome = ctl.flush_round(&engine, &tracker).unwrap();
        assert!(!outcome.lse_advanced, "reader at 1 blocks LSE 2");
        drop(guard);
        let outcome = ctl.flush_round(&engine, &tracker).unwrap();
        assert!(outcome.lse_advanced);
        assert_eq!(engine.manager().lse(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    /// The restart-clobber regression (ISSUE 5, satellite 1): flush,
    /// reopen the controller, flush again — the old rounds stay
    /// intact and recovery sees all rows.
    #[test]
    fn reopened_controller_resumes_instead_of_clobbering() {
        let dir = tempdir("resume");
        let tracker = ReplicationTracker::new(1);
        let source = engine();

        let mut ctl = FlushController::new(&dir, 1).unwrap();
        load(&source, 0, 10);
        ctl.flush_round(&source, &tracker).unwrap();
        load(&source, 1, 20);
        ctl.flush_round(&source, &tracker).unwrap();
        drop(ctl);

        // The process restarts; the same engine keeps running (only
        // the controller was recreated, as a flush-daemon restart
        // would).
        let mut ctl = FlushController::new(&dir, 1).unwrap();
        assert_eq!(ctl.resumed_rounds(), 2);
        assert_eq!(ctl.flushed_through(), 2, "resume picked up lse'");
        load(&source, 2, 40);
        ctl.flush_round(&source, &tracker).unwrap();

        let mut files: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        files.sort();
        let names: Vec<_> = files
            .iter()
            .map(|p| p.file_name().unwrap().to_str().unwrap().to_owned())
            .collect();
        assert_eq!(
            names,
            vec![
                "round-00000000.cbk",
                "round-00000001.cbk",
                "round-00000002.cbk"
            ],
            "old rounds intact, new round appended"
        );

        let restored = engine();
        let report = recover_into(&dir, &restored).unwrap();
        assert_eq!(report.rounds_applied, 3);
        assert_eq!(report.rows_recovered, 3);
        assert_eq!(sum(&restored), 70.0, "recovery sees all rows");
        fs::remove_dir_all(&dir).unwrap();
    }

    /// Resume also restores dictionary watermarks, so a round written
    /// after reopen ships only the genuinely new entries and replayed
    /// ids stay collision-free.
    #[test]
    fn reopened_controller_resumes_dictionary_watermarks() {
        let dir = tempdir("resume-dicts");
        let tracker = ReplicationTracker::new(1);
        let make = || {
            let engine = Engine::new(2);
            engine
                .create_cube(
                    CubeSchema::new(
                        "s",
                        vec![Dimension::string("region", 8, 2)],
                        vec![Metric::int("likes")],
                    )
                    .unwrap(),
                )
                .unwrap();
            engine
        };
        let source = make();
        let mut ctl = FlushController::new(&dir, 1).unwrap();
        source
            .load(
                "s",
                &[
                    vec![Value::from("us"), Value::from(10i64)],
                    vec![Value::from("br"), Value::from(20i64)],
                ],
                0,
            )
            .unwrap();
        ctl.flush_round(&source, &tracker).unwrap();
        drop(ctl);

        let mut ctl = FlushController::new(&dir, 1).unwrap();
        source
            .load("s", &[vec![Value::from("mx"), Value::from(40i64)]], 0)
            .unwrap();
        ctl.flush_round(&source, &tracker).unwrap();

        let restored = make();
        recover_into(&dir, &restored).unwrap();
        let by_region = |region: &str| {
            restored
                .query(
                    "s",
                    &Query::aggregate(vec![Aggregation::new(AggFn::Sum, "likes")])
                        .filter(cubrick::DimFilter::new("region", vec![Value::from(region)])),
                    IsolationMode::Snapshot,
                )
                .unwrap()
                .scalar()
                .unwrap_or(0.0)
        };
        assert_eq!(by_region("us"), 10.0);
        assert_eq!(by_region("br"), 20.0);
        assert_eq!(by_region("mx"), 40.0);
        fs::remove_dir_all(&dir).unwrap();
    }

    /// Without the fix, a reopened controller restarts at sequence 0
    /// and its next flush clobbers `round-00000000.cbk`. The test
    /// hook reintroduces exactly that behavior.
    #[test]
    fn reset_hook_reproduces_the_clobber() {
        let dir = tempdir("clobber");
        let tracker = ReplicationTracker::new(1);
        let source = engine();
        let mut ctl = FlushController::new(&dir, 1).unwrap();
        load(&source, 0, 10);
        ctl.flush_round(&source, &tracker).unwrap();
        let original = fs::read(dir.join("round-00000000.cbk")).unwrap();

        ctl.reset_state_for_test();
        load(&source, 1, 20);
        ctl.flush_round(&source, &tracker).unwrap();
        let clobbered = fs::read(dir.join("round-00000000.cbk")).unwrap();
        assert_ne!(original, clobbered, "pre-fix behavior must clobber");
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn opening_a_controller_clears_dead_trailing_files() {
        let dir = tempdir("dead-files");
        let tracker = ReplicationTracker::new(1);
        let source = engine();
        let mut ctl = FlushController::new(&dir, 1).unwrap();
        load(&source, 0, 10);
        ctl.flush_round(&source, &tracker).unwrap();
        drop(ctl);
        // A partial flush and a stray tmp file linger after a crash.
        fs::write(dir.join("round-00000001.cbk"), b"partial").unwrap();
        fs::write(dir.join("round-00000002.tmp"), b"tmp").unwrap();

        let ctl = FlushController::new(&dir, 1).unwrap();
        assert_eq!(ctl.resumed_rounds(), 1);
        assert_eq!(ctl.flushed_through(), 1);
        let names: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_str().unwrap().to_owned())
            .collect();
        assert_eq!(names, vec!["round-00000000.cbk"], "dead files removed");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn metrics_report_counts_the_durability_path() {
        let dir = tempdir("metrics");
        let engine = engine();
        let tracker = ReplicationTracker::new(1);
        let mut ctl = FlushController::new(&dir, 1).unwrap();
        load(&engine, 0, 10);
        ctl.flush_round(&engine, &tracker).unwrap();
        let text = ctl.metrics_report();
        assert!(text.starts_with("[wal.flush]\n"), "{text}");
        assert!(text.contains("rounds_written = 1\n"), "{text}");
        assert!(text.contains("file_syncs = 1\n"), "{text}");
        assert!(text.contains("dir_syncs = 1\n"), "{text}");
        assert!(text.contains("renames = 1\n"), "{text}");
        assert!(text.contains("flushed_through = 1\n"), "{text}");
        fs::remove_dir_all(&dir).unwrap();
    }
}
