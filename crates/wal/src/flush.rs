//! Background flush rounds and LSE advancement (Section III-D).
//!
//! "Every time a disk flush round is initialized, a new candidate LSE
//! (LSE') is selected and data between LSE and LSE' is flushed on
//! every single partition. … After the flush procedure finishes, LSE
//! is eventually updated to LSE'." LSE is only allowed to move once
//! the replication tracker confirms every replica holds the epoch
//! durably and the transaction manager confirms no active reader
//! would be disturbed.

use std::collections::HashMap;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use aosi::{AosiError, Epoch};
use cluster::{NodeId, ReplicationTracker};
use cubrick::Engine;

use crate::codec::{self, DictDelta, FlushRound, WalError};

/// What one flush round accomplished.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlushOutcome {
    /// The round's inclusive upper epoch (candidate LSE').
    pub lse_prime: Epoch,
    /// Bytes written to the round file (0 if the round was empty and
    /// skipped).
    pub bytes_written: u64,
    /// Brick deltas persisted.
    pub deltas: usize,
    /// Whether the node's LSE advanced as a result.
    pub lse_advanced: bool,
}

/// Drives flush rounds for one node.
pub struct FlushController {
    dir: PathBuf,
    node: NodeId,
    next_seq: u64,
    /// Upper bound of the last persisted round (exclusive lower bound
    /// of the next).
    flushed_through: Epoch,
    /// Dictionary lengths already persisted, per `(cube, dim)`: the
    /// next round only ships the new entries.
    dict_watermarks: HashMap<(String, u16), u32>,
}

impl FlushController {
    /// A controller writing round files into `dir` for `node`.
    pub fn new(dir: impl Into<PathBuf>, node: NodeId) -> std::io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(FlushController {
            dir,
            node,
            next_seq: 0,
            flushed_through: 0,
            dict_watermarks: HashMap::new(),
        })
    }

    /// Directory holding this node's round files.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Highest epoch durably flushed by this controller.
    pub fn flushed_through(&self) -> Epoch {
        self.flushed_through
    }

    /// Runs one flush round against `engine` and reports it to
    /// `tracker`; advances the node's LSE if every replica (per the
    /// tracker) is caught up and no active reader blocks it.
    pub fn flush_round(
        &mut self,
        engine: &Engine,
        tracker: &ReplicationTracker,
    ) -> Result<FlushOutcome, WalError> {
        // Candidate LSE': everything committed so far. All
        // transactions at or below LCE are finished by the LCE rule.
        let candidate = engine.manager().lce();
        let mut outcome = FlushOutcome {
            lse_prime: candidate,
            ..Default::default()
        };
        if candidate > self.flushed_through {
            let deltas = engine.export_delta(self.flushed_through, candidate);
            let dictionaries = self.export_dictionaries(engine);
            let round = FlushRound {
                lse: self.flushed_through,
                lse_prime: candidate,
                deltas,
                dictionaries,
            };
            outcome.deltas = round.deltas.len();
            let bytes = codec::encode(&round);
            let path = self.dir.join(format!("round-{:08}.cbk", self.next_seq));
            let tmp = self.dir.join(format!("round-{:08}.tmp", self.next_seq));
            {
                let mut file = fs::File::create(&tmp)?;
                file.write_all(&bytes)?;
                file.sync_all()?;
            }
            fs::rename(&tmp, &path)?;
            self.next_seq += 1;
            self.flushed_through = candidate;
            outcome.bytes_written = bytes.len() as u64;
        }
        tracker.mark_flushed(self.node, self.flushed_through);

        // LSE may advance to what is durable on every replica.
        if let Some(safe) = tracker.safe_epoch() {
            let target = safe.min(engine.manager().lce());
            if target > engine.manager().lse() {
                match engine.manager().advance_lse(target) {
                    Ok(()) => outcome.lse_advanced = true,
                    // An in-flight reader below the target: retry on
                    // the next round rather than stall the flush.
                    Err(AosiError::ActiveReaderBelow { .. }) => {}
                    Err(e) => {
                        debug_assert!(false, "unexpected LSE failure: {e}");
                    }
                }
            }
        }
        Ok(outcome)
    }

    /// New dictionary entries since the last round, for every string
    /// dimension of every cube. Coordinates on disk reference these
    /// ids, so they must be durable alongside the data.
    fn export_dictionaries(&mut self, engine: &Engine) -> Vec<DictDelta> {
        let mut deltas = Vec::new();
        for cube_name in engine.cube_names() {
            let Ok(cube) = engine.cube(&cube_name) else {
                continue;
            };
            for (dim, dict) in cube.dictionaries().iter().enumerate() {
                let Some(dict) = dict else { continue };
                let dict = dict.lock();
                let key = (cube_name.clone(), dim as u16);
                let from = self.dict_watermarks.get(&key).copied().unwrap_or(0);
                let entries = dict.entries_from(from);
                if entries.is_empty() {
                    continue;
                }
                self.dict_watermarks
                    .insert(key, from + entries.len() as u32);
                deltas.push(DictDelta {
                    cube: cube_name.clone(),
                    dim: dim as u16,
                    first_id: from,
                    entries,
                });
            }
        }
        deltas
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use columnar::Value;
    use cubrick::{CubeSchema, Dimension, Metric};

    fn engine() -> Engine {
        let engine = Engine::new(2);
        engine
            .create_cube(
                CubeSchema::new(
                    "events",
                    vec![Dimension::int("day", 8, 4)],
                    vec![Metric::int("likes")],
                )
                .unwrap(),
            )
            .unwrap();
        engine
    }

    fn load(engine: &Engine, day: i64, likes: i64) {
        engine
            .load("events", &[vec![Value::from(day), Value::from(likes)]], 0)
            .unwrap();
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("aosi-wal-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn flush_writes_rounds_and_advances_lse() {
        let dir = tempdir("basic");
        let engine = engine();
        let tracker = ReplicationTracker::new(1);
        let mut ctl = FlushController::new(&dir, 1).unwrap();

        load(&engine, 0, 10);
        load(&engine, 1, 20);
        let outcome = ctl.flush_round(&engine, &tracker).unwrap();
        assert_eq!(outcome.lse_prime, 2);
        assert!(outcome.bytes_written > 0);
        assert!(outcome.lse_advanced);
        assert_eq!(engine.manager().lse(), 2);
        assert_eq!(ctl.flushed_through(), 2);
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 1);

        // Nothing new: no file, no movement.
        let outcome = ctl.flush_round(&engine, &tracker).unwrap();
        assert_eq!(outcome.bytes_written, 0);
        assert!(!outcome.lse_advanced);
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lse_waits_for_replicas() {
        let dir = tempdir("replicas");
        let engine = engine();
        // Two "replicas": node 2 never reports.
        let tracker = ReplicationTracker::new(2);
        let mut ctl = FlushController::new(&dir, 1).unwrap();
        load(&engine, 0, 1);
        let outcome = ctl.flush_round(&engine, &tracker).unwrap();
        assert!(!outcome.lse_advanced, "replica 2 not caught up");
        assert_eq!(engine.manager().lse(), 0);
        // Replica catches up; next round advances.
        tracker.mark_flushed(2, 1);
        let outcome = ctl.flush_round(&engine, &tracker).unwrap();
        assert!(outcome.lse_advanced);
        assert_eq!(engine.manager().lse(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn offline_replica_blocks_lse() {
        let dir = tempdir("offline");
        let engine = engine();
        let tracker = ReplicationTracker::new(1);
        tracker.mark_offline(1);
        let mut ctl = FlushController::new(&dir, 1).unwrap();
        load(&engine, 0, 1);
        let outcome = ctl.flush_round(&engine, &tracker).unwrap();
        assert!(!outcome.lse_advanced);
        assert_eq!(engine.manager().lse(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn active_reader_defers_lse_until_next_round() {
        let dir = tempdir("reader");
        let engine = engine();
        let tracker = ReplicationTracker::new(1);
        let mut ctl = FlushController::new(&dir, 1).unwrap();
        load(&engine, 0, 1);
        let guard = engine.manager().begin_read(); // reader at epoch 1
        load(&engine, 1, 2);
        let outcome = ctl.flush_round(&engine, &tracker).unwrap();
        assert!(!outcome.lse_advanced, "reader at 1 blocks LSE 2");
        drop(guard);
        let outcome = ctl.flush_round(&engine, &tracker).unwrap();
        assert!(outcome.lse_advanced);
        assert_eq!(engine.manager().lse(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }
}
