//! Cold-tier brick snapshots over [`WalFs`].
//!
//! [`WalBrickStore`] is the production implementation of
//! [`cubrick::BrickStore`]: when the engine's residency manager
//! evicts a clean-cold brick, the brick is serialized into one
//! self-certifying snapshot file written through the same [`WalFs`]
//! trait the flush controller uses — so the crash torture harness
//! (`oracle::crash`) enumerates power cuts at every mutating syscall
//! of the spill path exactly like it does for flush rounds.
//!
//! ## Format
//!
//! One file per evicted brick, `b-<hex cube>-<bid>.cbt` (all
//! integers little-endian):
//!
//! ```text
//! magic      "CBTSNAP1"                    8 bytes
//! cube       u16 length + utf-8 bytes
//! bid        u64
//! storage    u8    0 = plain, 1 = bess
//! generation u64   the epochs vector's mutation generation
//! rows       u64
//! epochs     u32
//!   per entry: epoch u64, end u64, kind u8 (0 = insert, 1 = delete)
//! dims       u16
//!   per dim: rows x u32 coordinates
//! metrics    u16
//!   per metric: tag u8 (0 = i64, 1 = f64) + rows x 8-byte payload
//! dicts      u16   string dimensions with a dictionary slice
//!   per dict: dim u16, entries u32,
//!             per entry u16 length + utf-8 bytes
//! checksum   u64   FNV-1a of everything above
//! magic      "DONE"                        4 bytes
//! ```
//!
//! The generation counter rides in the snapshot verbatim: visibility
//! and aggregate cache entries are keyed on (generation, snapshot),
//! so a brick that round-trips through the cold tier keeps its cache
//! entries valid (see `cubrick::tier`). The dictionary slice makes a
//! snapshot self-describing — its string coordinates can be decoded
//! without the engine — and lets `reload` detect a snapshot that was
//! produced against a different dictionary history.
//!
//! ## Durability and staleness
//!
//! A spill becomes durable in the same four syscalls as a flush
//! round: write `.tmp`, fsync it, rename into place, fsync the
//! directory. Every spilled row is *also* in the WAL round chain
//! (eviction requires the brick's newest epoch at or below the LSE,
//! and the chain retains all rounds), so snapshots are a redundant
//! cold copy: crash recovery never reads them, and a power cut at
//! any spill/discard boundary loses nothing. For the same reason,
//! every snapshot found at store-open time is *stale* — recovery
//! has already rebuilt all bricks resident from the chain — and
//! [`WalBrickStore::open`] deletes them. Keep the snapshot directory
//! separate from the round-chain directory: the flush controller
//! clears unknown files in its own directory, and this store clears
//! everything in its.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use aosi::{EpochEntry, EpochsVector};
use bytes::{BufMut, BytesMut};
use columnar::Column;
use cubrick::{Brick, BrickStore, Cube, DimStorage, MetricType, TierError};

use crate::codec::fnv1a;
use crate::fault::{RealFs, WalFs};

const SNAP_MAGIC: &[u8; 8] = b"CBTSNAP1";
const SNAP_FOOTER: &[u8; 4] = b"DONE";
const SNAP_EXT: &str = "cbt";

/// [`cubrick::BrickStore`] over a [`WalFs`] directory. See the
/// module docs for format and durability semantics.
pub struct WalBrickStore {
    fs: Arc<dyn WalFs>,
    dir: PathBuf,
}

impl WalBrickStore {
    /// Opens a snapshot store in `dir` on the real filesystem,
    /// deleting any stale snapshots a previous process left behind.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        Self::open_with(Arc::new(RealFs), dir)
    }

    /// Like [`WalBrickStore::open`] but routing every syscall through
    /// `fs` (the torture harness substitutes its simulated
    /// filesystem).
    pub fn open_with(fs: Arc<dyn WalFs>, dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        fs.create_dir_all(&dir)?;
        // Everything on disk predates this process; recovery rebuilt
        // all bricks resident from the round chain, so old snapshots
        // (and torn .tmp files) describe bricks that are no longer
        // spilled.
        let mut removed = false;
        for path in fs.list(&dir)? {
            fs.remove_file(&path)?;
            removed = true;
        }
        if removed {
            fs.sync_dir(&dir)?;
        }
        Ok(WalBrickStore { fs, dir })
    }

    /// The directory snapshots are written into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn snapshot_path(&self, cube: &str, bid: u64) -> PathBuf {
        let mut name = String::from("b-");
        for byte in cube.bytes() {
            name.push_str(&format!("{byte:02x}"));
        }
        name.push_str(&format!("-{bid:016x}.{SNAP_EXT}"));
        self.dir.join(name)
    }
}

fn io_err(op: &str, e: std::io::Error) -> TierError {
    TierError::Io(format!("{op}: {e}"))
}

impl BrickStore for WalBrickStore {
    fn spill(&self, cube: &Cube, bid: u64, brick: &Brick) -> Result<u64, TierError> {
        let bytes = encode_snapshot(cube, bid, brick);
        let path = self.snapshot_path(cube.name(), bid);
        let tmp = path.with_extension("tmp");
        self.fs
            .write_file(&tmp, &bytes)
            .map_err(|e| io_err("write snapshot", e))?;
        self.fs
            .sync_file(&tmp)
            .map_err(|e| io_err("sync snapshot", e))?;
        self.fs
            .rename(&tmp, &path)
            .map_err(|e| io_err("rename snapshot", e))?;
        self.fs
            .sync_dir(&self.dir)
            .map_err(|e| io_err("sync snapshot dir", e))?;
        Ok(bytes.len() as u64)
    }

    fn reload(&self, cube: &Cube, bid: u64) -> Result<Brick, TierError> {
        let path = self.snapshot_path(cube.name(), bid);
        let bytes = match self.fs.read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Err(TierError::Missing),
            Err(e) => return Err(io_err("read snapshot", e)),
        };
        decode_snapshot(cube, bid, &bytes)
    }

    fn discard(&self, cube: &str, bid: u64) -> Result<(), TierError> {
        let path = self.snapshot_path(cube, bid);
        match self.fs.remove_file(&path) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
            Err(e) => return Err(io_err("remove snapshot", e)),
        }
        self.fs
            .sync_dir(&self.dir)
            .map_err(|e| io_err("sync snapshot dir", e))?;
        Ok(())
    }
}

/// Serializes `brick` into a self-certifying snapshot.
fn encode_snapshot(cube: &Cube, bid: u64, brick: &Brick) -> Vec<u8> {
    let schema = cube.schema();
    let rows = brick.row_count();
    let mut buf = BytesMut::with_capacity(256 + rows as usize * 12);
    buf.put_slice(SNAP_MAGIC);
    buf.put_u16_le(schema.name.len() as u16);
    buf.put_slice(schema.name.as_bytes());
    buf.put_u64_le(bid);
    buf.put_u8(match brick.storage_kind() {
        DimStorage::Plain => 0,
        DimStorage::Bess => 1,
    });
    let epochs = brick.epochs();
    buf.put_u64_le(epochs.generation());
    buf.put_u64_le(rows);
    buf.put_u32_le(epochs.entries().len() as u32);
    for entry in epochs.entries() {
        buf.put_u64_le(entry.epoch());
        buf.put_u64_le(entry.end());
        buf.put_u8(entry.is_delete() as u8);
    }
    buf.put_u16_le(schema.dimensions.len() as u16);
    for dim in 0..schema.dimensions.len() {
        for coord in brick.dim_coords(dim) {
            buf.put_u32_le(coord);
        }
    }
    buf.put_u16_le(schema.metrics.len() as u16);
    for metric in 0..schema.metrics.len() {
        match brick.metric_column(metric) {
            Column::I64(values) => {
                buf.put_u8(0);
                for &v in values {
                    buf.put_i64_le(v);
                }
            }
            Column::F64(values) => {
                buf.put_u8(1);
                for &v in values {
                    buf.put_f64_le(v);
                }
            }
            Column::Str(_) => unreachable!("metrics are numeric after parsing"),
        }
    }
    let dicts: Vec<(u16, Vec<String>)> = cube
        .dictionaries()
        .iter()
        .enumerate()
        .filter_map(|(dim, dict)| {
            dict.as_ref()
                .map(|d| (dim as u16, d.lock().entries_from(0)))
        })
        .collect();
    buf.put_u16_le(dicts.len() as u16);
    for (dim, entries) in &dicts {
        buf.put_u16_le(*dim);
        buf.put_u32_le(entries.len() as u32);
        for entry in entries {
            buf.put_u16_le(entry.len() as u16);
            buf.put_slice(entry.as_bytes());
        }
    }
    let checksum = fnv1a(&buf);
    buf.put_u64_le(checksum);
    buf.put_slice(SNAP_FOOTER);
    buf.to_vec()
}

/// Deserializes and validates a snapshot back into a brick. Every
/// structural check runs before [`Brick::restore`] is called, so a
/// snapshot that lies about itself surfaces as
/// [`TierError::Corrupt`], never as an installed-then-wrong brick.
fn decode_snapshot(cube: &Cube, want_bid: u64, bytes: &[u8]) -> Result<Brick, TierError> {
    const FOOTER_LEN: usize = 8 + 4;
    let corrupt = |msg: &str| TierError::Corrupt(msg.to_owned());
    if bytes.len() < SNAP_MAGIC.len() + FOOTER_LEN {
        return Err(corrupt("snapshot shorter than header + footer"));
    }
    let (body, footer) = bytes.split_at(bytes.len() - FOOTER_LEN);
    if &footer[8..] != SNAP_FOOTER {
        return Err(corrupt("torn snapshot (bad footer magic)"));
    }
    let stored = u64::from_le_bytes(footer[..8].try_into().expect("8 bytes"));
    if stored != fnv1a(body) {
        return Err(corrupt("checksum mismatch"));
    }

    struct Reader<'a> {
        buf: &'a [u8],
    }
    impl<'a> Reader<'a> {
        fn take(&mut self, n: usize) -> Result<&'a [u8], TierError> {
            if self.buf.len() < n {
                return Err(TierError::Corrupt("truncated snapshot body".into()));
            }
            let (head, tail) = self.buf.split_at(n);
            self.buf = tail;
            Ok(head)
        }
        fn u8(&mut self) -> Result<u8, TierError> {
            Ok(self.take(1)?[0])
        }
        fn u16(&mut self) -> Result<u16, TierError> {
            Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
        }
        fn u32(&mut self) -> Result<u32, TierError> {
            Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
        }
        fn u64(&mut self) -> Result<u64, TierError> {
            Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
        }
    }
    let mut reader = Reader { buf: body };

    if reader.take(8)? != SNAP_MAGIC {
        return Err(corrupt("bad snapshot magic"));
    }
    let schema = cube.schema();
    let name_len = reader.u16()? as usize;
    let name = std::str::from_utf8(reader.take(name_len)?)
        .map_err(|_| corrupt("cube name not utf-8"))?;
    if name != schema.name {
        return Err(TierError::Corrupt(format!(
            "snapshot belongs to cube {name:?}, wanted {:?}",
            schema.name
        )));
    }
    let bid = reader.u64()?;
    if bid != want_bid {
        return Err(TierError::Corrupt(format!(
            "snapshot belongs to brick {bid}, wanted {want_bid}"
        )));
    }
    let storage = match reader.u8()? {
        0 => DimStorage::Plain,
        1 => DimStorage::Bess,
        tag => return Err(TierError::Corrupt(format!("unknown storage tag {tag}"))),
    };
    let generation = reader.u64()?;
    let rows = reader.u64()?;
    let num_entries = reader.u32()? as usize;
    let mut entries = Vec::with_capacity(num_entries);
    let mut last_insert_end = 0u64;
    for _ in 0..num_entries {
        let epoch = reader.u64()?;
        let end = reader.u64()?;
        match reader.u8()? {
            1 => entries.push(EpochEntry::delete(epoch, end)),
            0 => {
                if end < last_insert_end {
                    return Err(corrupt("epochs vector ends not monotonic"));
                }
                last_insert_end = end;
                entries.push(EpochEntry::insert(epoch, end));
            }
            kind => return Err(TierError::Corrupt(format!("unknown entry kind {kind}"))),
        }
    }
    if last_insert_end != rows || (num_entries == 0 && rows != 0) {
        return Err(corrupt("row count disagrees with epochs vector"));
    }

    let num_dims = reader.u16()? as usize;
    if num_dims != schema.dimensions.len() {
        return Err(TierError::Corrupt(format!(
            "snapshot has {num_dims} dimensions, schema has {}",
            schema.dimensions.len()
        )));
    }
    let mut dim_columns = Vec::with_capacity(num_dims);
    for _ in 0..num_dims {
        let mut coords = Vec::with_capacity(rows as usize);
        for _ in 0..rows {
            coords.push(reader.u32()?);
        }
        dim_columns.push(coords);
    }

    let num_metrics = reader.u16()? as usize;
    if num_metrics != schema.metrics.len() {
        return Err(TierError::Corrupt(format!(
            "snapshot has {num_metrics} metrics, schema has {}",
            schema.metrics.len()
        )));
    }
    let mut metrics = Vec::with_capacity(num_metrics);
    for metric in &schema.metrics {
        let tag = reader.u8()?;
        match (tag, metric.metric_type) {
            (0, MetricType::I64) => {
                let mut values = Vec::with_capacity(rows as usize);
                for _ in 0..rows {
                    values.push(reader.u64()? as i64);
                }
                metrics.push(Column::I64(values));
            }
            (1, MetricType::F64) => {
                let mut values = Vec::with_capacity(rows as usize);
                for _ in 0..rows {
                    values.push(f64::from_bits(reader.u64()?));
                }
                metrics.push(Column::F64(values));
            }
            (tag, _) => {
                return Err(TierError::Corrupt(format!(
                    "metric {:?}: snapshot tag {tag} disagrees with schema",
                    metric.name
                )))
            }
        }
    }

    // The dictionary slice: the snapshot's string coordinates were
    // minted against these entries, and the live dictionary must
    // agree on every id (it may only have grown since the spill).
    let num_dicts = reader.u16()? as usize;
    for _ in 0..num_dicts {
        let dim = reader.u16()? as usize;
        let count = reader.u32()? as usize;
        let dict = cube
            .dictionaries()
            .get(dim)
            .and_then(|d| d.as_ref())
            .ok_or_else(|| {
                TierError::Corrupt(format!("dimension {dim} is not a string dimension"))
            })?;
        let dict = dict.lock();
        for id in 0..count {
            let len = reader.u16()? as usize;
            let entry = std::str::from_utf8(reader.take(len)?)
                .map_err(|_| corrupt("dictionary entry not utf-8"))?;
            match dict.decode(id as u32) {
                Some(live) if live == entry => {}
                Some(live) => {
                    return Err(TierError::Corrupt(format!(
                        "dictionary drift on dimension {dim}: id {id} is {live:?} live, \
                         {entry:?} in snapshot"
                    )))
                }
                None => {
                    return Err(TierError::Corrupt(format!(
                        "dictionary drift on dimension {dim}: id {id} ({entry:?}) \
                         missing from the live dictionary"
                    )))
                }
            }
        }
    }
    if !reader.buf.is_empty() {
        return Err(corrupt("trailing bytes in snapshot body"));
    }

    let epochs = EpochsVector::from_parts_with_generation(entries, rows, generation);
    Ok(Brick::restore(schema, storage, dim_columns, metrics, epochs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::SimFs;
    use cubrick::{CubeSchema, Dimension, Metric, ParsedRecord};
    use columnar::Value;

    fn cube() -> Cube {
        Cube::new(
            CubeSchema::new(
                "events",
                vec![
                    Dimension::string("region", 4, 2),
                    Dimension::int("day", 8, 4),
                ],
                vec![Metric::int("likes"), Metric::float("score")],
            )
            .unwrap(),
        )
    }

    fn sample_brick(cube: &Cube, storage: DimStorage) -> Brick {
        // Mint dictionary ids the way ingest would.
        let dict = cube.dictionaries()[0].as_ref().unwrap();
        let us = dict.lock().encode("us");
        let br = dict.lock().encode("br");
        let mut brick = Brick::with_storage(cube.schema(), storage);
        brick.append(
            3,
            &[
                ParsedRecord {
                    bid: 0,
                    coords: vec![us, 1],
                    metrics: vec![Value::I64(10), Value::F64(0.5)],
                },
                ParsedRecord {
                    bid: 0,
                    coords: vec![br, 2],
                    metrics: vec![Value::I64(-4), Value::F64(2.25)],
                },
            ],
        );
        brick.mark_delete(4);
        brick.append(
            5,
            &[ParsedRecord {
                bid: 0,
                coords: vec![us, 3],
                metrics: vec![Value::I64(7), Value::F64(-1.0)],
            }],
        );
        brick
    }

    fn assert_bit_identical(a: &Brick, b: &Brick, dims: usize, metrics: usize) {
        assert_eq!(a.row_count(), b.row_count());
        assert_eq!(a.storage_kind(), b.storage_kind());
        assert_eq!(a.epochs().entries(), b.epochs().entries());
        assert_eq!(a.epochs().generation(), b.epochs().generation());
        for dim in 0..dims {
            assert_eq!(a.dim_coords(dim), b.dim_coords(dim), "dim {dim}");
        }
        for metric in 0..metrics {
            assert_eq!(
                a.metric_column(metric),
                b.metric_column(metric),
                "metric {metric}"
            );
        }
    }

    #[test]
    fn snapshot_roundtrips_both_layouts() {
        let cube = cube();
        for storage in [DimStorage::Plain, DimStorage::Bess] {
            let brick = sample_brick(&cube, storage);
            let bytes = encode_snapshot(&cube, 7, &brick);
            let restored = decode_snapshot(&cube, 7, &bytes).unwrap();
            assert_bit_identical(&brick, &restored, 2, 2);
        }
    }

    #[test]
    fn empty_brick_roundtrips() {
        let cube = cube();
        let brick = Brick::with_storage(cube.schema(), DimStorage::Plain);
        let bytes = encode_snapshot(&cube, 0, &brick);
        let restored = decode_snapshot(&cube, 0, &bytes).unwrap();
        assert_bit_identical(&brick, &restored, 2, 2);
    }

    #[test]
    fn flipped_bit_is_corrupt() {
        let cube = cube();
        let brick = sample_brick(&cube, DimStorage::Plain);
        let bytes = encode_snapshot(&cube, 7, &brick);
        for idx in [10, bytes.len() / 2, bytes.len() - 20] {
            let mut broken = bytes.clone();
            broken[idx] ^= 0x10;
            match decode_snapshot(&cube, 7, &broken) {
                Err(TierError::Corrupt(msg)) => {
                    assert!(msg.contains("checksum"), "flip at {idx}: {msg}")
                }
                other => panic!("flip at {idx} undetected: {other:?}"),
            }
        }
    }

    #[test]
    fn torn_tail_is_corrupt() {
        let cube = cube();
        let brick = sample_brick(&cube, DimStorage::Plain);
        let bytes = encode_snapshot(&cube, 7, &brick);
        for cut in [0, 5, bytes.len() - 1, bytes.len() - 4] {
            assert!(
                matches!(
                    decode_snapshot(&cube, 7, &bytes[..cut]),
                    Err(TierError::Corrupt(_))
                ),
                "cut at {cut} undetected"
            );
        }
    }

    #[test]
    fn wrong_cube_or_bid_is_rejected() {
        let cube = cube();
        let brick = sample_brick(&cube, DimStorage::Plain);
        let bytes = encode_snapshot(&cube, 7, &brick);
        assert!(matches!(
            decode_snapshot(&cube, 8, &bytes),
            Err(TierError::Corrupt(_))
        ));
        let other = Cube::new(
            CubeSchema::new(
                "other",
                vec![
                    Dimension::string("region", 4, 2),
                    Dimension::int("day", 8, 4),
                ],
                vec![Metric::int("likes"), Metric::float("score")],
            )
            .unwrap(),
        );
        assert!(matches!(
            decode_snapshot(&other, 7, &bytes),
            Err(TierError::Corrupt(_))
        ));
    }

    #[test]
    fn dictionary_drift_is_rejected() {
        let cube = cube();
        let brick = sample_brick(&cube, DimStorage::Plain);
        let bytes = encode_snapshot(&cube, 7, &brick);
        // A fresh cube whose dictionary history diverged: same ids,
        // different strings.
        let drifted = Cube::new(cube.schema().clone());
        let dict = drifted.dictionaries()[0].as_ref().unwrap();
        dict.lock().encode("de");
        dict.lock().encode("jp");
        match decode_snapshot(&drifted, 7, &bytes) {
            Err(TierError::Corrupt(msg)) => assert!(msg.contains("drift"), "{msg}"),
            other => panic!("drift undetected: {other:?}"),
        }
    }

    #[test]
    fn store_spills_reloads_and_discards_through_walfs() {
        let fs = Arc::new(SimFs::new(11));
        let dir = PathBuf::from("/sim/tier");
        let store = WalBrickStore::open_with(fs.clone(), &dir).unwrap();
        let cube = cube();
        let brick = sample_brick(&cube, DimStorage::Bess);

        let size = store.spill(&cube, 3, &brick).unwrap();
        assert!(size > 0);
        assert!(matches!(store.reload(&cube, 99), Err(TierError::Missing)));
        let restored = store.reload(&cube, 3).unwrap();
        assert_bit_identical(&brick, &restored, 2, 2);

        store.discard("events", 3).unwrap();
        assert!(matches!(store.reload(&cube, 3), Err(TierError::Missing)));
        // Idempotent: discarding again is fine.
        store.discard("events", 3).unwrap();
    }

    #[test]
    fn a_completed_spill_survives_a_power_cut() {
        let fs = Arc::new(SimFs::new(23));
        let dir = PathBuf::from("/sim/tier");
        let store = WalBrickStore::open_with(fs.clone(), &dir).unwrap();
        let cube = cube();
        let brick = sample_brick(&cube, DimStorage::Plain);
        store.spill(&cube, 5, &brick).unwrap();

        fs.crash_now();
        let restored = store.reload(&cube, 5).unwrap();
        assert_bit_identical(&brick, &restored, 2, 2);
    }

    #[test]
    fn open_deletes_stale_snapshots() {
        let fs = Arc::new(SimFs::new(31));
        let dir = PathBuf::from("/sim/tier");
        let cube = cube();
        let brick = sample_brick(&cube, DimStorage::Plain);
        {
            let store = WalBrickStore::open_with(fs.clone(), &dir).unwrap();
            store.spill(&cube, 1, &brick).unwrap();
        }
        // "Restart": recovery rebuilt everything resident, so the old
        // snapshot is stale and open clears it.
        let store = WalBrickStore::open_with(fs.clone(), &dir).unwrap();
        assert!(matches!(store.reload(&cube, 1), Err(TierError::Missing)));
        assert!(fs.list(&dir).unwrap().is_empty());
    }
}
