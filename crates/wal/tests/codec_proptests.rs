//! Property-based tests of the flush-round codec: lossless
//! roundtrips, and no silent acceptance of damaged files.

use columnar::Value;
use cubrick::{BrickDelta, DeltaRun, ParsedRecord};
use proptest::prelude::*;
use wal::codec::{decode, encode};
use wal::{DictDelta, FlushRound, WalError};

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::I64),
        // Finite floats only: NaN breaks PartialEq-based comparison,
        // and metrics are measurement data, never NaN on ingest.
        (-1e12f64..1e12).prop_map(Value::F64),
    ]
}

fn record_strategy(bid: u64, dims: usize, metrics: usize) -> impl Strategy<Value = ParsedRecord> {
    (
        prop::collection::vec(any::<u32>(), dims),
        prop::collection::vec(value_strategy(), metrics),
    )
        .prop_map(move |(coords, metrics)| ParsedRecord {
            bid,
            coords,
            metrics,
        })
}

fn run_strategy(bid: u64) -> impl Strategy<Value = DeltaRun> {
    let insert = (1usize..4, 0usize..3).prop_flat_map(move |(dims, metrics)| {
        (
            1u64..1000,
            prop::collection::vec(record_strategy(bid, dims, metrics), 0..8),
        )
            .prop_map(|(epoch, records)| DeltaRun::Insert { epoch, records })
    });
    prop_oneof![
        4 => insert,
        1 => (1u64..1000).prop_map(|epoch| DeltaRun::Delete { epoch }),
    ]
}

fn dict_strategy() -> impl Strategy<Value = DictDelta> {
    (
        "[a-z_]{1,10}",
        0u16..8,
        0u32..1000,
        prop::collection::vec("[a-zA-Z0-9 '_-]{0,20}", 0..6),
    )
        .prop_map(|(cube, dim, first_id, entries)| DictDelta {
            cube,
            dim,
            first_id,
            entries,
        })
}

fn round_strategy() -> impl Strategy<Value = FlushRound> {
    (
        0u64..100,
        0u64..1000,
        prop::collection::vec(
            (any::<u64>(), "[a-z_]{1,12}").prop_flat_map(|(bid, cube)| {
                prop::collection::vec(run_strategy(bid), 1..5).prop_map(move |runs| BrickDelta {
                    cube: cube.clone(),
                    bid,
                    runs,
                })
            }),
            0..6,
        ),
        prop::collection::vec(dict_strategy(), 0..4),
    )
        .prop_map(|(lse, span, deltas, dictionaries)| FlushRound {
            lse,
            lse_prime: lse + span,
            deltas,
            dictionaries,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every encodable round decodes back to itself.
    #[test]
    fn roundtrip_is_lossless(round in round_strategy()) {
        let bytes = encode(&round);
        let decoded = decode(&bytes).expect("self-encoded round must decode");
        prop_assert_eq!(decoded, round);
    }

    /// Any strict prefix of a round file is rejected — a partially
    /// written flush can never be mistaken for a complete one.
    #[test]
    fn truncation_is_always_detected(round in round_strategy(), cut_fraction in 0.0f64..1.0) {
        let bytes = encode(&round);
        let cut = ((bytes.len() as f64 * cut_fraction) as usize).min(bytes.len() - 1);
        match decode(&bytes[..cut]) {
            Err(WalError::Incomplete) | Err(WalError::Corrupt(_)) => {}
            Ok(_) => prop_assert!(false, "truncated file decoded at cut {}", cut),
            Err(e) => prop_assert!(false, "unexpected error kind: {}", e),
        }
    }

    /// A single flipped bit anywhere in the file is rejected.
    #[test]
    fn bit_flips_are_always_detected(
        round in round_strategy(),
        position_fraction in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let mut bytes = encode(&round).to_vec();
        let position = ((bytes.len() as f64 * position_fraction) as usize).min(bytes.len() - 1);
        bytes[position] ^= 1 << bit;
        match decode(&bytes) {
            Err(_) => {}
            Ok(decoded) => {
                // A flip in the checksum's own storage that still
                // matches would imply a hash collision — treat any
                // successful decode of damaged bytes as a failure.
                prop_assert!(false,
                    "damaged file decoded (flip at {position} bit {bit}); got {decoded:?}");
            }
        }
    }

    /// Appending garbage after the footer is rejected (file-length
    /// integrity).
    #[test]
    fn trailing_garbage_is_detected(round in round_strategy(), garbage in prop::collection::vec(any::<u8>(), 1..20)) {
        let mut bytes = encode(&round).to_vec();
        bytes.extend(garbage);
        prop_assert!(decode(&bytes).is_err());
    }
}
