//! Property-based tests for the AOSI protocol core.
//!
//! The oracle is a deliberately dumb per-row model: every row carries
//! the epoch that inserted it (exactly the per-record metadata AOSI
//! avoids storing), and visibility/delete semantics are evaluated row
//! by row. Whatever schedule proptest generates, the epochs-vector
//! implementation must agree with the model.

use std::collections::BTreeSet;

use aosi::{purge, rollback, visibility, Epoch, EpochsVector, Snapshot};
use proptest::prelude::*;

/// One generated partition operation.
#[derive(Clone, Debug)]
enum Op {
    /// `(epoch, rows)` append.
    Append(Epoch, u64),
    /// Partition delete by `epoch`.
    Delete(Epoch),
}

/// Per-row reference model.
#[derive(Clone, Debug, Default)]
struct Model {
    /// Inserting epoch of each row, in physical order.
    row_epochs: Vec<Epoch>,
    /// All delete events as `(epoch, delete_point)`.
    deletes: Vec<(Epoch, u64)>,
}

impl Model {
    fn apply(&mut self, op: &Op) {
        match *op {
            Op::Append(epoch, rows) => {
                self.row_epochs
                    .extend(std::iter::repeat_n(epoch, rows as usize));
            }
            Op::Delete(epoch) => {
                self.deletes.push((epoch, self.row_epochs.len() as u64));
            }
        }
    }

    /// Row-by-row visibility under `snapshot`.
    fn visible(&self, snapshot: &Snapshot) -> Vec<bool> {
        let dominant = self
            .deletes
            .iter()
            .filter(|(k, _)| snapshot.sees(*k))
            .max()
            .copied();
        self.row_epochs
            .iter()
            .enumerate()
            .map(|(idx, &epoch)| {
                if !snapshot.sees(epoch) {
                    return false;
                }
                match dominant {
                    Some((k, p)) => !(epoch < k || (epoch == k && (idx as u64) < p)),
                    None => true,
                }
            })
            .collect()
    }
}

fn build(ops: &[Op]) -> (EpochsVector, Model) {
    let mut vector = EpochsVector::new();
    let mut model = Model::default();
    for op in ops {
        match *op {
            Op::Append(epoch, rows) => {
                vector.append(epoch, rows);
            }
            Op::Delete(epoch) => vector.mark_delete(epoch),
        }
        model.apply(op);
    }
    (vector, model)
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        8 => (1u64..20, 0u64..6).prop_map(|(e, n)| Op::Append(e, n)),
        2 => (1u64..20).prop_map(Op::Delete),
    ]
}

fn schedule_strategy() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(op_strategy(), 0..40)
}

fn snapshot_strategy() -> impl Strategy<Value = Snapshot> {
    (1u64..25, prop::collection::btree_set(1u64..25, 0..6)).prop_map(|(epoch, deps)| {
        let deps: BTreeSet<Epoch> = deps.into_iter().filter(|&d| d < epoch).collect();
        Snapshot::new(epoch, deps)
    })
}

proptest! {
    /// The epochs-vector bitmap equals the per-row model for any
    /// schedule and any snapshot.
    #[test]
    fn bitmap_matches_row_model(ops in schedule_strategy(), snap in snapshot_strategy()) {
        let (vector, model) = build(&ops);
        let bitmap = vector.visible_bitmap(&snap);
        let expected = model.visible(&snap);
        prop_assert_eq!(bitmap.len(), expected.len());
        for (idx, &want) in expected.iter().enumerate() {
            prop_assert_eq!(bitmap.get(idx), want, "row {} epoch {}", idx, model.row_epochs[idx]);
        }
    }

    /// The optimized single-cleanup-pass implementation agrees with
    /// the paper's literal one-pass-per-delete formulation.
    #[test]
    fn optimized_equals_naive(ops in schedule_strategy(), snap in snapshot_strategy()) {
        let (vector, _) = build(&ops);
        prop_assert_eq!(
            visibility::visible_bitmap(&vector, &snap).to_bit_string(),
            visibility::visible_bitmap_naive(&vector, &snap).to_bit_string()
        );
    }

    /// The range-based fast path is exactly the bitmap, for any
    /// schedule and snapshot.
    #[test]
    fn ranges_equal_bitmap(ops in schedule_strategy(), snap in snapshot_strategy()) {
        let (vector, _) = build(&ops);
        let bitmap = vector.visible_bitmap(&snap);
        let ranges = vector.visible_ranges(&snap);
        let mut covered = 0u64;
        let mut prev_end = 0u64;
        for r in &ranges {
            prop_assert!(r.start < r.end, "empty range emitted");
            prop_assert!(r.start >= prev_end, "ranges out of order");
            prop_assert!(r.start > prev_end || prev_end == 0,
                "adjacent ranges not merged: {:?}", ranges);
            for row in r.clone() {
                prop_assert!(bitmap.get(row as usize), "range covers hidden row {}", row);
            }
            covered += r.end - r.start;
            prev_end = r.end;
        }
        prop_assert_eq!(covered, bitmap.count_ones() as u64);
        prop_assert_eq!(vector.visible_rows(&snap), covered);
    }

    /// Purge never changes what a legal post-purge reader sees.
    /// Legal readers have epoch >= LSE and no deps <= LSE.
    #[test]
    fn purge_is_invisible_to_legal_readers(
        ops in schedule_strategy(),
        lse in 0u64..25,
        reader in 0u64..30,
        deps in prop::collection::btree_set(1u64..30, 0..4),
    ) {
        let (vector, _) = build(&ops);
        let reader = reader.max(lse);
        let deps: BTreeSet<Epoch> = deps.into_iter().filter(|&d| d < reader && d > lse).collect();
        let snap = Snapshot::new(reader, deps);

        let result = purge::purge(&vector, lse);
        let before = vector.visible_bitmap(&snap);
        let after = result.vector.visible_bitmap(&snap);

        // Project the old bitmap through the keep mask; purge must
        // only ever drop rows invisible to the reader.
        let mut projected = String::with_capacity(after.len());
        for old_row in 0..before.len() {
            if result.keep.get(old_row) {
                projected.push(if before.get(old_row) { '1' } else { '0' });
            } else {
                prop_assert!(!before.get(old_row),
                    "purge at lse={} dropped row {} visible to reader {}", lse, old_row, reader);
            }
        }
        prop_assert_eq!(after.to_bit_string(), projected);
    }

    /// Purge bookkeeping is internally consistent.
    #[test]
    fn purge_accounting_consistent(ops in schedule_strategy(), lse in 0u64..25) {
        let (vector, _) = build(&ops);
        let result = purge::purge(&vector, lse);
        prop_assert_eq!(result.keep.len() as u64, vector.row_count());
        prop_assert_eq!(
            result.keep.count_ones() as u64,
            result.vector.row_count()
        );
        prop_assert_eq!(
            result.purged_rows,
            vector.row_count() - result.vector.row_count()
        );
        // Purge never grows the metadata.
        prop_assert!(result.vector.entries().len() <= vector.entries().len());
        // Idempotence: purging again at the same LSE is a no-op.
        let again = purge::purge(&result.vector, lse);
        prop_assert!(!again.changed, "purge not idempotent: {:?} -> {:?}",
            result.vector.entries(), again.vector.entries());
    }

    /// `needs_purge` exactly predicts whether purge changes anything.
    #[test]
    fn needs_purge_predicts_changed(ops in schedule_strategy(), lse in 0u64..25) {
        let (vector, _) = build(&ops);
        let result = purge::purge(&vector, lse);
        prop_assert_eq!(vector.needs_purge(lse), result.changed);
    }

    /// Rolling back a transaction leaves the partition exactly as if
    /// the transaction never ran.
    #[test]
    fn rollback_equals_never_ran(
        ops in schedule_strategy(),
        aborted in 1u64..20,
        pending in prop::collection::btree_set(1u64..22, 0..6),
    ) {
        let (with, _) = build(&ops);
        let without_ops: Vec<Op> = ops
            .iter()
            .filter(|op| match op {
                Op::Append(e, _) => *e != aborted,
                Op::Delete(e) => *e != aborted,
            })
            .cloned()
            .collect();
        let result = rollback::rollback_partition(&with, aborted);
        let (reference, _) = build(&without_ops);
        // Visibility must agree for every snapshot (entry layout may
        // differ: adjacent runs merge when the aborted rows between
        // them vanish, and the reference build merges them eagerly).
        // Readers carry a random pendingTxs set, not just committed
        // snapshots: a rollback must be invisible even to readers that
        // began while other transactions were still in flight.
        for reader in 1..22 {
            let deps: BTreeSet<Epoch> =
                pending.iter().copied().filter(|&d| d < reader).collect();
            for snap in [Snapshot::committed(reader), Snapshot::new(reader, deps)] {
                prop_assert_eq!(
                    result.vector.visible_bitmap(&snap).to_bit_string(),
                    reference.visible_bitmap(&snap).to_bit_string(),
                    "reader {} deps {:?}", reader, snap.deps()
                );
            }
        }
        prop_assert_eq!(result.vector.row_count(), reference.row_count());
    }

    /// Append returns the exact physical range the caller must fill.
    #[test]
    fn append_ranges_tile_the_partition(ops in schedule_strategy()) {
        let mut vector = EpochsVector::new();
        let mut next = 0u64;
        for op in &ops {
            if let Op::Append(e, n) = *op {
                let range = vector.append(e, n);
                prop_assert_eq!(range.start, next);
                prop_assert_eq!(range.end, next + n);
                next = range.end;
            }
        }
        prop_assert_eq!(vector.row_count(), next);
    }

    /// Entry count is bounded by the number of run-breaking events,
    /// never by row count — the memory claim of the paper.
    #[test]
    fn entry_count_bounded_by_ops(ops in schedule_strategy()) {
        let (vector, _) = build(&ops);
        prop_assert!(vector.entries().len() <= ops.len());
        prop_assert_eq!(vector.used_bytes(), vector.entries().len() * 16);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random single-node transaction schedules keep the manager's
    /// promises: LCE equals the largest committed prefix point, RO
    /// snapshots never see unfinished transactions, and the
    /// `EC > LCE >= LSE` invariant never breaks.
    #[test]
    fn manager_invariants_under_random_schedules(
        actions in prop::collection::vec(0u8..10, 1..80),
    ) {
        let mgr = aosi::TxnManager::single_node();
        let mut open: Vec<aosi::Txn> = Vec::new();
        let mut committed: BTreeSet<Epoch> = BTreeSet::new();
        for a in actions {
            match a {
                0..=4 => open.push(mgr.begin_rw()),
                5..=6 if !open.is_empty() => {
                    let idx = (a as usize) % open.len();
                    let txn = open.remove(idx);
                    mgr.commit(&txn).unwrap();
                    committed.insert(txn.epoch());
                }
                7 if !open.is_empty() => {
                    let txn = open.remove(0);
                    mgr.rollback(&txn).unwrap();
                }
                _ => {
                    // RO probe.
                    let snap = mgr.begin_ro();
                    for t in &open {
                        prop_assert!(!snap.sees(t.epoch()),
                            "RO at {} sees open T{}", snap.epoch(), t.epoch());
                    }
                }
            }
            // LCE = largest committed epoch below the oldest open txn.
            let min_open = open.iter().map(|t| t.epoch()).min().unwrap_or(Epoch::MAX);
            let expected_lce = committed
                .iter()
                .copied()
                .filter(|&c| c < min_open)
                .max()
                .unwrap_or(0);
            prop_assert_eq!(mgr.lce(), expected_lce);
            prop_assert!(mgr.clock().current_ec() > mgr.lce());
            prop_assert!(mgr.lce() >= mgr.lse());
        }
        // Drain and confirm convergence.
        for txn in open.drain(..) {
            mgr.commit(&txn).unwrap();
            committed.insert(txn.epoch());
        }
        prop_assert_eq!(mgr.lce(), committed.iter().copied().max().unwrap_or(0));
        mgr.advance_lse(mgr.lce()).unwrap();
        prop_assert_eq!(mgr.lse(), mgr.lce());
    }

    /// Strided epoch clocks never issue colliding epochs and Lamport
    /// merges keep residues intact.
    #[test]
    fn clocks_never_collide(
        num_nodes in 1u64..6,
        events in prop::collection::vec((0usize..6, 0u64..200), 1..60),
    ) {
        let clocks: Vec<aosi::EpochClock> =
            (1..=num_nodes).map(|i| aosi::EpochClock::new(i, num_nodes)).collect();
        let mut issued = BTreeSet::new();
        for (who, remote) in events {
            let clock = &clocks[who % num_nodes as usize];
            clock.observe(remote);
            let epoch = clock.next_epoch();
            prop_assert!(issued.insert(epoch), "epoch {} issued twice", epoch);
            prop_assert_eq!(epoch % num_nodes, clock.node_idx() % num_nodes);
            prop_assert!(epoch > remote || remote >= clock.current_ec(),
                "issued epoch {} not past observed {}", epoch, remote);
        }
    }
}
