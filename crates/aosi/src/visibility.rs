//! Visibility-bitmap generation (Section III-C3, Table III).
//!
//! "Prior to scan execution, a per-partition bitmap is generated for
//! `Ti` based on the epochs vector by setting bits to one whenever a
//! record was inserted by `j`, such that `j <= i` and `j ∉ Ti.deps`.
//! … Every time a delete on `Tk` is found by `Ti`, such that `k < i`
//! and `k ∉ Ti.deps`, `Ti` must do another pass and clean up all bits
//! related to transactions smaller than `k`, as well as records from
//! `k` up to the delete point."
//!
//! Two implementations live here:
//!
//! * [`visible_bitmap`] — the production path. It exploits the fact
//!   that when several deletes are visible, the one with the largest
//!   epoch subsumes all earlier ones (everything an earlier delete
//!   removes has an epoch smaller than the later delete's), so a
//!   single cleanup pass with the dominant delete suffices.
//! * [`visible_bitmap_naive`] — the paper's prose verbatim: one
//!   cleanup pass per visible delete. Kept as the reference oracle
//!   for property tests and as an ablation target.

use crate::epoch::Epoch;
use crate::epochs::EpochsVector;
use crate::snapshot::Snapshot;
use columnar::Bitmap;

/// Builds the scan bitmap for `snapshot` over `partition`.
pub fn visible_bitmap(partition: &EpochsVector, snapshot: &Snapshot) -> Bitmap {
    let rows = usize::try_from(partition.row_count()).expect("partition too large");
    let mut bitmap = Bitmap::new(rows);

    // Pass 1: set every run appended by a visible transaction.
    let mut start = 0usize;
    for entry in partition.entries() {
        if entry.is_delete() {
            continue;
        }
        let end = entry.end() as usize;
        if snapshot.sees(entry.epoch()) {
            bitmap.set_range(start, end);
        }
        start = end;
    }

    // Pass 2: apply the dominant visible delete, if any.
    if let Some((k, p)) = dominant_delete(partition, snapshot) {
        cleanup_delete(partition, &mut bitmap, k, p);
    }
    bitmap
}

/// The visible delete with the greatest epoch (and, among markers from
/// that same epoch, the greatest delete point).
fn dominant_delete(partition: &EpochsVector, snapshot: &Snapshot) -> Option<(Epoch, u64)> {
    let mut dominant: Option<(Epoch, u64)> = None;
    for entry in partition.entries() {
        if entry.is_delete() && snapshot.sees(entry.epoch()) {
            let candidate = (entry.epoch(), entry.end());
            if dominant.is_none_or(|d| candidate > d) {
                dominant = Some(candidate);
            }
        }
    }
    dominant
}

/// Clears all rows of transactions `< k` (wherever they sit — "even if
/// … inserted after the delete operation chronologically", Fig. 3) and
/// `k`'s own rows below the delete point `p`.
fn cleanup_delete(partition: &EpochsVector, bitmap: &mut Bitmap, k: Epoch, p: u64) {
    let mut start = 0usize;
    for entry in partition.entries() {
        if entry.is_delete() {
            continue;
        }
        let end = entry.end() as usize;
        if entry.epoch() < k {
            bitmap.clear_range(start, end);
        } else if entry.epoch() == k {
            let cut = end.min(p as usize);
            if start < cut {
                bitmap.clear_range(start, cut);
            }
        }
        start = end;
    }
}

/// Computes the visible rows as a list of disjoint, ascending
/// half-open ranges — without materializing a bitmap.
///
/// Scans that only need a row count (or can iterate ranges directly)
/// skip the bitmap allocation entirely: the work is `O(entries)`
/// instead of `O(rows / 64)`. Exactly equivalent to
/// [`visible_bitmap`] (property-tested).
pub fn visible_ranges(partition: &EpochsVector, snapshot: &Snapshot) -> Vec<std::ops::Range<u64>> {
    let dominant = dominant_delete(partition, snapshot);
    let mut ranges: Vec<std::ops::Range<u64>> = Vec::new();
    let mut start = 0u64;
    for entry in partition.entries() {
        if entry.is_delete() {
            continue;
        }
        let end = entry.end();
        let run = start..end;
        start = end;
        if !snapshot.sees(entry.epoch()) {
            continue;
        }
        // Apply the dominant visible delete inline.
        let surviving = match dominant {
            Some((k, _)) if entry.epoch() < k => continue,
            Some((k, p)) if entry.epoch() == k => run.start.max(p)..run.end,
            _ => run,
        };
        if surviving.start >= surviving.end {
            continue;
        }
        match ranges.last_mut() {
            Some(last) if last.end == surviving.start => last.end = surviving.end,
            _ => ranges.push(surviving),
        }
    }
    ranges
}

/// Number of rows `snapshot` sees, via [`visible_ranges`] (no bitmap
/// allocation).
pub fn visible_row_count(partition: &EpochsVector, snapshot: &Snapshot) -> u64 {
    visible_ranges(partition, snapshot)
        .iter()
        .map(|r| r.end - r.start)
        .sum()
}

/// Reference implementation: literally one cleanup pass per visible
/// delete, in epochs-vector order. Semantically identical to
/// [`visible_bitmap`]; quadratic in the number of deletes.
pub fn visible_bitmap_naive(partition: &EpochsVector, snapshot: &Snapshot) -> Bitmap {
    let rows = usize::try_from(partition.row_count()).expect("partition too large");
    let mut bitmap = Bitmap::new(rows);
    let mut start = 0usize;
    for entry in partition.entries() {
        if entry.is_delete() {
            continue;
        }
        let end = entry.end() as usize;
        if snapshot.sees(entry.epoch()) {
            bitmap.set_range(start, end);
        }
        start = end;
    }
    for entry in partition.entries() {
        if entry.is_delete() && snapshot.sees(entry.epoch()) {
            cleanup_delete(partition, &mut bitmap, entry.epoch(), entry.end());
        }
    }
    bitmap
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn snap(epoch: Epoch, deps: &[Epoch]) -> Snapshot {
        Snapshot::new(epoch, deps.iter().copied().collect::<BTreeSet<_>>())
    }

    /// Table II / Figure 2, schedule (a), reconstructed from the
    /// Table III bitmaps and the Figure 3 prose (see EXPERIMENTS.md):
    /// T1 +2, T3 +2, T1 +1, T5 deletes, T3 +4, T7 +1.
    fn schedule_a() -> EpochsVector {
        let mut v = EpochsVector::new();
        v.append(1, 2);
        v.append(3, 2);
        v.append(1, 1);
        v.mark_delete(5);
        v.append(3, 4);
        v.append(7, 1);
        v
    }

    /// Schedule (b): T1 +2, T3 +2, T1 +3, T3 +2, T3 deletes, T3 +3,
    /// T1 +12, T3 +1.
    fn schedule_b() -> EpochsVector {
        let mut v = EpochsVector::new();
        v.append(1, 2);
        v.append(3, 2);
        v.append(1, 3);
        v.append(3, 2);
        v.mark_delete(3);
        v.append(3, 3);
        v.append(1, 12);
        v.append(3, 1);
        v
    }

    #[test]
    fn table_iii_schedule_a() {
        let v = schedule_a();
        assert_eq!(v.row_count(), 10);
        let cases = [
            (2u64, "1100100000"),
            (4, "1111111110"),
            (6, "0000000000"),
            (8, "0000000001"),
        ];
        for (epoch, expected) in cases {
            let bm = visible_bitmap(&v, &snap(epoch, &[]));
            assert_eq!(bm.to_bit_string(), expected, "read txn {epoch}");
        }
    }

    #[test]
    fn table_iii_schedule_b() {
        let v = schedule_b();
        assert_eq!(v.row_count(), 25);
        let cases = [
            (2u64, "1100111000001111111111110"),
            (4, "0000000001110000000000001"),
            (6, "0000000001110000000000001"),
            (8, "0000000001110000000000001"),
        ];
        for (epoch, expected) in cases {
            let bm = visible_bitmap(&v, &snap(epoch, &[]));
            assert_eq!(bm.to_bit_string(), expected, "read txn {epoch}");
        }
    }

    #[test]
    fn pending_transactions_are_invisible() {
        let mut v = EpochsVector::new();
        v.append(1, 2);
        v.append(2, 3);
        // Reader at epoch 3 with T2 still pending at its begin time.
        let bm = visible_bitmap(&v, &snap(3, &[2]));
        assert_eq!(bm.to_bit_string(), "11000");
    }

    #[test]
    fn pending_delete_is_invisible() {
        let mut v = EpochsVector::new();
        v.append(1, 3);
        v.mark_delete(2);
        // T2's delete pending when the reader began: data survives.
        let bm = visible_bitmap(&v, &snap(3, &[2]));
        assert_eq!(bm.to_bit_string(), "111");
        // Once visible, it wipes T1.
        let bm = visible_bitmap(&v, &snap(3, &[]));
        assert_eq!(bm.to_bit_string(), "000");
    }

    #[test]
    fn transaction_sees_own_rows_and_own_delete() {
        let mut v = EpochsVector::new();
        v.append(1, 2);
        v.append(3, 1); // T3's pre-delete row
        v.mark_delete(3);
        v.append(3, 2); // T3 reloads after deleting
                        // T3 itself: own delete kills T1's rows and its own row below
                        // the delete point; the two reloaded rows survive.
        let bm = visible_bitmap(&v, &snap(3, &[]));
        assert_eq!(bm.to_bit_string(), "00011");
    }

    #[test]
    fn rows_of_older_txns_after_delete_point_are_deleted() {
        // The Figure 3 subtlety: a delete also kills rows inserted by
        // older transactions *after* the delete chronologically.
        let mut v = EpochsVector::new();
        v.append(1, 2);
        v.mark_delete(4);
        v.append(1, 3); // T1 straggler appends after T4's delete
        let bm = visible_bitmap(&v, &snap(5, &[]));
        assert_eq!(bm.to_bit_string(), "00000");
    }

    #[test]
    fn rows_of_newer_txns_survive_visible_delete() {
        let mut v = EpochsVector::new();
        v.append(1, 2);
        v.mark_delete(3);
        v.append(5, 2);
        let bm = visible_bitmap(&v, &snap(6, &[]));
        assert_eq!(bm.to_bit_string(), "0011");
    }

    #[test]
    fn dominant_delete_subsumes_earlier_ones() {
        let mut v = EpochsVector::new();
        v.append(1, 2);
        v.mark_delete(2);
        v.append(3, 2);
        v.mark_delete(4);
        v.append(5, 2);
        let bm = visible_bitmap(&v, &snap(6, &[]));
        assert_eq!(bm.to_bit_string(), "000011");
        assert_eq!(
            bm,
            visible_bitmap_naive(&v, &snap(6, &[])),
            "optimized and naive cleanup must agree"
        );
    }

    #[test]
    fn later_delete_in_deps_falls_back_to_earlier() {
        let mut v = EpochsVector::new();
        v.append(1, 2);
        v.mark_delete(2);
        v.append(3, 2);
        v.mark_delete(4);
        v.append(5, 2);
        // T4's delete pending at reader begin: only T2's applies.
        let bm = visible_bitmap(&v, &snap(6, &[4]));
        assert_eq!(bm.to_bit_string(), "001111");
    }

    #[test]
    fn same_epoch_double_delete_uses_larger_point() {
        let mut v = EpochsVector::new();
        v.append(2, 2);
        v.mark_delete(2);
        v.append(2, 2);
        v.mark_delete(2);
        v.append(2, 1);
        let bm = visible_bitmap(&v, &snap(3, &[]));
        assert_eq!(bm.to_bit_string(), "00001");
    }

    #[test]
    fn same_epoch_delete_tie_break_bitmap_and_ranges_agree() {
        // Several delete markers from the *same* epoch with different
        // delete points: `dominant_delete` must tie-break on the
        // delete point (the later marker covers the earlier one), and
        // every implementation — bitmap, ranges, and the naive
        // per-delete oracle — must agree, for every deps choice that
        // flips which markers are visible.
        let mut v = EpochsVector::new();
        v.append(1, 3);
        v.mark_delete(4); // T4 marker #1, point 3
        v.append(4, 2);
        v.append(2, 1); // straggler below T4: dies to either marker
        v.mark_delete(4); // T4 marker #2, point 6 (kills its own first run)
        v.append(4, 2);
        v.append(6, 1);
        assert_eq!(v.row_count(), 9);

        for reader in [4u64, 5, 6, 7] {
            for deps in [vec![], vec![2], vec![6]] {
                let deps: Vec<Epoch> = deps.into_iter().filter(|&d| d < reader).collect();
                let snap = snap(reader, &deps);
                let bitmap = visible_bitmap(&v, &snap);
                let naive = visible_bitmap_naive(&v, &snap);
                assert_eq!(
                    bitmap.to_bit_string(),
                    naive.to_bit_string(),
                    "reader {reader} deps {deps:?}: dominant vs naive"
                );
                let mut from_ranges = columnar::Bitmap::new(bitmap.len());
                for r in visible_ranges(&v, &snap) {
                    from_ranges.set_range(r.start as usize, r.end as usize);
                }
                assert_eq!(
                    from_ranges.to_bit_string(),
                    bitmap.to_bit_string(),
                    "reader {reader} deps {deps:?}: ranges vs bitmap"
                );
                assert_eq!(visible_row_count(&v, &snap), bitmap.count_ones() as u64);
            }
        }

        // Spot-check the tie-break itself: a reader seeing T4 must use
        // the *larger* delete point (6), wiping T4's first reload run.
        let bm = visible_bitmap(&v, &snap(5, &[]));
        assert_eq!(bm.to_bit_string(), "000000110");
    }

    #[test]
    fn ranges_agree_with_bitmap_on_the_table_iii_schedules() {
        for v in [schedule_a(), schedule_b()] {
            for reader in 0..10u64 {
                // Every pending-dep set over the epochs the reader
                // could have observed in flight, not just the empty
                // one: deps change which inserts AND which deletes
                // are visible, so they stress both cleanup paths.
                for mask in 0..(1u32 << reader.saturating_sub(1).min(9)) {
                    let deps: Vec<Epoch> =
                        (1..reader).filter(|e| mask & (1 << (e - 1)) != 0).collect();
                    let snap = snap(reader, &deps);
                    let bitmap = visible_bitmap(&v, &snap);
                    let ranges = visible_ranges(&v, &snap);
                    // Disjoint, ascending, non-adjacent.
                    for pair in ranges.windows(2) {
                        assert!(pair[0].end < pair[1].start);
                    }
                    let mut from_ranges = columnar::Bitmap::new(bitmap.len());
                    for r in &ranges {
                        from_ranges.set_range(r.start as usize, r.end as usize);
                    }
                    assert_eq!(
                        from_ranges.to_bit_string(),
                        bitmap.to_bit_string(),
                        "reader {reader} deps {deps:?}"
                    );
                    assert_eq!(visible_row_count(&v, &snap), bitmap.count_ones() as u64);
                    assert_eq!(
                        visible_bitmap_naive(&v, &snap).to_bit_string(),
                        bitmap.to_bit_string(),
                        "naive oracle disagrees for reader {reader} deps {deps:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn ranges_respect_own_delete_point() {
        let mut v = EpochsVector::new();
        v.append(3, 4);
        v.mark_delete(3); // point 4 kills its own first run
        v.append(3, 2);
        let ranges = visible_ranges(&v, &snap(3, &[]));
        assert_eq!(ranges, vec![4..6]);
    }

    #[test]
    fn empty_partition_yields_empty_bitmap() {
        let v = EpochsVector::new();
        let bm = visible_bitmap(&v, &snap(5, &[]));
        assert!(bm.is_empty());
    }

    #[test]
    fn reader_before_everything_sees_nothing() {
        let v = schedule_a();
        let bm = visible_bitmap(&v, &snap(0, &[]));
        assert!(bm.is_all_zero());
    }
}
