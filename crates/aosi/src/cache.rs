//! Snapshot-keyed memoization of per-partition scan artifacts.
//!
//! Building visibility (epochs vector → bitmap or ranges) dominates
//! repeated-snapshot query cost: the artifact is a pure function of
//! the partition's entries and the snapshot's `(epoch, deps)` pair,
//! so identical reads can share one materialization. The same
//! argument covers anything else derived purely from a partition's
//! content and a snapshot — Cubrick layers per-brick *aggregate*
//! partials on the identical keying — so the machinery is a generic
//! [`SnapshotCache`] and [`VisibilityCache`] is its oldest client.
//! Each cached value is keyed on
//!
//! ```text
//! (partition id, epochs-vector generation, snapshot epoch,
//!  snapshot deps set, client tag)
//! ```
//!
//! where the *tag* is a client-chosen structural description of what
//! the value is (artifact kind for visibility; resolved query shape
//! for aggregates).
//!
//! The epochs-vector *generation* (see
//! [`EpochsVector::generation`]) is the invalidation token: every
//! content mutation — append, delete marker, purge, rollback — bumps
//! it, and rebuilds continue the counter instead of restarting it, so
//! a `(generation, snapshot)` pair can never silently alias two
//! different entry lists. A stale entry therefore becomes
//! *unreachable* the moment its partition mutates; explicit
//! [`invalidate`](SnapshotCache::invalidate) calls exist to reclaim
//! the memory eagerly, not for correctness.
//!
//! Snapshot identity is full structural equality on the deps set (via
//! the snapshot's shared handle, no copy on lookup) rather than a
//! hash fingerprint — and the same rule binds the client tag: a
//! fingerprint collision would silently violate snapshot isolation,
//! which is exactly the failure mode the scan-oracle test layer
//! exists to catch. Tags must compare structurally (`Eq`), never by
//! digest.
//!
//! Capacity is bounded with least-recently-used eviction. Lookups
//! probe under a short mutex hold and compute outside the lock, so
//! parallel per-brick scan tasks only contend on the probe/insert.

use std::collections::{BTreeSet, HashMap};
use std::hash::Hash;
use std::ops::Range;
use std::sync::Arc;

use columnar::Bitmap;
use obs::{Counter, ReportBuilder};
use parking_lot::Mutex;

use crate::epoch::Epoch;
use crate::epochs::EpochsVector;
use crate::snapshot::Snapshot;
use crate::visibility;

/// Full structural key for one cached value within a partition's
/// slot map: the invalidation token, the snapshot identity, and the
/// client's tag.
#[derive(Clone, PartialEq, Eq, Hash)]
struct SlotKey<T> {
    generation: u64,
    epoch: Epoch,
    /// The complete deps set, compared structurally. `Arc` keeps the
    /// common path (snapshot reused across partitions) allocation-free.
    deps: Arc<BTreeSet<Epoch>>,
    tag: T,
}

impl<T> SlotKey<T> {
    fn new(vector: &EpochsVector, snapshot: &Snapshot, tag: T) -> Self {
        SlotKey {
            generation: vector.generation(),
            epoch: snapshot.epoch(),
            deps: snapshot.shared_deps(),
            tag,
        }
    }
}

struct Slot<V> {
    value: V,
    last_used: u64,
}

struct Inner<K, T, V> {
    partitions: HashMap<K, HashMap<SlotKey<T>, Slot<V>>>,
    /// Total slots across all partitions (the LRU bound applies
    /// globally, not per partition).
    len: usize,
    /// Monotonic use clock for LRU ordering.
    tick: u64,
}

/// Point-in-time cache statistics, for tests and reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from a cached value.
    pub hits: u64,
    /// Lookups that had to materialize the value.
    pub misses: u64,
    /// Slots removed by explicit [`SnapshotCache::invalidate`].
    pub invalidations: u64,
    /// Slots removed by the LRU capacity bound.
    pub evictions: u64,
    /// Live slots.
    pub entries: usize,
}

/// A bounded, snapshot-keyed cache of per-partition values, generic
/// over the partition identifier `K` (Cubrick uses `(cube, brick
/// id)`), the client tag `T`, and the cached value `V`.
///
/// Thread-safe; see the module docs for the key derivation, why the
/// epochs-vector generation makes staleness structurally
/// unreachable, and why tags must be structural (no fingerprints).
pub struct SnapshotCache<K: Eq + Hash + Clone, T: Eq + Hash + Clone, V: Clone> {
    inner: Mutex<Inner<K, T, V>>,
    capacity: usize,
    hits: Counter,
    misses: Counter,
    invalidations: Counter,
    evictions: Counter,
}

impl<K: Eq + Hash + Clone, T: Eq + Hash + Clone, V: Clone> SnapshotCache<K, T, V> {
    /// A cache holding at most `capacity` values (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        SnapshotCache {
            inner: Mutex::new(Inner {
                partitions: HashMap::new(),
                len: 0,
                tick: 0,
            }),
            capacity: capacity.max(1),
            hits: Counter::new(),
            misses: Counter::new(),
            invalidations: Counter::new(),
            evictions: Counter::new(),
        }
    }

    /// The value for `(partition, vector, snapshot, tag)`, memoized:
    /// a probe under a short lock hold, then `build` runs *outside*
    /// the lock on a miss and the result is inserted.
    ///
    /// Returns the value and whether it was served from cache. The
    /// caller must pass the *current* vector of the partition named by
    /// `partition` — under Cubrick's single-writer shards that is the
    /// owning shard thread's view, which is exactly what makes the
    /// probe race-free.
    pub fn get_or_build(
        &self,
        partition: &K,
        vector: &EpochsVector,
        snapshot: &Snapshot,
        tag: T,
        build: impl FnOnce() -> V,
    ) -> (V, bool) {
        let key = SlotKey::new(vector, snapshot, tag);
        if let Some(value) = self.probe(partition, &key) {
            return (value, true);
        }
        let built = build();
        self.insert(partition, key, built.clone());
        (built, false)
    }

    /// The cached value for `(partition, vector, snapshot, tag)` if
    /// one exists, **without** building on a miss. Counts as a normal
    /// hit/miss and refreshes the slot's LRU position on a hit.
    ///
    /// This is the probe a tiered-storage residency manager uses to
    /// answer a query over an *evicted* partition from a still-warm
    /// cached value (the retained epochs vector supplies the
    /// generation key) instead of faulting the partition's data back
    /// in.
    pub fn peek(&self, partition: &K, vector: &EpochsVector, snapshot: &Snapshot, tag: T) -> Option<V> {
        let key = SlotKey::new(vector, snapshot, tag);
        self.probe(partition, &key)
    }

    /// How recently any of `partition`'s slots was used, as a
    /// fraction of the cache's current use clock: `1.0` means "hit by
    /// the latest probe", values near `0.0` mean long-cold, `None`
    /// means nothing is cached for the partition. Clock positions
    /// from different caches are not comparable, but these fractions
    /// are — the engine's residency manager takes the max across the
    /// visibility and aggregate caches so cache-warm bricks are
    /// deprioritized for eviction.
    pub fn partition_recency(&self, partition: &K) -> Option<f64> {
        let inner = self.inner.lock();
        if inner.tick == 0 {
            return None;
        }
        inner
            .partitions
            .get(partition)
            .and_then(|slots| slots.values().map(|slot| slot.last_used).max())
            .map(|last| last as f64 / inner.tick as f64)
    }

    /// Drops every value cached for `partition`, returning how many
    /// slots were reclaimed. Called by the engine after any mutation
    /// of the partition (append, delete, purge, rollback); the
    /// generation key already makes the stale slots unreachable, so
    /// this is memory reclamation, not a correctness requirement.
    pub fn invalidate(&self, partition: &K) -> usize {
        let mut inner = self.inner.lock();
        let removed = inner
            .partitions
            .remove(partition)
            .map(|slots| slots.len())
            .unwrap_or(0);
        inner.len -= removed;
        self.invalidations.add(removed as u64);
        removed
    }

    /// Drops everything.
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        let removed = inner.len;
        inner.partitions.clear();
        inner.len = 0;
        self.invalidations.add(removed as u64);
    }

    /// Live slots across all partitions.
    pub fn len(&self) -> usize {
        self.inner.lock().len
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The LRU bound this cache was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Counters plus the live-slot count, in one consistent-ish view
    /// (counters are relaxed atomics; exact under external quiescence,
    /// which is what tests provide).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            invalidations: self.invalidations.get(),
            evictions: self.evictions.get(),
            entries: self.len(),
        }
    }

    /// Appends a `[section]` block with the cache counters to an obs
    /// report.
    pub fn report_as(&self, report: &mut ReportBuilder, section: &str) {
        report
            .section(section)
            .counter("hits", &self.hits)
            .counter("misses", &self.misses)
            .counter("invalidations", &self.invalidations)
            .counter("evictions", &self.evictions)
            .metric("entries", self.len())
            .metric("capacity", self.capacity);
    }

    /// Applies `corrupt` to every cached value in place — *without*
    /// touching generations or keys, simulating the exact failure the
    /// generation token exists to prevent (a stale cache serving
    /// wrong bytes). Test-only: exists so oracle meta-tests can prove
    /// their differential layer detects a poisoned cache.
    #[doc(hidden)]
    pub fn corrupt_values_for_test(&self, mut corrupt: impl FnMut(&mut V)) {
        let mut inner = self.inner.lock();
        for slots in inner.partitions.values_mut() {
            for slot in slots.values_mut() {
                corrupt(&mut slot.value);
            }
        }
    }

    fn probe(&self, partition: &K, key: &SlotKey<T>) -> Option<V> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner
            .partitions
            .get_mut(partition)
            .and_then(|slots| slots.get_mut(key))
        {
            Some(slot) => {
                slot.last_used = tick;
                self.hits.inc();
                Some(slot.value.clone())
            }
            None => {
                self.misses.inc();
                None
            }
        }
    }

    fn insert(&self, partition: &K, key: SlotKey<T>, value: V) {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        // Make room first (never evicts the slot being inserted).
        while inner.len >= self.capacity {
            if !Self::evict_lru(&mut inner) {
                break;
            }
            self.evictions.inc();
        }
        let slots = inner.partitions.entry(partition.clone()).or_default();
        if slots
            .insert(
                key,
                Slot {
                    value,
                    last_used: tick,
                },
            )
            .is_none()
        {
            inner.len += 1;
        }
    }

    /// Removes the globally least-recently-used slot. Linear in the
    /// number of slots — acceptable because it only runs at capacity,
    /// and capacity bounds the scan.
    fn evict_lru(inner: &mut Inner<K, T, V>) -> bool {
        let mut victim: Option<(K, SlotKey<T>, u64)> = None;
        for (pk, slots) in &inner.partitions {
            for (ak, slot) in slots {
                if victim.as_ref().is_none_or(|(_, _, t)| slot.last_used < *t) {
                    victim = Some((pk.clone(), ak.clone(), slot.last_used));
                }
            }
        }
        let Some((pk, ak, _)) = victim else {
            return false;
        };
        if let Some(slots) = inner.partitions.get_mut(&pk) {
            slots.remove(&ak);
            if slots.is_empty() {
                inner.partitions.remove(&pk);
            }
        }
        inner.len -= 1;
        true
    }
}

/// Which artifact a visibility-cache slot holds. Bitmaps and ranges
/// for the same `(generation, snapshot)` are distinct entries:
/// queries with per-row filters need the bitmap while unfiltered
/// scans take the range fast path, and the two are not
/// interconvertible for free.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum ArtifactKind {
    Bitmap,
    Ranges,
}

#[derive(Clone)]
enum Artifact {
    Bitmap(Arc<Bitmap>),
    Ranges(Arc<Vec<Range<u64>>>),
}

/// A bounded, snapshot-keyed cache of visibility artifacts, generic
/// over the partition identifier `K` — a [`SnapshotCache`] tagged by
/// artifact kind.
pub struct VisibilityCache<K: Eq + Hash + Clone> {
    cache: SnapshotCache<K, ArtifactKind, Artifact>,
}

impl<K: Eq + Hash + Clone> VisibilityCache<K> {
    /// A cache holding at most `capacity` artifacts (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        VisibilityCache {
            cache: SnapshotCache::new(capacity),
        }
    }

    /// The visibility bitmap for `snapshot` over `vector`, memoized.
    ///
    /// Returns the artifact and whether it was served from cache.
    pub fn bitmap(
        &self,
        partition: &K,
        vector: &EpochsVector,
        snapshot: &Snapshot,
    ) -> (Arc<Bitmap>, bool) {
        let (artifact, hit) =
            self.cache
                .get_or_build(partition, vector, snapshot, ArtifactKind::Bitmap, || {
                    Artifact::Bitmap(Arc::new(visibility::visible_bitmap(vector, snapshot)))
                });
        match artifact {
            Artifact::Bitmap(b) => (b, hit),
            Artifact::Ranges(_) => unreachable!("Bitmap tag only ever stores bitmaps"),
        }
    }

    /// The visible ranges for `snapshot` over `vector`, memoized.
    pub fn ranges(
        &self,
        partition: &K,
        vector: &EpochsVector,
        snapshot: &Snapshot,
    ) -> (Arc<Vec<Range<u64>>>, bool) {
        let (artifact, hit) =
            self.cache
                .get_or_build(partition, vector, snapshot, ArtifactKind::Ranges, || {
                    Artifact::Ranges(Arc::new(visibility::visible_ranges(vector, snapshot)))
                });
        match artifact {
            Artifact::Ranges(r) => (r, hit),
            Artifact::Bitmap(_) => unreachable!("Ranges tag only ever stores ranges"),
        }
    }

    /// Drops every artifact cached for `partition`, returning how many
    /// slots were reclaimed.
    pub fn invalidate(&self, partition: &K) -> usize {
        self.cache.invalidate(partition)
    }

    /// How recently any of `partition`'s artifacts was used, as a
    /// fraction of the cache's use clock (see
    /// [`SnapshotCache::partition_recency`]).
    pub fn partition_recency(&self, partition: &K) -> Option<f64> {
        self.cache.partition_recency(partition)
    }

    /// Drops everything.
    pub fn clear(&self) {
        self.cache.clear()
    }

    /// Live slots across all partitions.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }

    /// The LRU bound this cache was built with.
    pub fn capacity(&self) -> usize {
        self.cache.capacity()
    }

    /// Counters plus the live-slot count.
    pub fn stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Appends a `[section]` block with the cache counters to an obs
    /// report.
    pub fn report_as(&self, report: &mut ReportBuilder, section: &str) {
        self.cache.report_as(report, section)
    }

    /// Corrupts every cached artifact in place — bitmaps are inverted,
    /// range lists emptied — *without* touching generations or keys,
    /// simulating the exact failure the generation token exists to
    /// prevent. Test-only: exists so the scan-oracle meta-test can
    /// prove the oracle detects a stale cache serving wrong bytes.
    #[doc(hidden)]
    pub fn corrupt_for_test(&self) {
        self.cache
            .corrupt_values_for_test(|artifact| match artifact {
                Artifact::Bitmap(b) => {
                    let mut inverted = Bitmap::new(b.len());
                    for i in 0..b.len() {
                        if !b.get(i) {
                            inverted.set(i);
                        }
                    }
                    *artifact = Artifact::Bitmap(Arc::new(inverted));
                }
                Artifact::Ranges(_) => {
                    *artifact = Artifact::Ranges(Arc::new(Vec::new()));
                }
            });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::purge::purge;
    use crate::rollback::rollback_partition;

    fn vector(appends: &[(Epoch, u64)]) -> EpochsVector {
        let mut v = EpochsVector::new();
        for &(epoch, count) in appends {
            v.append(epoch, count);
        }
        v
    }

    /// Warm both kinds for `partition` at `snapshot` and assert the
    /// next lookups hit.
    fn warm(
        cache: &VisibilityCache<&'static str>,
        partition: &'static str,
        v: &EpochsVector,
        s: &Snapshot,
    ) {
        let (_, hit) = cache.bitmap(&partition, v, s);
        assert!(!hit, "first bitmap lookup must miss");
        let (_, hit) = cache.ranges(&partition, v, s);
        assert!(!hit, "first ranges lookup must miss");
        let (_, hit) = cache.bitmap(&partition, v, s);
        assert!(hit, "warmed bitmap must hit");
        let (_, hit) = cache.ranges(&partition, v, s);
        assert!(hit, "warmed ranges must hit");
    }

    #[test]
    fn hit_returns_the_same_artifact_bytes() {
        let cache = VisibilityCache::new(64);
        let v = vector(&[(1, 3), (2, 4)]);
        let s = Snapshot::committed(2);
        let (first, hit0) = cache.bitmap(&"p", &v, &s);
        let (second, hit1) = cache.bitmap(&"p", &v, &s);
        assert!(!hit0 && hit1);
        assert!(Arc::ptr_eq(&first, &second), "hit shares the artifact");
        assert_eq!(*first, v.visible_bitmap(&s), "artifact matches direct");
        let (r, _) = cache.ranges(&"p", &v, &s);
        assert_eq!(*r, v.visible_ranges(&s));
    }

    #[test]
    fn distinct_snapshots_get_distinct_slots() {
        let cache = VisibilityCache::new(64);
        let v = vector(&[(1, 2), (3, 2)]);
        let deps: BTreeSet<Epoch> = [3].into_iter().collect();
        let with_dep = Snapshot::new(4, deps);
        let without = Snapshot::committed(4);
        let (a, _) = cache.bitmap(&"p", &v, &with_dep);
        let (b, _) = cache.bitmap(&"p", &v, &without);
        // Same epoch, different deps: structurally different keys and
        // different bytes — a fingerprint scheme could collide here.
        assert_ne!(*a, *b);
        assert_eq!(cache.stats().misses, 2);
    }

    // One test per mutation class below: the affected partition's
    // cached keys must stop being served (and be reclaimable), while
    // an unaffected partition's warmed snapshots still hit.

    #[test]
    fn append_invalidates_affected_keys_only() {
        let cache = VisibilityCache::new(64);
        let mut a = vector(&[(1, 4)]);
        let b = vector(&[(1, 2)]);
        let s = Snapshot::committed(1);
        warm(&cache, "a", &a, &s);
        warm(&cache, "b", &b, &s);

        // Mutation class: append. Generation moves, so the old slots
        // are unreachable even before the explicit invalidate.
        a.append(2, 3);
        let (bm, hit) = cache.bitmap(&"a", &a, &s);
        assert!(!hit, "post-append lookup must not serve the stale slot");
        assert_eq!(*bm, a.visible_bitmap(&s), "recomputed artifact correct");

        // Explicit invalidation reclaims a's slots (old gen + new gen).
        assert_eq!(cache.invalidate(&"a"), 3);
        // Unaffected partition still hits.
        let (_, hit) = cache.bitmap(&"b", &b, &s);
        assert!(hit, "unaffected partition must keep hitting");
        let (_, hit) = cache.ranges(&"b", &b, &s);
        assert!(hit);
    }

    #[test]
    fn partition_delete_invalidates_affected_keys_only() {
        let cache = VisibilityCache::new(64);
        let mut a = vector(&[(1, 4)]);
        let b = vector(&[(1, 2)]);
        let s_old = Snapshot::committed(1);
        warm(&cache, "a", &a, &s_old);
        warm(&cache, "b", &b, &s_old);

        // Mutation class: partition delete (marker push).
        a.mark_delete(2);
        assert_eq!(cache.invalidate(&"a"), 2);

        // Old snapshot recomputes and still sees the rows (delete at
        // epoch 2 is invisible at epoch 1); a snapshot past the delete
        // sees nothing.
        let (bm, hit) = cache.bitmap(&"a", &a, &s_old);
        assert!(!hit);
        assert_eq!(bm.count_ones(), 4);
        let (bm2, _) = cache.bitmap(&"a", &a, &Snapshot::committed(2));
        assert_eq!(bm2.count_ones(), 0);

        let (_, hit) = cache.bitmap(&"b", &b, &s_old);
        assert!(hit, "unaffected partition must keep hitting");
    }

    #[test]
    fn rollback_invalidates_affected_keys_only() {
        let cache = VisibilityCache::new(64);
        let a = vector(&[(1, 2), (3, 3)]);
        let b = vector(&[(1, 2)]);
        let s = Snapshot::committed(3);
        warm(&cache, "a", &a, &s);
        warm(&cache, "b", &b, &s);

        // Mutation class: rollback rebuild. The replacement vector
        // continues the generation counter, so the stale slots keyed
        // at the old generation can never be served for it.
        let rolled = rollback_partition(&a, 3).vector;
        assert!(rolled.generation() > a.generation());
        let (bm, hit) = cache.bitmap(&"a", &rolled, &s);
        assert!(!hit, "rebuilt vector must miss the stale slot");
        assert_eq!(*bm, rolled.visible_bitmap(&s));
        assert_eq!(bm.count_ones(), 2, "aborted epoch's rows are gone");

        assert_eq!(cache.invalidate(&"a"), 3, "old-gen slots reclaimed");
        let (_, hit) = cache.bitmap(&"b", &b, &s);
        assert!(hit, "unaffected partition must keep hitting");
    }

    #[test]
    fn purge_invalidates_affected_keys_only() {
        let cache = VisibilityCache::new(64);
        let mut a = vector(&[(1, 2), (2, 3)]);
        a.mark_delete(3);
        let b = vector(&[(1, 2)]);
        let s = Snapshot::committed(4);
        warm(&cache, "a", &a, &s);
        warm(&cache, "b", &b, &s);

        // Mutation class: purge / LSE advance past the delete.
        let purged = purge(&a, 4).vector;
        assert!(purged.generation() > a.generation());
        assert_eq!(purged.row_count(), 0, "delete applied by purge");
        let (bm, hit) = cache.bitmap(&"a", &purged, &s);
        assert!(!hit, "purged vector must miss the stale slot");
        assert_eq!(bm.len(), 0);

        assert_eq!(cache.invalidate(&"a"), 3);
        let (_, hit) = cache.ranges(&"b", &b, &s);
        assert!(hit, "unaffected partition must keep hitting");
    }

    #[test]
    fn generation_is_never_reused_across_a_rebuild() {
        // The soundness property behind the key: after purge, a
        // lookup keyed by the *new* vector can not collide with a slot
        // cached for the old contents, even with no invalidate call.
        let cache = VisibilityCache::new(64);
        let mut v = vector(&[(1, 2)]);
        v.append(2, 2);
        let s = Snapshot::committed(2);
        let (old_bm, _) = cache.bitmap(&"p", &v, &s);
        assert_eq!(old_bm.count_ones(), 4);

        let purged = purge(&v, 2).vector; // merges entries, rows stay
        let (new_bm, hit) = cache.bitmap(&"p", &purged, &s);
        assert!(!hit);
        assert_eq!(*new_bm, purged.visible_bitmap(&s));
    }

    #[test]
    fn lru_evicts_the_coldest_slot_at_capacity() {
        let cache = VisibilityCache::new(2);
        let v = vector(&[(1, 2)]);
        let s1 = Snapshot::committed(1);
        let s2 = Snapshot::committed(2);
        let s3 = Snapshot::committed(3);
        cache.bitmap(&"p", &v, &s1);
        cache.bitmap(&"p", &v, &s2);
        // Touch s1 so s2 is the LRU victim.
        let (_, hit) = cache.bitmap(&"p", &v, &s1);
        assert!(hit);
        cache.bitmap(&"p", &v, &s3);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        let (_, hit) = cache.bitmap(&"p", &v, &s1);
        assert!(hit, "recently used slot survives");
        let (_, hit) = cache.bitmap(&"p", &v, &s2);
        assert!(!hit, "cold slot was evicted");
    }

    #[test]
    fn corrupt_for_test_poisons_cached_artifacts() {
        let cache = VisibilityCache::new(64);
        let v = vector(&[(1, 3)]);
        let s = Snapshot::committed(1);
        cache.bitmap(&"p", &v, &s);
        cache.ranges(&"p", &v, &s);
        cache.corrupt_for_test();
        let (bm, hit) = cache.bitmap(&"p", &v, &s);
        assert!(hit, "corruption must not evict — that is the point");
        assert_ne!(*bm, v.visible_bitmap(&s));
        let (r, hit) = cache.ranges(&"p", &v, &s);
        assert!(hit);
        assert!(r.is_empty());
    }

    #[test]
    fn stats_and_report() {
        let cache: VisibilityCache<&'static str> = VisibilityCache::new(8);
        let v = vector(&[(1, 1)]);
        let s = Snapshot::committed(1);
        cache.bitmap(&"p", &v, &s);
        cache.bitmap(&"p", &v, &s);
        cache.invalidate(&"p");
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.invalidations, 1);
        assert_eq!(stats.entries, 0);
        let mut report = ReportBuilder::new();
        cache.report_as(&mut report, "cache");
        let text = report.finish();
        assert!(text.contains("[cache]"));
        assert!(text.contains("hits"));
    }

    // SnapshotCache-generic behavior, exercised with an arbitrary
    // value type the visibility wrapper never stores.

    #[test]
    fn generic_cache_keys_on_the_client_tag_structurally() {
        let cache: SnapshotCache<&'static str, (u32, Vec<u32>), u64> = SnapshotCache::new(64);
        let v = vector(&[(1, 3)]);
        let s = Snapshot::committed(1);
        let (a, hit) = cache.get_or_build(&"p", &v, &s, (7, vec![1, 2]), || 10);
        assert!(!hit);
        assert_eq!(a, 10);
        // Same tag value, built fresh elsewhere: structural equality
        // means it hits, and the builder must not run.
        let (b, hit) = cache.get_or_build(&"p", &v, &s, (7, vec![1, 2]), || {
            panic!("hit path must not rebuild")
        });
        assert!(hit);
        assert_eq!(b, 10);
        // A different tag is a different slot.
        let (c, hit) = cache.get_or_build(&"p", &v, &s, (7, vec![1, 3]), || 20);
        assert!(!hit);
        assert_eq!(c, 20);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn peek_probes_without_building() {
        let cache: SnapshotCache<&'static str, u8, u64> = SnapshotCache::new(64);
        let v = vector(&[(1, 3)]);
        let s = Snapshot::committed(1);
        assert_eq!(cache.peek(&"p", &v, &s, 0), None, "cold probe builds nothing");
        cache.get_or_build(&"p", &v, &s, 0, || 7);
        assert_eq!(cache.peek(&"p", &v, &s, 0), Some(7));
        assert_eq!(cache.peek(&"p", &v, &s, 1), None, "tag is part of the key");
        // A mutated vector (new generation) must never serve the old
        // value — the exact property that makes peek safe for evicted
        // partitions whose retained epochs vector supplies the key.
        let mut moved = vector(&[(1, 3)]);
        moved.append(2, 1);
        assert_eq!(cache.peek(&"p", &moved, &s, 0), None);
    }

    #[test]
    fn partition_recency_tracks_the_use_clock() {
        let cache: SnapshotCache<&'static str, u8, u64> = SnapshotCache::new(64);
        let v = vector(&[(1, 3)]);
        let s = Snapshot::committed(1);
        assert_eq!(cache.partition_recency(&"p"), None, "empty cache");
        cache.get_or_build(&"p", &v, &s, 0, || 1);
        cache.get_or_build(&"q", &v, &s, 0, || 2);
        let p = cache.partition_recency(&"p").unwrap();
        let q = cache.partition_recency(&"q").unwrap();
        assert!(q > p, "q touched last: {q} vs {p}");
        assert!(q <= 1.0);
        // Re-probing p makes it the warmer partition again.
        cache.get_or_build(&"p", &v, &s, 0, || 1);
        assert!(cache.partition_recency(&"p").unwrap() > cache.partition_recency(&"q").unwrap());
        assert_eq!(cache.partition_recency(&"missing"), None);
    }

    #[test]
    fn generic_cache_invalidation_and_corruption() {
        let cache: SnapshotCache<&'static str, u8, u64> = SnapshotCache::new(64);
        let v = vector(&[(1, 3)]);
        let s = Snapshot::committed(1);
        cache.get_or_build(&"p", &v, &s, 0, || 1);
        cache.get_or_build(&"q", &v, &s, 0, || 2);
        cache.corrupt_values_for_test(|value| *value += 100);
        let (poisoned, hit) = cache.get_or_build(&"p", &v, &s, 0, || 1);
        assert!(hit, "corruption must not evict");
        assert_eq!(poisoned, 101);
        assert_eq!(cache.invalidate(&"p"), 1);
        let (rebuilt, hit) = cache.get_or_build(&"p", &v, &s, 0, || 1);
        assert!(!hit);
        assert_eq!(rebuilt, 1);
        let (other, hit) = cache.get_or_build(&"q", &v, &s, 0, || 2);
        assert!(hit, "unaffected partition must keep hitting");
        assert_eq!(other, 102, "…even if what it serves was poisoned");
    }
}
