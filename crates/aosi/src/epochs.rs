//! The per-partition epochs vector (Section III-C, Figure 1).
//!
//! "Within each partition AOSI maintains an auxiliary vector called
//! *epochs* that keeps track of the association between records and
//! the transactions that inserted them." Each entry is one
//! `(epoch, idx)` pair — the implicit id of the last record the
//! transaction has inserted so far — plus a reserved bit marking
//! partition-delete events.
//!
//! Appends by the transaction already at the back of the vector
//! extend the back entry in place (Figure 1(b)); appends by any other
//! transaction push a new entry (Figure 1(c)). A partition-delete
//! pushes a marker carrying the current row count (Figure 2).
//!
//! The structure is single-writer by design: in Cubrick every
//! operation on a partition is applied by the one shard thread that
//! owns it (Section V-B), so the vector needs no internal locking —
//! this is where "completely lock-free" comes from.

use crate::epoch::{Epoch, EpochEntry};
use crate::snapshot::Snapshot;
use crate::visibility;
use columnar::Bitmap;

/// Transactional metadata for one partition.
#[derive(Clone, Debug, Default)]
pub struct EpochsVector {
    entries: Vec<EpochEntry>,
    /// Total rows in the partition's data vectors (the exclusive end
    /// of the last insert entry).
    rows: u64,
    /// Monotonic mutation counter: bumped by every entry-visible
    /// mutation (append, delete marker, purge, rollback). Two reads of
    /// the same partition observing the same generation are guaranteed
    /// to observe the same entries, which is what makes the generation
    /// a sound cache-invalidation token for
    /// [`VisibilityCache`](crate::VisibilityCache): entries are
    /// append-only between generation bumps, and rebuilds (purge,
    /// rollback) continue the counter rather than restarting it, so a
    /// generation value is never reused for different contents.
    generation: u64,
}

/// Equality compares the transactional content (entries and row
/// count), not the mutation [`generation`](EpochsVector::generation):
/// a purge-rebuilt vector equals a never-purged vector holding the
/// same entries even though their histories differ.
impl PartialEq for EpochsVector {
    fn eq(&self, other: &Self) -> bool {
        self.entries == other.entries && self.rows == other.rows
    }
}

impl Eq for EpochsVector {}

impl EpochsVector {
    /// Empty vector for a fresh partition.
    pub fn new() -> Self {
        EpochsVector::default()
    }

    /// Rebuilds a vector from parts (used by purge/rollback/recovery).
    ///
    /// # Panics
    /// In debug builds, panics if insert-entry ends are not strictly
    /// increasing or `rows` mismatches the final end.
    pub fn from_parts(entries: Vec<EpochEntry>, rows: u64) -> Self {
        #[cfg(debug_assertions)]
        {
            let mut prev = 0u64;
            for e in entries.iter().filter(|e| !e.is_delete()) {
                assert!(e.end() > prev || (e.end() == 0 && prev == 0));
                prev = e.end();
            }
            assert_eq!(prev, rows, "rows must equal the last insert end");
        }
        EpochsVector {
            entries,
            rows,
            generation: 0,
        }
    }

    /// Rebuilds a vector from parts **including its exact mutation
    /// generation** — the reload half of tiered storage. A spilled
    /// partition's snapshot stores the generation alongside the
    /// entries; restoring it verbatim keeps every cache slot keyed
    /// before the eviction valid (the contents are bit-identical),
    /// and — because spill-eligible partitions are immutable-cold —
    /// no mutation can have advanced the counter in between, so the
    /// value can never alias different contents.
    ///
    /// # Panics
    /// In debug builds, panics under the same validation as
    /// [`EpochsVector::from_parts`].
    pub fn from_parts_with_generation(
        entries: Vec<EpochEntry>,
        rows: u64,
        generation: u64,
    ) -> Self {
        let mut vector = EpochsVector::from_parts(entries, rows);
        vector.generation = generation;
        vector
    }

    /// The mutation generation (see the field docs). Starts at 0 for a
    /// fresh partition and increases on every content change.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Forces the generation counter, used by purge/rollback to carry
    /// the source partition's history forward (`source + 1`) so a
    /// rebuilt vector never reuses a generation that previously named
    /// different contents.
    pub(crate) fn set_generation(&mut self, generation: u64) {
        self.generation = generation;
    }

    /// Records the append of `count` rows by `epoch`.
    ///
    /// Returns the range of row ids `[start, end)` the caller must
    /// fill in the data vectors.
    pub fn append(&mut self, epoch: Epoch, count: u64) -> std::ops::Range<u64> {
        let start = self.rows;
        let end = start + count;
        if count == 0 {
            return start..end;
        }
        match self.entries.last_mut() {
            // Figure 1(b): same transaction still at the back — just
            // advance its idx.
            Some(last) if !last.is_delete() && last.epoch() == epoch => {
                last.extend_to(end);
            }
            _ => self.entries.push(EpochEntry::insert(epoch, end)),
        }
        self.rows = end;
        self.generation += 1;
        start..end
    }

    /// Records a partition-delete by `epoch` at the current row count.
    ///
    /// The data is only *marked* deleted; removal happens in purge
    /// once LSE passes the delete (Section III-C2).
    pub fn mark_delete(&mut self, epoch: Epoch) {
        self.entries.push(EpochEntry::delete(epoch, self.rows));
        self.generation += 1;
    }

    /// All entries, in append order.
    pub fn entries(&self) -> &[EpochEntry] {
        &self.entries
    }

    /// Total rows covered (the partition's data-vector length).
    pub fn row_count(&self) -> u64 {
        self.rows
    }

    /// `true` if no entry has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `true` if purge at `lse` would do useful work: a delete marker
    /// from an epoch `<= lse` is pending application, or two adjacent
    /// insert entries at or below `lse` can merge (Section III-C4:
    /// "if there are no entries … older than LSE and no pending
    /// delete operations, the purge procedure skips the … partition").
    pub fn needs_purge(&self, lse: Epoch) -> bool {
        let mut prev_insert_old = false;
        for e in &self.entries {
            if e.is_delete() {
                if e.epoch() <= lse {
                    return true;
                }
                // A retained marker breaks insert adjacency.
                prev_insert_old = false;
            } else if e.epoch() <= lse {
                if prev_insert_old {
                    return true;
                }
                prev_insert_old = true;
            } else {
                prev_insert_old = false;
            }
        }
        false
    }

    /// Materializes the visibility bitmap for `snapshot` over this
    /// partition (Section III-C3, Table III).
    pub fn visible_bitmap(&self, snapshot: &Snapshot) -> Bitmap {
        visibility::visible_bitmap(self, snapshot)
    }

    /// Number of rows `snapshot` sees, computed from visible ranges
    /// without materializing a bitmap.
    pub fn visible_rows(&self, snapshot: &Snapshot) -> u64 {
        visibility::visible_row_count(self, snapshot)
    }

    /// The visible rows as disjoint ascending ranges (the scan fast
    /// path when no per-row filtering is needed).
    pub fn visible_ranges(&self, snapshot: &Snapshot) -> Vec<std::ops::Range<u64>> {
        visibility::visible_ranges(self, snapshot)
    }

    /// Heap bytes held by the entries — the "AOSI overhead" series of
    /// Figures 6 and 7.
    pub fn heap_bytes(&self) -> usize {
        self.entries.capacity() * std::mem::size_of::<EpochEntry>()
    }

    /// Bytes actually used by live entries (capacity-independent).
    pub fn used_bytes(&self) -> usize {
        self.entries.len() * std::mem::size_of::<EpochEntry>()
    }

    /// Releases excess capacity (after purge shrinks the vector).
    pub fn shrink_to_fit(&mut self) {
        self.entries.shrink_to_fit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Renders entries like the paper's figures: `(T1, 2)(T2, 8)…`
    fn render(v: &EpochsVector) -> String {
        v.entries().iter().map(|e| format!("{e:?}")).collect()
    }

    #[test]
    fn figure_1_walkthrough() {
        // Figure 1: T1 and T2 appending to the same partition.
        let mut v = EpochsVector::new();
        // (a) T1 inserts 3 records -> pair (T1, idx 2).
        assert_eq!(v.append(1, 3), 0..3);
        assert_eq!(v.entries().len(), 1);
        assert_eq!(v.entries()[0].last_idx(), Some(2));
        // (b) T1 inserts 2 more: back entry's idx is incremented.
        assert_eq!(v.append(1, 2), 3..5);
        assert_eq!(v.entries().len(), 1);
        assert_eq!(v.entries()[0].last_idx(), Some(4));
        // (c) T2 inserts 4: new pair (T2, idx 8).
        assert_eq!(v.append(2, 4), 5..9);
        assert_eq!(v.entries().len(), 2);
        assert_eq!(v.entries()[1].last_idx(), Some(8));
        // (d) T1 inserts 4 more: T1 is no longer at the back, so a
        // new entry is added.
        assert_eq!(v.append(1, 4), 9..13);
        assert_eq!(v.entries().len(), 3);
        assert_eq!(render(&v), "(T1, 5)(T2, 9)(T1, 13)");
        assert_eq!(v.row_count(), 13);
    }

    #[test]
    fn delete_marker_records_current_row_count() {
        let mut v = EpochsVector::new();
        v.append(1, 2);
        v.append(3, 2);
        v.mark_delete(5);
        v.append(3, 4);
        assert_eq!(render(&v), "(T1, 2)(T3, 4)(T5, DELETE@4)(T3, 8)");
        assert_eq!(v.row_count(), 8);
    }

    #[test]
    fn append_after_own_delete_starts_new_entry() {
        // A transaction appending after its own delete marker must not
        // extend an entry across the marker.
        let mut v = EpochsVector::new();
        v.append(3, 2);
        v.mark_delete(3);
        v.append(3, 2);
        assert_eq!(render(&v), "(T3, 2)(T3, DELETE@2)(T3, 4)");
    }

    #[test]
    fn zero_count_append_adds_nothing() {
        let mut v = EpochsVector::new();
        let r = v.append(1, 0);
        assert!(r.is_empty());
        assert!(v.is_empty());
        assert_eq!(v.row_count(), 0);
    }

    #[test]
    fn delete_on_empty_partition() {
        let mut v = EpochsVector::new();
        v.mark_delete(2);
        assert_eq!(v.row_count(), 0);
        assert_eq!(v.entries()[0].end(), 0);
        assert!(v.entries()[0].is_delete());
    }

    #[test]
    fn needs_purge_detects_applicable_deletes_and_old_history() {
        let mut v = EpochsVector::new();
        v.append(1, 2);
        assert!(!v.needs_purge(0), "nothing at or below LSE 0");
        assert!(!v.needs_purge(5), "single old entry cannot compact further");
        v.append(3, 2);
        assert!(v.needs_purge(3), "two old entries can merge");
        let mut d = EpochsVector::new();
        d.append(1, 2);
        d.mark_delete(2);
        assert!(!d.needs_purge(1), "delete at epoch 2 not yet safe");
        assert!(d.needs_purge(2), "delete at epoch 2 applicable");
    }

    #[test]
    fn memory_accounting_counts_entries_not_rows() {
        let mut v = EpochsVector::new();
        // One transaction loading a million rows in many batches costs
        // a single 16-byte entry — the paper's core memory claim.
        for _ in 0..1000 {
            v.append(1, 1000);
        }
        assert_eq!(v.row_count(), 1_000_000);
        assert_eq!(v.used_bytes(), 16);
    }

    #[test]
    fn from_parts_roundtrip() {
        let mut v = EpochsVector::new();
        v.append(1, 3);
        v.mark_delete(2);
        v.append(3, 1);
        let rebuilt = EpochsVector::from_parts(v.entries().to_vec(), v.row_count());
        assert_eq!(rebuilt, v);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "rows must equal")]
    fn from_parts_validates_rows() {
        EpochsVector::from_parts(vec![EpochEntry::insert(1, 3)], 5);
    }

    #[test]
    fn from_parts_with_generation_restores_the_counter_exactly() {
        let mut v = EpochsVector::new();
        v.append(1, 3);
        v.mark_delete(2);
        assert_eq!(v.generation(), 2);
        let rebuilt = EpochsVector::from_parts_with_generation(
            v.entries().to_vec(),
            v.row_count(),
            v.generation(),
        );
        assert_eq!(rebuilt, v);
        assert_eq!(rebuilt.generation(), v.generation());
        // Plain from_parts restarts the counter — the reload path must
        // not use it, or cache keys minted before an eviction would
        // alias a generation the rebuilt vector re-earns later.
        assert_eq!(
            EpochsVector::from_parts(v.entries().to_vec(), v.row_count()).generation(),
            0
        );
    }

    #[test]
    fn generation_bumps_on_every_content_change() {
        let mut v = EpochsVector::new();
        assert_eq!(v.generation(), 0);
        v.append(1, 3);
        assert_eq!(v.generation(), 1);
        // In-place extension of the back entry is still a content
        // change: the bitmap for the same snapshot would gain rows.
        v.append(1, 2);
        assert_eq!(v.generation(), 2);
        v.mark_delete(2);
        assert_eq!(v.generation(), 3);
        // Zero-count appends change nothing and must not invalidate.
        v.append(3, 0);
        assert_eq!(v.generation(), 3);
    }

    #[test]
    fn equality_ignores_generation() {
        let mut a = EpochsVector::new();
        a.append(1, 2);
        a.append(1, 2);
        let mut b = EpochsVector::new();
        b.append(1, 4);
        assert_ne!(a.generation(), b.generation());
        assert_eq!(a, b, "same entries and rows compare equal");
    }
}
