//! Transaction handles.

use crate::epoch::Epoch;
use crate::snapshot::Snapshot;

/// Whether a transaction may write.
///
/// "Implicit transactions initialized by a read operation (query) are
/// always RO … RO transactions are always assigned to the latest
/// committed epoch, whereas RW transactions generate a new
/// uncommitted epoch and advance the system's clock" (Section III-A).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxnKind {
    /// Read-only: runs at LCE, never enters `pendingTxs`.
    ReadOnly,
    /// Read-write: owns a fresh epoch, tracked in `pendingTxs`.
    ReadWrite,
}

/// Lifecycle state of a read-write transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxnState {
    /// Started but not yet finished.
    Pending,
    /// Committed (possibly still awaiting LCE advancement).
    Committed,
    /// Rolled back; its rows are garbage to be reclaimed.
    RolledBack,
}

/// A transaction handle.
///
/// The handle is a passive token: all state transitions go through
/// the [`TxnManager`](crate::TxnManager) that issued it, keeping the
/// handle `Send + Sync` and trivially cloneable for fan-out to the
/// shards executing the transaction's operations.
#[derive(Clone, Debug)]
pub struct Txn {
    epoch: Epoch,
    kind: TxnKind,
    snapshot: Snapshot,
}

impl Txn {
    pub(crate) fn new(epoch: Epoch, kind: TxnKind, snapshot: Snapshot) -> Self {
        Txn {
            epoch,
            kind,
            snapshot,
        }
    }

    /// The transaction's timestamp.
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// RO or RW.
    pub fn kind(&self) -> TxnKind {
        self.kind
    }

    /// `true` for read-write transactions.
    pub fn is_rw(&self) -> bool {
        self.kind == TxnKind::ReadWrite
    }

    /// The snapshot this transaction reads from.
    pub fn snapshot(&self) -> &Snapshot {
        &self.snapshot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_exposes_epoch_and_kind() {
        let t = Txn::new(7, TxnKind::ReadWrite, Snapshot::committed(7));
        assert_eq!(t.epoch(), 7);
        assert!(t.is_rw());
        assert_eq!(t.snapshot().epoch(), 7);
        let r = Txn::new(3, TxnKind::ReadOnly, Snapshot::committed(3));
        assert!(!r.is_rw());
    }
}
