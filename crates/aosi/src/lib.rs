//! # AOSI — Append-Only Snapshot Isolation
//!
//! This crate implements the concurrency-control protocol from
//! *Rethinking Concurrency Control for In-Memory OLAP DBMSs*
//! (Pedreira et al., ICDE 2018): a lock-free, single-version,
//! timestamp-based protocol that provides Snapshot Isolation for
//! column-oriented OLAP engines by dropping support for record
//! updates and single-record deletes.
//!
//! ## Protocol in one paragraph
//!
//! Every read-write transaction gets a monotonically increasing
//! *epoch* from its node's [`EpochClock`]. Nodes stride their epochs
//! (node *i* of *n* issues `i, i+n, i+2n, …`) so epochs never collide
//! across a cluster, and Lamport-style clock merging keeps nodes
//! loosely synchronized. Each partition keeps a tiny auxiliary
//! [`EpochsVector`]: one `(epoch, end, is_delete)` entry per
//! contiguous run of rows appended by one transaction — **not** one
//! timestamp per record. A transaction's [`Snapshot`] is its epoch
//! plus the set of transactions that were still pending when it began
//! (`deps`); a scan materializes the snapshot into a per-partition
//! visibility [`Bitmap`](columnar::Bitmap) and hands it to the
//! execution engine. Partition-level deletes are markers in the
//! epochs vector; `purge` applies them and compacts history once the
//! *Latest Safe Epoch* passes them.
//!
//! ## Key types
//!
//! * [`EpochClock`] — the three per-node counters (EC, LCE, LSE) with
//!   the invariant `EC > LCE >= LSE`, plus Lamport merging.
//! * [`TxnManager`] — begins/commits/rolls back transactions,
//!   maintains `pendingTxs`, and advances LCE/LSE per the paper's
//!   rules (Section III-B, Table I).
//! * [`EpochsVector`] — the per-partition metadata vector
//!   (Section III-C, Figures 1–3).
//! * [`Snapshot`] — an immutable visibility predicate.
//! * [`visibility::visible_bitmap`] — Table III's bitmap generation,
//!   including the secondary delete-cleanup pass.
//! * [`purge::purge`] — garbage collection at LSE (Figure 3).
//! * [`rollback::rollback_partition`] — removal of an aborted
//!   transaction's rows.
//!
//! ## Example
//!
//! ```
//! use aosi::{EpochsVector, TxnManager};
//!
//! let mgr = TxnManager::single_node();
//! let mut partition = EpochsVector::new();
//!
//! // T1 appends three rows, then commits.
//! let t1 = mgr.begin_rw();
//! partition.append(t1.epoch(), 3);
//! mgr.commit(&t1).unwrap();
//!
//! // A read-only transaction sees exactly those rows.
//! let snap = mgr.begin_ro();
//! let bitmap = partition.visible_bitmap(&snap);
//! assert_eq!(bitmap.count_ones(), 3);
//! ```

mod clock;
mod epoch;
mod epochs;
mod error;
mod manager;
mod snapshot;
mod txn;

pub mod cache;
pub mod purge;
pub mod rollback;
pub mod visibility;

pub use cache::{CacheStats, SnapshotCache, VisibilityCache};
pub use clock::EpochClock;
pub use epoch::{Epoch, EpochEntry, NO_EPOCH};
pub use epochs::EpochsVector;
pub use error::AosiError;
pub use manager::{ManagerMetrics, ManagerStats, ReadGuard, TxnManager};
pub use purge::PurgeResult;
pub use rollback::{RollbackResult, TxnPartitionIndex};
pub use snapshot::Snapshot;
pub use txn::{Txn, TxnKind, TxnState};
