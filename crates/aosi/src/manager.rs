//! The per-node transaction manager.
//!
//! Owns the node's [`EpochClock`], the `pendingTxs` set, and the
//! LCE/LSE advancement rules of Section III-B:
//!
//! * RW begin: atomically fetch a fresh epoch, capture the current
//!   pending set as the transaction's `deps`, insert self into
//!   `pendingTxs`.
//! * Commit: remove from `pendingTxs`; LCE advances to the greatest
//!   committed epoch below which nothing is still pending. Committing
//!   out of order parks the epoch until its predecessors finish
//!   (Table I: `T3` committing before `T2` leaves LCE at 1).
//! * Rollback: the epoch simply disappears from `pendingTxs`; parked
//!   commits above it may then advance LCE.
//! * RO begin: a [`Snapshot`] at LCE with an empty deps set; no clock
//!   advancement, no `pendingTxs` traffic.
//! * LSE: advances only up to LCE, never past an active reader
//!   ([`ReadGuard`] tracks those), and never onto or past an epoch
//!   that a pending transaction excludes via its deps set — purge
//!   merges every entry at or below LSE into the base run, which
//!   would leak a dep-excluded epoch's rows into that transaction's
//!   snapshot. Durability gating is the caller's contract (the `wal`
//!   crate verifies replica flushes first).
//!
//! Remote transactions (Section IV-C) are registered via the
//! `*_remote` methods by the cluster layer when begin/commit
//! broadcasts arrive, so the local pending set reflects the whole
//! cluster's in-flight transactions.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use obs::{Counter, ReportBuilder};
use parking_lot::Mutex;

use crate::clock::EpochClock;
use crate::epoch::Epoch;
use crate::error::AosiError;
use crate::snapshot::Snapshot;
use crate::txn::{Txn, TxnKind, TxnState};

/// Counters exposed for instrumentation and the benchmark harness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ManagerStats {
    /// RW transactions begun.
    pub begun_rw: u64,
    /// RO transactions begun.
    pub begun_ro: u64,
    /// Transactions committed.
    pub committed: u64,
    /// Transactions rolled back.
    pub rolled_back: u64,
    /// Currently pending RW transactions.
    pub pending: usize,
    /// Commits parked waiting for earlier transactions.
    pub parked_commits: usize,
}

/// Lock-free event counters for the transaction path. Everything a
/// plain `fetch_add` can capture lives here; values that need the
/// state mutex (pending-set size, parked commits) stay in
/// [`ManagerStats`], and both feed [`TxnManager::report`].
#[derive(Debug, Default)]
pub struct ManagerMetrics {
    /// Successful LSE advances.
    pub lse_advances: Counter,
    /// LSE advances rejected (out of window or active reader below).
    pub lse_advances_denied: Counter,
    /// Read snapshots registered as active readers
    /// (`begin_read` + `guard_snapshot`).
    pub reads_guarded: Counter,
    /// Remote transactions registered from begin broadcasts.
    pub remote_registered: Counter,
}

#[derive(Default)]
struct State {
    /// Epochs of in-flight RW transactions (local and remote).
    pending: BTreeSet<Epoch>,
    /// Committed epochs waiting for all predecessors to finish
    /// before LCE may cover them.
    committed_waiting: BTreeSet<Epoch>,
    /// Epochs rolled back since the last purge cycle; partitions
    /// consult this to reclaim aborted rows.
    rolled_back: BTreeSet<Epoch>,
    /// Active read snapshots (epoch -> count), for LSE gating.
    active_reads: BTreeMap<Epoch, usize>,
    /// Smallest dep of each pending RW transaction that has one
    /// (epoch -> min dep), for LSE gating: purge at LSE merges every
    /// entry at or below LSE, so LSE must stay strictly below any
    /// epoch a live snapshot excludes. Entries leave with their
    /// transaction (commit or rollback).
    pending_deps: BTreeMap<Epoch, Epoch>,
    begun_rw: u64,
    begun_ro: u64,
    committed: u64,
    rolled_back_count: u64,
}

struct Inner {
    clock: EpochClock,
    state: Mutex<State>,
    metrics: ManagerMetrics,
}

/// Transaction manager for one node. Cheap to clone; all clones share
/// the same state.
#[derive(Clone)]
pub struct TxnManager {
    inner: Arc<Inner>,
}

impl TxnManager {
    /// Manager for node `node_idx` (1-based) of `num_nodes`.
    pub fn new(node_idx: u64, num_nodes: u64) -> Self {
        TxnManager {
            inner: Arc::new(Inner {
                clock: EpochClock::new(node_idx, num_nodes),
                state: Mutex::new(State::default()),
                metrics: ManagerMetrics::default(),
            }),
        }
    }

    /// Manager for a single-node deployment.
    pub fn single_node() -> Self {
        TxnManager::new(1, 1)
    }

    /// The node's epoch clock (for Lamport merging by the cluster
    /// layer).
    pub fn clock(&self) -> &EpochClock {
        &self.inner.clock
    }

    /// Begins a read-write transaction: fresh epoch, deps = pending
    /// transactions at begin time.
    pub fn begin_rw(&self) -> Txn {
        self.begin_rw_with_remote(std::iter::empty())
    }

    /// Begins a read-write transaction whose deps additionally
    /// include `remote_pending` — the union of `pendingTxs` returned
    /// by the other cluster nodes in the initial broadcast
    /// (Section IV-C).
    pub fn begin_rw_with_remote(&self, remote_pending: impl IntoIterator<Item = Epoch>) -> Txn {
        let mut st = self.inner.state.lock();
        // Epoch assignment happens under the same lock that snapshots
        // the pending set, so no concurrently-beginning transaction
        // can slip between "get epoch" and "record pending".
        let epoch = self.inner.clock.next_epoch();
        let mut deps: BTreeSet<Epoch> = st.pending.iter().copied().filter(|&p| p < epoch).collect();
        deps.extend(remote_pending.into_iter().filter(|&p| p < epoch));
        if let Some(&min_dep) = deps.first() {
            st.pending_deps.insert(epoch, min_dep);
        }
        st.pending.insert(epoch);
        st.begun_rw += 1;
        drop(st);
        Txn::new(epoch, TxnKind::ReadWrite, Snapshot::new(epoch, deps))
    }

    /// Two-phase begin for distributed transactions (Section IV-C).
    ///
    /// Assigns the epoch and captures the *local* pending set; the
    /// caller completes the deps set with the remote pending sets
    /// returned by the begin broadcast (which is piggybacked on the
    /// transaction's first operation) and builds the final
    /// [`Snapshot`] itself. The transaction is already registered in
    /// `pendingTxs` when this returns.
    pub fn begin_rw_parts(&self) -> (Epoch, BTreeSet<Epoch>) {
        let mut st = self.inner.state.lock();
        let epoch = self.inner.clock.next_epoch();
        let deps: BTreeSet<Epoch> = st.pending.iter().copied().filter(|&p| p < epoch).collect();
        if let Some(&min_dep) = deps.first() {
            st.pending_deps.insert(epoch, min_dep);
        }
        st.pending.insert(epoch);
        st.begun_rw += 1;
        drop(st);
        (epoch, deps)
    }

    /// Records additional deps learned after begin for a still-pending
    /// transaction — the cluster layer calls this on the origin node
    /// when the begin broadcast returns remote pending sets, so the
    /// LSE gate covers the transaction's *complete* deps set, not
    /// just the local slice captured by [`TxnManager::begin_rw_parts`].
    pub fn note_txn_deps(&self, epoch: Epoch, deps: impl IntoIterator<Item = Epoch>) {
        let Some(min_dep) = deps.into_iter().filter(|&d| d < epoch).min() else {
            return;
        };
        let mut st = self.inner.state.lock();
        if !st.pending.contains(&epoch) {
            return;
        }
        let floor = st.pending_deps.entry(epoch).or_insert(min_dep);
        *floor = (*floor).min(min_dep);
    }

    /// Begins a read-only transaction at the Latest Committed Epoch.
    pub fn begin_ro(&self) -> Snapshot {
        self.inner.state.lock().begun_ro += 1;
        Snapshot::committed(self.inner.clock.lce())
    }

    /// Begins a read-only transaction and registers it as an active
    /// reader so LSE (and therefore purge) cannot pass it.
    pub fn begin_read(&self) -> ReadGuard {
        let mut st = self.inner.state.lock();
        st.begun_ro += 1;
        let epoch = self.inner.clock.lce();
        *st.active_reads.entry(epoch).or_insert(0) += 1;
        drop(st);
        self.inner.metrics.reads_guarded.inc();
        ReadGuard {
            manager: self.clone(),
            guard_epoch: epoch,
            snapshot: Snapshot::committed(epoch),
        }
    }

    /// Registers a snapshot (typically a RW transaction's own) as an
    /// active reader for the duration of a scan.
    ///
    /// The registered epoch is the largest LSE the snapshot tolerates:
    /// purge at LSE merges, relabels, and applies deletes for all
    /// epochs `<= LSE`, which is only safe if the snapshot treats that
    /// whole prefix uniformly. A snapshot with no excluded pending
    /// transactions tolerates LSE up to its own epoch; one that
    /// excludes a dependency `d` distinguishes `d` itself, so it only
    /// tolerates LSE up to `d - 1`.
    pub fn guard_snapshot(&self, snapshot: Snapshot) -> ReadGuard {
        let guard_epoch = snapshot
            .deps()
            .first()
            .map(|&d| d.saturating_sub(1))
            .unwrap_or(snapshot.epoch())
            .min(snapshot.epoch());
        let mut st = self.inner.state.lock();
        *st.active_reads.entry(guard_epoch).or_insert(0) += 1;
        drop(st);
        self.inner.metrics.reads_guarded.inc();
        ReadGuard {
            manager: self.clone(),
            guard_epoch,
            snapshot,
        }
    }

    /// Commits a transaction. Read-only handles commit trivially.
    pub fn commit(&self, txn: &Txn) -> Result<(), AosiError> {
        match txn.kind() {
            TxnKind::ReadOnly => Ok(()),
            TxnKind::ReadWrite => self.commit_epoch(txn.epoch()),
        }
    }

    /// Rolls a transaction back.
    pub fn rollback(&self, txn: &Txn) -> Result<(), AosiError> {
        if !txn.is_rw() {
            return Err(AosiError::ReadOnlyTxn(txn.epoch()));
        }
        self.rollback_epoch(txn.epoch())
    }

    /// Registers a transaction begun on another node (from its begin
    /// broadcast) into the local pending set.
    pub fn register_remote(&self, epoch: Epoch) {
        let mut st = self.inner.state.lock();
        // A commit broadcast can never overtake its begin broadcast on
        // the same channel, so blind insertion is safe.
        st.pending.insert(epoch);
        drop(st);
        self.inner.metrics.remote_registered.inc();
    }

    /// Applies a remote transaction's commit broadcast.
    pub fn commit_remote(&self, epoch: Epoch) -> Result<(), AosiError> {
        self.commit_epoch(epoch)
    }

    /// Applies a remote transaction's rollback broadcast.
    pub fn rollback_remote(&self, epoch: Epoch) -> Result<(), AosiError> {
        self.rollback_epoch(epoch)
    }

    fn commit_epoch(&self, epoch: Epoch) -> Result<(), AosiError> {
        let mut st = self.inner.state.lock();
        if !st.pending.remove(&epoch) {
            return Err(AosiError::TxnFinished(epoch));
        }
        st.pending_deps.remove(&epoch);
        st.committed_waiting.insert(epoch);
        st.committed += 1;
        self.try_advance_lce(&mut st);
        Ok(())
    }

    fn rollback_epoch(&self, epoch: Epoch) -> Result<(), AosiError> {
        let mut st = self.inner.state.lock();
        if !st.pending.remove(&epoch) {
            return Err(AosiError::TxnFinished(epoch));
        }
        st.pending_deps.remove(&epoch);
        st.rolled_back.insert(epoch);
        st.rolled_back_count += 1;
        // The epoch vanishing may unblock parked commits above it.
        self.try_advance_lce(&mut st);
        Ok(())
    }

    /// LCE rule: advance to the greatest parked committed epoch that
    /// has no pending transaction below it, consuming parked epochs
    /// as they become covered.
    fn try_advance_lce(&self, st: &mut State) {
        let min_pending = st.pending.first().copied().unwrap_or(Epoch::MAX);
        let mut new_lce = None;
        while let Some(&c) = st.committed_waiting.first() {
            if c < min_pending {
                st.committed_waiting.pop_first();
                new_lce = Some(c);
            } else {
                break;
            }
        }
        if let Some(lce) = new_lce {
            self.inner.clock.store_lce(lce);
        }
    }

    /// Latest Committed Epoch.
    pub fn lce(&self) -> Epoch {
        self.inner.clock.lce()
    }

    /// Latest Safe Epoch.
    pub fn lse(&self) -> Epoch {
        self.inner.clock.lse()
    }

    /// Current pending set (what a begin broadcast returns to a
    /// remote coordinator).
    pub fn pending_txs(&self) -> Vec<Epoch> {
        self.inner.state.lock().pending.iter().copied().collect()
    }

    /// Epochs rolled back since the last [`TxnManager::clear_rolled_back`].
    pub fn rolled_back_epochs(&self) -> Vec<Epoch> {
        self.inner
            .state
            .lock()
            .rolled_back
            .iter()
            .copied()
            .collect()
    }

    /// Forgets rolled-back epochs once their rows have been reclaimed
    /// from every partition.
    pub fn clear_rolled_back(&self, epochs: &[Epoch]) {
        let mut st = self.inner.state.lock();
        for e in epochs {
            st.rolled_back.remove(e);
        }
    }

    /// Lifecycle state of an epoch, if the manager still remembers it.
    pub fn state_of(&self, epoch: Epoch) -> Option<TxnState> {
        let st = self.inner.state.lock();
        if st.pending.contains(&epoch) {
            Some(TxnState::Pending)
        } else if st.rolled_back.contains(&epoch) {
            Some(TxnState::RolledBack)
        } else if st.committed_waiting.contains(&epoch) || epoch <= self.inner.clock.lce() {
            Some(TxnState::Committed)
        } else {
            None
        }
    }

    /// Attempts to advance LSE to `candidate`.
    ///
    /// Enforces the paper's conditions (a) all transactions at or
    /// below `candidate` finished — implied by `candidate <= LCE` —
    /// and (b) no active read transaction below `candidate`, which
    /// includes the implicit reader every pending RW transaction
    /// carries: a snapshot excluding a dep `d` only tolerates LSE up
    /// to `d - 1` (purge at LSE merges everything at or below it, so
    /// a higher LSE would fold `d`'s rows into a run the snapshot
    /// considers visible). Condition (c), durability on all replicas,
    /// is the caller's contract: the flush/replication machinery must
    /// verify it before calling.
    pub fn advance_lse(&self, candidate: Epoch) -> Result<(), AosiError> {
        let st = self.inner.state.lock();
        let lce = self.inner.clock.lce();
        let lse = self.inner.clock.lse();
        if candidate < lse || candidate > lce {
            self.inner.metrics.lse_advances_denied.inc();
            return Err(AosiError::InvalidLseAdvance {
                requested: candidate,
                lce,
                lse,
            });
        }
        if let Some((&oldest, _)) = st.active_reads.first_key_value() {
            if oldest < candidate {
                self.inner.metrics.lse_advances_denied.inc();
                return Err(AosiError::ActiveReaderBelow {
                    requested: candidate,
                    oldest_reader: oldest,
                });
            }
        }
        // A pending transaction excluding dep `d` reads as if guarded
        // at `d - 1` (see `guard_snapshot`); deny when `d <= candidate`.
        if let Some(&oldest_dep) = st.pending_deps.values().min() {
            if oldest_dep <= candidate {
                self.inner.metrics.lse_advances_denied.inc();
                return Err(AosiError::ActiveReaderBelow {
                    requested: candidate,
                    oldest_reader: oldest_dep.saturating_sub(1),
                });
            }
        }
        self.inner.clock.store_lse(candidate);
        self.inner.metrics.lse_advances.inc();
        Ok(())
    }

    /// Instrumentation snapshot.
    pub fn stats(&self) -> ManagerStats {
        let st = self.inner.state.lock();
        ManagerStats {
            begun_rw: st.begun_rw,
            begun_ro: st.begun_ro,
            committed: st.committed,
            rolled_back: st.rolled_back_count,
            pending: st.pending.len(),
            parked_commits: st.committed_waiting.len(),
        }
    }

    /// The manager's lock-free event counters.
    pub fn metrics(&self) -> &ManagerMetrics {
        &self.inner.metrics
    }

    /// Writes the `[aosi]` section of a metrics report: the three
    /// clocks, the transaction lifecycle counters, the pending-set
    /// and active-reader sizes, and the LSE-advance counters.
    pub fn report(&self, report: &mut ReportBuilder) {
        self.report_as(report, "aosi");
    }

    /// [`TxnManager::report`] under a custom section name (a cluster
    /// node prefixes its node id).
    pub fn report_as(&self, report: &mut ReportBuilder, section: &str) {
        let stats = self.stats();
        let active_readers: usize = {
            let st = self.inner.state.lock();
            st.active_reads.values().sum()
        };
        let m = &self.inner.metrics;
        report
            .section(section)
            .metric("ec", self.inner.clock.current_ec())
            .metric("lce", self.lce())
            .metric("lse", self.lse())
            .metric("pending_txs", stats.pending)
            .metric("parked_commits", stats.parked_commits)
            .metric("active_readers", active_readers)
            .metric("begun_rw", stats.begun_rw)
            .metric("begun_ro", stats.begun_ro)
            .metric("committed", stats.committed)
            .metric("rolled_back", stats.rolled_back)
            .counter("reads_guarded", &m.reads_guarded)
            .counter("remote_registered", &m.remote_registered)
            .counter("lse_advances", &m.lse_advances)
            .counter("lse_advances_denied", &m.lse_advances_denied);
    }

    fn release_read(&self, epoch: Epoch) {
        let mut st = self.inner.state.lock();
        if let Some(count) = st.active_reads.get_mut(&epoch) {
            *count -= 1;
            if *count == 0 {
                st.active_reads.remove(&epoch);
            }
        }
    }
}

impl std::fmt::Debug for TxnManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("TxnManager")
            .field("ec", &self.inner.clock.current_ec())
            .field("lce", &self.lce())
            .field("lse", &self.lse())
            .field("pending", &stats.pending)
            .finish()
    }
}

/// RAII registration of an active read snapshot; while alive, LSE
/// cannot advance past the epochs the snapshot distinguishes, so
/// purge can never reclaim or relabel rows the reader might scan.
pub struct ReadGuard {
    manager: TxnManager,
    guard_epoch: Epoch,
    snapshot: Snapshot,
}

impl ReadGuard {
    /// The guarded snapshot.
    pub fn snapshot(&self) -> &Snapshot {
        &self.snapshot
    }
}

impl Drop for ReadGuard {
    fn drop(&mut self) {
        self.manager.release_read(self.guard_epoch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_walkthrough() {
        // Reproduces Table I of the paper on a single node.
        let mgr = TxnManager::single_node();
        let t1 = mgr.begin_rw();
        let t2 = mgr.begin_rw();
        let t3 = mgr.begin_rw();
        assert_eq!((t1.epoch(), t2.epoch(), t3.epoch()), (1, 2, 3));
        assert!(t1.snapshot().deps().is_empty());
        assert_eq!(
            t2.snapshot().deps().iter().copied().collect::<Vec<_>>(),
            [1]
        );
        assert_eq!(
            t3.snapshot().deps().iter().copied().collect::<Vec<_>>(),
            [1, 2]
        );
        assert_eq!(mgr.clock().current_ec(), 4);
        assert_eq!(mgr.lce(), 0);
        assert_eq!(mgr.pending_txs(), [1, 2, 3]);

        mgr.commit(&t1).unwrap();
        assert_eq!(mgr.lce(), 1);
        // T3 commits before T2: LCE must not move (Section III-B).
        mgr.commit(&t3).unwrap();
        assert_eq!(mgr.lce(), 1);
        // T2 finishing releases both parked epochs.
        mgr.commit(&t2).unwrap();
        assert_eq!(mgr.lce(), 3);
        assert!(mgr.pending_txs().is_empty());
    }

    #[test]
    fn ro_transactions_run_at_lce_with_no_deps() {
        let mgr = TxnManager::single_node();
        let t1 = mgr.begin_rw();
        mgr.commit(&t1).unwrap();
        let _t2 = mgr.begin_rw(); // left pending
        let snap = mgr.begin_ro();
        assert_eq!(snap.epoch(), 1);
        assert!(snap.deps().is_empty());
    }

    #[test]
    fn rollback_unblocks_parked_commits() {
        let mgr = TxnManager::single_node();
        let t1 = mgr.begin_rw();
        let t2 = mgr.begin_rw();
        mgr.commit(&t2).unwrap();
        assert_eq!(mgr.lce(), 0, "T1 still pending");
        mgr.rollback(&t1).unwrap();
        assert_eq!(mgr.lce(), 2, "rollback of T1 releases T2");
        assert_eq!(mgr.rolled_back_epochs(), [1]);
        assert_eq!(mgr.state_of(1), Some(TxnState::RolledBack));
        assert_eq!(mgr.state_of(2), Some(TxnState::Committed));
    }

    #[test]
    fn double_commit_is_an_error() {
        let mgr = TxnManager::single_node();
        let t1 = mgr.begin_rw();
        mgr.commit(&t1).unwrap();
        assert_eq!(mgr.commit(&t1), Err(AosiError::TxnFinished(1)));
        assert_eq!(mgr.rollback(&t1), Err(AosiError::TxnFinished(1)));
    }

    #[test]
    fn rollback_of_ro_txn_rejected() {
        let mgr = TxnManager::single_node();
        let t = mgr.begin_rw();
        mgr.commit(&t).unwrap();
        let snap = mgr.begin_ro();
        let ro = Txn::new(snap.epoch(), TxnKind::ReadOnly, snap);
        assert!(matches!(mgr.rollback(&ro), Err(AosiError::ReadOnlyTxn(_))));
    }

    #[test]
    fn remote_registration_feeds_deps_and_lce() {
        // Node 1 of 2 issues odd epochs; node 2's T2 arrives remotely.
        let mgr = TxnManager::new(1, 2);
        mgr.register_remote(2);
        // The begin broadcast that announced T2 also carries node 2's
        // clock; Lamport-merge it so local epochs move past 2.
        mgr.clock().observe(2);
        let t3 = mgr.begin_rw();
        assert_eq!(t3.epoch(), 3);
        assert_eq!(
            t3.snapshot().deps().iter().copied().collect::<Vec<_>>(),
            [2]
        );
        mgr.commit(&t3).unwrap();
        assert_eq!(mgr.lce(), 0, "remote T2 still pending locally");
        mgr.commit_remote(2).unwrap();
        assert_eq!(mgr.lce(), 3);
    }

    #[test]
    fn begin_rw_with_remote_unions_pending() {
        let mgr = TxnManager::new(1, 2);
        let t1 = mgr.begin_rw();
        let t3 = mgr.begin_rw_with_remote([2u64]);
        assert_eq!(
            t3.snapshot().deps().iter().copied().collect::<Vec<_>>(),
            [1, 2]
        );
        // Future epochs must never be deps.
        let t5 = mgr.begin_rw_with_remote([100u64]);
        assert!(!t5.snapshot().deps().contains(&100));
        mgr.commit(&t1).unwrap();
        mgr.commit(&t3).unwrap();
        mgr.commit(&t5).unwrap();
    }

    #[test]
    fn lse_cannot_pass_lce_or_regress() {
        let mgr = TxnManager::single_node();
        let t1 = mgr.begin_rw();
        let t2 = mgr.begin_rw();
        mgr.commit(&t1).unwrap();
        mgr.commit(&t2).unwrap();
        assert_eq!(mgr.lce(), 2);
        mgr.advance_lse(2).unwrap();
        assert!(matches!(
            mgr.advance_lse(1),
            Err(AosiError::InvalidLseAdvance { .. })
        ));
        assert!(matches!(
            mgr.advance_lse(3),
            Err(AosiError::InvalidLseAdvance { .. })
        ));
        assert_eq!(mgr.lse(), 2);
    }

    #[test]
    fn active_reader_blocks_lse() {
        let mgr = TxnManager::single_node();
        let t1 = mgr.begin_rw();
        mgr.commit(&t1).unwrap();
        let guard = mgr.begin_read(); // reader at epoch 1
        let t2 = mgr.begin_rw();
        mgr.commit(&t2).unwrap();
        assert_eq!(mgr.lce(), 2);
        assert_eq!(
            mgr.advance_lse(2),
            Err(AosiError::ActiveReaderBelow {
                requested: 2,
                oldest_reader: 1
            })
        );
        // Reader at the candidate itself does not block.
        mgr.advance_lse(1).unwrap();
        drop(guard);
        mgr.advance_lse(2).unwrap();
        assert_eq!(mgr.lse(), 2);
    }

    #[test]
    fn guard_snapshot_without_deps_allows_lse_at_epoch() {
        let mgr = TxnManager::single_node();
        let t1 = mgr.begin_rw();
        mgr.commit(&t1).unwrap();
        let t2 = mgr.begin_rw();
        let guard = mgr.guard_snapshot(t2.snapshot().clone());
        assert_eq!(guard.snapshot().epoch(), 2);
        mgr.commit(&t2).unwrap();
        // The snapshot sees everything <= 2 uniformly, so purging at
        // LSE = 2 cannot disturb it.
        mgr.advance_lse(2).unwrap();
    }

    #[test]
    fn guard_snapshot_with_deps_blocks_lse_at_min_dep() {
        // T3 begins while T2 is pending, so T3's snapshot must keep
        // distinguishing epoch 2 (it excludes it): LSE may reach 1
        // but not 2, or purge could merge T2's rows under an older
        // label or apply T2's deletes that T3 must not see.
        let mgr = TxnManager::single_node();
        let t1 = mgr.begin_rw();
        mgr.commit(&t1).unwrap();
        let t2 = mgr.begin_rw();
        let t3 = mgr.begin_rw();
        assert_eq!(
            t3.snapshot().deps().iter().copied().collect::<Vec<_>>(),
            [2]
        );
        let guard = mgr.guard_snapshot(t3.snapshot().clone());
        mgr.commit(&t2).unwrap();
        mgr.commit(&t3).unwrap();
        assert_eq!(mgr.lce(), 3);
        mgr.advance_lse(1).unwrap();
        assert_eq!(
            mgr.advance_lse(2),
            Err(AosiError::ActiveReaderBelow {
                requested: 2,
                oldest_reader: 1
            })
        );
        drop(guard);
        mgr.advance_lse(3).unwrap();
    }

    #[test]
    fn pending_txn_dep_blocks_lse_without_a_guard() {
        // T1 begins, T3 begins while T1 is pending (deps {1}), T1
        // and T2 commit so LCE reaches 2. Even with no read guard in
        // sight, LSE must not reach 1: T3 is still pending and its
        // snapshot excludes epoch 1, so a purge at LSE >= 1 would
        // merge epoch-1 rows into the base run where T3 would
        // wrongly see them. (Found by the differential oracle:
        // begin/load/append/begin/commit/purge/read-in-txn.)
        let mgr = TxnManager::single_node();
        let t1 = mgr.begin_rw();
        let t2 = mgr.begin_rw();
        let t3 = mgr.begin_rw();
        assert_eq!(
            t3.snapshot().deps().iter().copied().collect::<Vec<_>>(),
            [1, 2]
        );
        mgr.commit(&t1).unwrap();
        mgr.commit(&t2).unwrap();
        assert_eq!(mgr.lce(), 2);
        assert_eq!(
            mgr.advance_lse(1),
            Err(AosiError::ActiveReaderBelow {
                requested: 1,
                oldest_reader: 0
            })
        );
        assert_eq!(
            mgr.advance_lse(2),
            Err(AosiError::ActiveReaderBelow {
                requested: 2,
                oldest_reader: 0
            })
        );
        assert_eq!(mgr.lse(), 0);
        // Once T3 finishes, nothing distinguishes the prefix anymore.
        mgr.commit(&t3).unwrap();
        mgr.advance_lse(3).unwrap();
        assert_eq!(mgr.lse(), 3);
    }

    #[test]
    fn remote_learned_deps_block_lse() {
        // A distributed transaction learns an extra dep from the
        // begin broadcast after `begin_rw_parts`; the gate must honor
        // it once `note_txn_deps` lands.
        let mgr = TxnManager::single_node();
        let t1 = mgr.begin_rw();
        mgr.commit(&t1).unwrap();
        let (epoch, local_deps) = mgr.begin_rw_parts();
        assert!(local_deps.is_empty());
        // The broadcast reports remote epoch 1 as pending-at-begin.
        mgr.note_txn_deps(epoch, [1]);
        assert!(mgr.advance_lse(1).is_err(), "remote dep 1 blocks LSE 1");
        mgr.commit_epoch(epoch).unwrap();
        mgr.advance_lse(mgr.lce()).unwrap();
        // Noting deps for a finished transaction is a no-op.
        mgr.note_txn_deps(epoch, [1]);
        mgr.advance_lse(mgr.lce()).unwrap();
    }

    #[test]
    fn stats_track_lifecycle() {
        let mgr = TxnManager::single_node();
        let t1 = mgr.begin_rw();
        let t2 = mgr.begin_rw();
        let _ = mgr.begin_ro();
        mgr.commit(&t2).unwrap();
        mgr.rollback(&t1).unwrap();
        let s = mgr.stats();
        assert_eq!(s.begun_rw, 2);
        assert_eq!(s.begun_ro, 1);
        assert_eq!(s.committed, 1);
        assert_eq!(s.rolled_back, 1);
        assert_eq!(s.pending, 0);
        assert_eq!(s.parked_commits, 0);
    }

    #[test]
    fn clear_rolled_back_forgets_epochs() {
        let mgr = TxnManager::single_node();
        let t1 = mgr.begin_rw();
        mgr.rollback(&t1).unwrap();
        assert_eq!(mgr.rolled_back_epochs(), [1]);
        mgr.clear_rolled_back(&[1]);
        assert!(mgr.rolled_back_epochs().is_empty());
        assert_eq!(mgr.state_of(1), None);
    }

    #[test]
    fn metrics_and_report_cover_the_lifecycle() {
        let mgr = TxnManager::single_node();
        let t1 = mgr.begin_rw();
        mgr.commit(&t1).unwrap();
        let guard = mgr.begin_read();
        assert_eq!(mgr.metrics().reads_guarded.get(), 1);
        let t2 = mgr.begin_rw();
        mgr.commit(&t2).unwrap();
        assert!(mgr.advance_lse(2).is_err(), "guard at 1 blocks");
        assert_eq!(mgr.metrics().lse_advances_denied.get(), 1);
        drop(guard);
        mgr.advance_lse(2).unwrap();
        assert_eq!(mgr.metrics().lse_advances.get(), 1);
        mgr.register_remote(100);
        assert_eq!(mgr.metrics().remote_registered.get(), 1);

        let mut rb = ReportBuilder::new();
        mgr.report(&mut rb);
        let text = rb.finish();
        assert!(text.starts_with("[aosi]\n"));
        for line in [
            "lce = 2",
            "lse = 2",
            "pending_txs = 1",
            "committed = 2",
            "reads_guarded = 1",
            "lse_advances = 1",
            "lse_advances_denied = 1",
            "remote_registered = 1",
            "active_readers = 0",
        ] {
            assert!(text.contains(line), "missing {line:?} in:\n{text}");
        }
    }

    #[test]
    fn concurrent_begin_commit_maintains_invariants() {
        use std::sync::Arc;
        let mgr = Arc::new(TxnManager::single_node());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let mgr = Arc::clone(&mgr);
            handles.push(std::thread::spawn(move || {
                for _ in 0..500 {
                    let t = mgr.begin_rw();
                    // Interleave with a reader.
                    let snap = mgr.begin_ro();
                    assert!(snap.epoch() < t.epoch());
                    mgr.commit(&t).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = mgr.stats();
        assert_eq!(s.committed, 4000);
        assert_eq!(s.pending, 0);
        assert_eq!(mgr.lce(), 4000);
        assert!(mgr.clock().current_ec() > mgr.lce());
    }
}
