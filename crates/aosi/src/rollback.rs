//! Rollback: physically removing an aborted transaction's operations
//! (Section III-C5).
//!
//! AOSI has no deterministic isolation conflicts, so rollbacks only
//! happen on consistency violations, non-deterministic failures, or
//! explicit user aborts — they are assumed rare and the protocol is
//! "optimistic and largely optimized for commits". A rollback scans
//! every partition's epochs vector, removes all rows and entries the
//! aborted transaction produced, and swaps in a rebuilt partition,
//! exactly like purge does.
//!
//! Until the swap happens the aborted rows are invisible anyway: the
//! aborted epoch is in every concurrent snapshot's `deps` and is
//! never `<=` a committed reader's epoch once the LCE rule skips it.

use crate::epoch::{Epoch, EpochEntry};
use crate::epochs::EpochsVector;
use columnar::Bitmap;

/// The alternative rollback accelerator the paper describes and
/// rejects (Section III-C5): "keep an auxiliary global hash map to
/// associate transactions to the partitions in which they appended or
/// deleted data", so a rollback visits only the touched partitions
/// instead of scanning every epochs vector in the system.
///
/// We implement it so the trade-off is measurable (see the
/// `ablations` benchmark): the index makes rollbacks O(partitions
/// touched), at the price of one map entry per pending transaction x
/// partition. Entries are dropped on commit, so the footprint is
/// bounded by in-flight transactions — still a real cost on hot
/// ingest paths, which is why the paper (and our default engine
/// configuration) leaves it off.
#[derive(Debug, Default)]
pub struct TxnPartitionIndex {
    map: parking_lot::Mutex<std::collections::HashMap<Epoch, std::collections::HashSet<u64>>>,
}

impl TxnPartitionIndex {
    /// Empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `epoch` touched `partition`.
    pub fn record(&self, epoch: Epoch, partition: u64) {
        self.map.lock().entry(epoch).or_default().insert(partition);
    }

    /// Partitions `epoch` touched (empty if unknown).
    pub fn partitions_of(&self, epoch: Epoch) -> Vec<u64> {
        self.map
            .lock()
            .get(&epoch)
            .map(|set| set.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Drops the entry for a finished transaction.
    pub fn forget(&self, epoch: Epoch) {
        self.map.lock().remove(&epoch);
    }

    /// Number of tracked transactions.
    pub fn len(&self) -> usize {
        self.map.lock().len()
    }

    /// `true` when no transaction is tracked.
    pub fn is_empty(&self) -> bool {
        self.map.lock().is_empty()
    }

    /// Approximate heap bytes — the footprint the paper trades away.
    pub fn heap_bytes(&self) -> usize {
        let map = self.map.lock();
        let entries: usize = map.values().map(|s| s.capacity() * 16 + 48).sum();
        map.capacity() * 16 + entries
    }
}

/// Outcome of rolling one transaction back out of one partition.
#[derive(Clone, Debug)]
pub struct RollbackResult {
    /// The replacement epochs vector.
    pub vector: EpochsVector,
    /// Which old rows survive.
    pub keep: Bitmap,
    /// Rows removed (the aborted transaction's inserts).
    pub removed_rows: u64,
    /// `false` if the transaction never touched this partition, in
    /// which case the caller skips the swap.
    pub changed: bool,
}

/// Removes every operation of `aborted` from `partition`.
pub fn rollback_partition(partition: &EpochsVector, aborted: Epoch) -> RollbackResult {
    let rows = usize::try_from(partition.row_count()).expect("partition too large");
    let mut keep = Bitmap::new_set(rows);

    let mut touched = false;
    let mut start = 0usize;
    for entry in partition.entries() {
        if entry.is_delete() {
            touched |= entry.epoch() == aborted;
            continue;
        }
        let end = entry.end() as usize;
        if entry.epoch() == aborted {
            keep.clear_range(start, end);
            touched = true;
        }
        start = end;
    }
    if !touched {
        return RollbackResult {
            vector: partition.clone(),
            keep,
            removed_rows: 0,
            changed: false,
        };
    }

    let mut new_entries: Vec<EpochEntry> = Vec::new();
    for entry in partition.entries() {
        if entry.epoch() == aborted {
            continue;
        }
        if entry.is_delete() {
            let new_point = keep.count_ones_in_range(0, entry.end() as usize) as u64;
            new_entries.push(EpochEntry::delete(entry.epoch(), new_point));
            continue;
        }
        // Recompute the end over surviving rows only.
        let new_end = keep.count_ones_in_range(0, entry.end() as usize) as u64;
        match new_entries.last_mut() {
            // Runs separated only by the aborted transaction's rows
            // or markers collapse back together — but never across a
            // surviving delete marker or a different epoch.
            Some(last) if !last.is_delete() && last.epoch() == entry.epoch() => {
                *last = EpochEntry::insert(entry.epoch(), new_end);
            }
            _ => new_entries.push(EpochEntry::insert(entry.epoch(), new_end)),
        }
    }
    let surviving = keep.count_ones() as u64;
    // Generation continues past the source (see `purge::purge`).
    let mut vector = EpochsVector::from_parts(new_entries, surviving);
    vector.set_generation(partition.generation() + 1);
    RollbackResult {
        vector,
        keep,
        removed_rows: rows as u64 - surviving,
        changed: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::Snapshot;

    fn render(v: &EpochsVector) -> String {
        v.entries().iter().map(|e| format!("{e:?}")).collect()
    }

    #[test]
    fn rollback_removes_only_aborted_rows() {
        let mut v = EpochsVector::new();
        v.append(1, 2);
        v.append(2, 3);
        v.append(3, 1);
        let r = rollback_partition(&v, 2);
        assert!(r.changed);
        assert_eq!(r.removed_rows, 3);
        assert_eq!(r.keep.to_bit_string(), "110001");
        assert_eq!(render(&r.vector), "(T1, 2)(T3, 3)");
    }

    #[test]
    fn rollback_of_interleaved_runs_removes_all_of_them() {
        let mut v = EpochsVector::new();
        v.append(1, 2);
        v.append(2, 2);
        v.append(1, 2);
        v.append(2, 2);
        let r = rollback_partition(&v, 2);
        assert_eq!(r.removed_rows, 4);
        // T1's two runs collapse back into one entry.
        assert_eq!(render(&r.vector), "(T1, 4)");
    }

    #[test]
    fn rollback_removes_delete_markers_too() {
        let mut v = EpochsVector::new();
        v.append(1, 3);
        v.mark_delete(2);
        let r = rollback_partition(&v, 2);
        assert!(r.changed);
        assert_eq!(r.removed_rows, 0);
        assert_eq!(render(&r.vector), "(T1, 3)");
        // T1's data is live again for later readers.
        let bm = r.vector.visible_bitmap(&Snapshot::committed(5));
        assert_eq!(bm.count_ones(), 3);
    }

    #[test]
    fn untouched_partition_reports_unchanged() {
        let mut v = EpochsVector::new();
        v.append(1, 3);
        let r = rollback_partition(&v, 9);
        assert!(!r.changed);
        assert_eq!(r.vector, v);
        assert_eq!(r.removed_rows, 0);
    }

    #[test]
    fn surviving_delete_points_are_remapped() {
        let mut v = EpochsVector::new();
        v.append(2, 4); // aborted rows
        v.append(3, 2);
        v.mark_delete(5); // delete point 6
        let r = rollback_partition(&v, 2);
        assert_eq!(render(&r.vector), "(T3, 2)(T5, DELETE@2)");
        // The delete still wipes T3 for readers that see it.
        let bm = r.vector.visible_bitmap(&Snapshot::committed(6));
        assert!(bm.is_all_zero());
    }

    #[test]
    fn runs_do_not_merge_across_surviving_markers() {
        let mut v = EpochsVector::new();
        v.append(1, 2);
        v.mark_delete(3);
        v.append(1, 2);
        v.append(2, 1);
        let r = rollback_partition(&v, 2);
        assert_eq!(render(&r.vector), "(T1, 2)(T3, DELETE@2)(T1, 4)");
    }

    #[test]
    fn rollback_then_visibility_equals_never_having_run() {
        // Property: a rolled-back transaction leaves no trace.
        let mut with_t2 = EpochsVector::new();
        let mut without_t2 = EpochsVector::new();
        with_t2.append(1, 3);
        without_t2.append(1, 3);
        with_t2.append(2, 5);
        with_t2.append(3, 2);
        without_t2.append(3, 2);
        with_t2.mark_delete(2);
        let r = rollback_partition(&with_t2, 2);
        assert_eq!(render(&r.vector), render(&without_t2));
        for reader in 1..=4 {
            let snap = Snapshot::committed(reader);
            assert_eq!(
                r.vector.visible_bitmap(&snap).to_bit_string(),
                without_t2.visible_bitmap(&snap).to_bit_string(),
                "reader {reader}"
            );
        }
    }

    #[test]
    fn txn_partition_index_tracks_and_forgets() {
        let idx = TxnPartitionIndex::new();
        assert!(idx.is_empty());
        idx.record(5, 10);
        idx.record(5, 11);
        idx.record(5, 10); // duplicate
        idx.record(7, 10);
        let mut p5 = idx.partitions_of(5);
        p5.sort_unstable();
        assert_eq!(p5, vec![10, 11]);
        assert_eq!(idx.len(), 2);
        assert!(idx.heap_bytes() > 0);
        idx.forget(5);
        assert!(idx.partitions_of(5).is_empty());
        assert_eq!(idx.partitions_of(7), vec![10]);
        idx.forget(99); // unknown: no-op
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn rollback_of_sole_transaction_empties_partition() {
        let mut v = EpochsVector::new();
        v.append(4, 10);
        v.mark_delete(4);
        v.append(4, 2);
        let r = rollback_partition(&v, 4);
        assert!(r.vector.is_empty());
        assert_eq!(r.vector.row_count(), 0);
        assert_eq!(r.removed_rows, 12);
    }
}
