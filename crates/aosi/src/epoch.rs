//! Epoch timestamps and the packed epochs-vector entry.
//!
//! An *epoch* is the transaction timestamp of AOSI. Epoch `0` is
//! reserved ([`NO_EPOCH`]): it is the initial Latest Committed Epoch
//! of an empty database — "nothing has committed yet" — and real
//! transactions always receive epochs `>= 1`.
//!
//! [`EpochEntry`] is the unit of the per-partition epochs vector. The
//! paper stores "a pair of integers per transaction" and reserves
//! "one bit from one of the integers on the tuple to use as the
//! is-delete flag" (Section III-C2). We do the same: a 16-byte entry
//! holding the epoch and a packed word whose top bit is the delete
//! flag and whose low 63 bits are a row index.

/// A transaction timestamp.
pub type Epoch = u64;

/// Reserved "before any transaction" epoch.
pub const NO_EPOCH: Epoch = 0;

const DELETE_BIT: u64 = 1 << 63;
const IDX_MASK: u64 = DELETE_BIT - 1;

/// One entry of a partition's epochs vector.
///
/// * For an **insert** entry, `end()` is the *exclusive* end row index
///   of the run appended by `epoch()`; the run's start is the previous
///   insert entry's end. (The paper stores the inclusive index of the
///   last inserted record; we store the exclusive end so an empty run
///   needs no special case. `last_idx()` recovers the paper's view.)
/// * For a **delete** entry, `end()` is the *delete point*: the
///   partition row count at the moment the delete was executed.
///   Everything the deleting transaction could see — rows of earlier
///   transactions anywhere, plus its own rows below the delete point —
///   is logically removed for transactions that see the delete.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct EpochEntry {
    epoch: Epoch,
    packed: u64,
}

impl EpochEntry {
    /// Creates an insert entry covering rows up to `end` (exclusive).
    pub fn insert(epoch: Epoch, end: u64) -> Self {
        assert!(end <= IDX_MASK, "row index overflow");
        EpochEntry { epoch, packed: end }
    }

    /// Creates a partition-delete marker at `delete_point`.
    pub fn delete(epoch: Epoch, delete_point: u64) -> Self {
        assert!(delete_point <= IDX_MASK, "row index overflow");
        EpochEntry {
            epoch,
            packed: delete_point | DELETE_BIT,
        }
    }

    /// The transaction that produced this entry.
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// `true` if this entry is a partition-delete marker.
    pub fn is_delete(&self) -> bool {
        self.packed & DELETE_BIT != 0
    }

    /// Exclusive end row index (insert) or delete point (delete).
    pub fn end(&self) -> u64 {
        self.packed & IDX_MASK
    }

    /// The paper's `idx` field: the inclusive index of the last row
    /// covered by an insert entry, or `None` for an empty run or a
    /// delete marker.
    pub fn last_idx(&self) -> Option<u64> {
        if self.is_delete() || self.end() == 0 {
            None
        } else {
            Some(self.end() - 1)
        }
    }

    /// Extends an insert entry's end (same-transaction append run).
    ///
    /// # Panics
    /// Panics on delete markers or non-monotonic ends.
    pub(crate) fn extend_to(&mut self, end: u64) {
        assert!(!self.is_delete(), "cannot extend a delete marker");
        assert!(end >= self.end(), "epochs vector ends must be monotonic");
        assert!(end <= IDX_MASK, "row index overflow");
        self.packed = end;
    }
}

impl std::fmt::Debug for EpochEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_delete() {
            write!(f, "(T{}, DELETE@{})", self.epoch, self.end())
        } else {
            write!(f, "(T{}, {})", self.epoch, self.end())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_is_sixteen_bytes() {
        // The paper's memory-overhead claim rests on one small entry
        // per (transaction x partition) run; keep it at two words.
        assert_eq!(std::mem::size_of::<EpochEntry>(), 16);
    }

    #[test]
    fn insert_entry_roundtrip() {
        let e = EpochEntry::insert(7, 42);
        assert_eq!(e.epoch(), 7);
        assert_eq!(e.end(), 42);
        assert!(!e.is_delete());
        assert_eq!(e.last_idx(), Some(41));
    }

    #[test]
    fn delete_entry_roundtrip() {
        let e = EpochEntry::delete(9, 100);
        assert_eq!(e.epoch(), 9);
        assert_eq!(e.end(), 100);
        assert!(e.is_delete());
        assert_eq!(e.last_idx(), None);
    }

    #[test]
    fn delete_flag_does_not_corrupt_large_indexes() {
        let idx = (1u64 << 62) + 12345;
        let e = EpochEntry::delete(1, idx);
        assert!(e.is_delete());
        assert_eq!(e.end(), idx);
        let i = EpochEntry::insert(1, idx);
        assert!(!i.is_delete());
        assert_eq!(i.end(), idx);
    }

    #[test]
    fn empty_run_has_no_last_idx() {
        assert_eq!(EpochEntry::insert(1, 0).last_idx(), None);
    }

    #[test]
    fn extend_moves_end_forward() {
        let mut e = EpochEntry::insert(3, 5);
        e.extend_to(9);
        assert_eq!(e.end(), 9);
        assert_eq!(e.epoch(), 3);
    }

    #[test]
    #[should_panic(expected = "cannot extend a delete marker")]
    fn extend_delete_panics() {
        let mut e = EpochEntry::delete(3, 5);
        e.extend_to(9);
    }

    #[test]
    #[should_panic(expected = "monotonic")]
    fn extend_backwards_panics() {
        let mut e = EpochEntry::insert(3, 5);
        e.extend_to(4);
    }

    #[test]
    fn debug_format_matches_paper_notation() {
        assert_eq!(format!("{:?}", EpochEntry::insert(1, 3)), "(T1, 3)");
        assert_eq!(format!("{:?}", EpochEntry::delete(5, 5)), "(T5, DELETE@5)");
    }
}
