//! The visibility predicate handed to scans.

use std::collections::BTreeSet;
use std::sync::Arc;

use crate::epoch::Epoch;

/// An immutable snapshot of the database as of one transaction.
///
/// A transaction `i` "is only allowed to see operations made by all
/// transactions `j`, such that `j < i` and `j ∉ Ti.deps`"
/// (Section III-B) — plus its own operations. `deps` is the set of
/// RW transactions that were still pending when `i` began, captured
/// from `pendingTxs` (unioned across the cluster for distributed
/// transactions, Section IV-C).
///
/// Read-only transactions run at the Latest Committed Epoch with an
/// empty `deps` set: the delayed-LCE commit rule guarantees every
/// transaction at or below LCE has finished (Section IV-C).
///
/// Snapshots are cheap to clone (the deps set is shared).
#[derive(Clone, Debug)]
pub struct Snapshot {
    epoch: Epoch,
    deps: Arc<BTreeSet<Epoch>>,
}

impl Snapshot {
    /// Builds a snapshot at `epoch` excluding `deps`.
    ///
    /// Every dep must precede the snapshot epoch; entries at or above
    /// `epoch` are unconditionally dropped (they are unreachable via
    /// [`Snapshot::sees`] anyway, but a malformed set — e.g. assembled
    /// from a duplicated or reordered begin response — must not leak
    /// into release builds and distort deps-based accounting such as
    /// [`ReadGuard`](crate::ReadGuard) epoch selection).
    pub fn new(epoch: Epoch, mut deps: BTreeSet<Epoch>) -> Self {
        // `split_off` keeps everything >= epoch in the returned set,
        // leaving `deps` with exactly the valid prefix. This runs in
        // release builds too — a `debug_assert!` here silently let
        // malformed sets through the paths users actually ship.
        deps.split_off(&epoch);
        Snapshot {
            epoch,
            deps: Arc::new(deps),
        }
    }

    /// A snapshot at a committed epoch with no pending dependencies
    /// (what read-only transactions use).
    pub fn committed(epoch: Epoch) -> Self {
        Snapshot {
            epoch,
            deps: Arc::new(BTreeSet::new()),
        }
    }

    /// The snapshot's epoch. Operations by this exact epoch are
    /// visible (a transaction reads its own writes).
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// Pending transactions excluded from this snapshot.
    pub fn deps(&self) -> &BTreeSet<Epoch> {
        &self.deps
    }

    /// The deps set behind its shared handle — lets callers key caches
    /// on the full structural contents without copying the set (cloning
    /// the `Arc` is a refcount bump).
    pub fn shared_deps(&self) -> Arc<BTreeSet<Epoch>> {
        Arc::clone(&self.deps)
    }

    /// The visibility predicate: does this snapshot see operations
    /// performed by transaction `j`?
    #[inline]
    pub fn sees(&self, j: Epoch) -> bool {
        j <= self.epoch && (j == self.epoch || !self.deps.contains(&j))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(epoch: Epoch, deps: &[Epoch]) -> Snapshot {
        Snapshot::new(epoch, deps.iter().copied().collect())
    }

    #[test]
    fn sees_prior_non_pending() {
        let s = snap(5, &[2, 4]);
        assert!(s.sees(1));
        assert!(!s.sees(2));
        assert!(s.sees(3));
        assert!(!s.sees(4));
    }

    #[test]
    fn sees_own_epoch() {
        let s = snap(5, &[2]);
        assert!(s.sees(5), "a transaction reads its own writes");
    }

    #[test]
    fn never_sees_future() {
        let s = snap(5, &[]);
        assert!(!s.sees(6));
        assert!(!s.sees(u64::MAX));
    }

    #[test]
    fn committed_snapshot_sees_everything_at_or_below() {
        let s = Snapshot::committed(3);
        assert!(s.sees(1) && s.sees(2) && s.sees(3));
        assert!(!s.sees(4));
    }

    #[test]
    fn malformed_deps_are_filtered_unconditionally() {
        // Deps at or above the snapshot epoch (as a duplicated or
        // reordered begin response could produce) are dropped in
        // every build profile, not just under debug assertions.
        let s = snap(5, &[2, 5, 7, 100]);
        assert_eq!(s.deps().iter().copied().collect::<Vec<_>>(), [2]);
        assert!(s.sees(5), "own epoch must stay visible");
        assert!(!s.sees(2), "valid dep still excluded");
        assert!(s.sees(3));
        assert!(!s.sees(7), "future epochs invisible by ordering");
    }

    #[test]
    fn clone_shares_deps() {
        let s = snap(10, &[3, 7]);
        let c = s.clone();
        assert!(Arc::ptr_eq(&s.deps, &c.deps));
        assert_eq!(c.epoch(), 10);
    }
}
