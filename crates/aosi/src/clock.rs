//! The per-node epoch clocks: EC, LCE, and LSE.
//!
//! Each node maintains three atomic counters (Section III-B):
//!
//! * **EC** (Epoch Clock) — the epoch the *next* local RW transaction
//!   will receive. Initialized to the node's 1-based index and
//!   advanced by `num_nodes`, so two nodes can never issue the same
//!   epoch (Section IV-A, Table IV).
//! * **LCE** (Latest Committed Epoch) — the newest epoch `e` such that
//!   every transaction with epoch `<= e` has finished and `e` itself
//!   committed. Read-only transactions run at LCE with no dependency
//!   tracking.
//! * **LSE** (Latest Safe Epoch) — the newest epoch below which all
//!   history is finished, unread, and durable; purge operates at LSE.
//!
//! Invariant at all times: `EC > LCE >= LSE`.
//!
//! Lamport merging ([`EpochClock::observe`]) implements the rule of
//! Table IV: on receiving a remote clock value `r`, a node bumps its
//! EC to the smallest epoch it is allowed to issue that is `> r`,
//! preserving its residue class so strided epochs stay collision-free.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::epoch::{Epoch, NO_EPOCH};

/// The three per-node epoch counters.
///
/// All operations are lock-free; EC advancement and Lamport merges
/// are CAS loops, LCE/LSE are stores guarded by the owning
/// [`TxnManager`](crate::TxnManager)'s bookkeeping.
#[derive(Debug)]
pub struct EpochClock {
    ec: AtomicU64,
    lce: AtomicU64,
    lse: AtomicU64,
    node_idx: u64,
    num_nodes: u64,
}

impl EpochClock {
    /// Creates the clock for node `node_idx` (1-based) of `num_nodes`.
    ///
    /// # Panics
    /// Panics unless `1 <= node_idx <= num_nodes`.
    pub fn new(node_idx: u64, num_nodes: u64) -> Self {
        assert!(num_nodes >= 1, "cluster must have at least one node");
        assert!(
            (1..=num_nodes).contains(&node_idx),
            "node_idx {node_idx} out of range 1..={num_nodes}"
        );
        EpochClock {
            ec: AtomicU64::new(node_idx),
            lce: AtomicU64::new(NO_EPOCH),
            lse: AtomicU64::new(NO_EPOCH),
            node_idx,
            num_nodes,
        }
    }

    /// Clock for a single-node deployment (epochs `1, 2, 3, …`).
    pub fn single_node() -> Self {
        EpochClock::new(1, 1)
    }

    /// This node's 1-based index.
    pub fn node_idx(&self) -> u64 {
        self.node_idx
    }

    /// Cluster size (the epoch stride).
    pub fn num_nodes(&self) -> u64 {
        self.num_nodes
    }

    /// Atomically fetches the next epoch and advances EC by the
    /// stride. Called when a RW transaction begins.
    pub fn next_epoch(&self) -> Epoch {
        self.ec.fetch_add(self.num_nodes, Ordering::SeqCst)
    }

    /// Current EC (the epoch the next RW transaction would get).
    pub fn current_ec(&self) -> Epoch {
        self.ec.load(Ordering::SeqCst)
    }

    /// Lamport merge: after observing a remote clock value `remote`,
    /// ensure every epoch this node issues from now on is greater
    /// than `remote`, without leaving the node's residue class.
    ///
    /// Returns the (possibly updated) local EC.
    pub fn observe(&self, remote: Epoch) -> Epoch {
        let target = self.smallest_issuable_above(remote);
        let mut current = self.ec.load(Ordering::SeqCst);
        loop {
            if current >= target {
                return current;
            }
            match self
                .ec
                .compare_exchange_weak(current, target, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return target,
                Err(actual) => current = actual,
            }
        }
    }

    /// The smallest epoch `> remote` congruent to `node_idx` modulo
    /// `num_nodes`.
    fn smallest_issuable_above(&self, remote: Epoch) -> Epoch {
        let n = self.num_nodes;
        let residue = self.node_idx % n;
        let base = remote + 1;
        let rem = base % n;
        if rem == residue {
            base
        } else {
            // Distance to the next value in our residue class.
            base + (residue + n - rem) % n
        }
    }

    /// Latest Committed Epoch.
    pub fn lce(&self) -> Epoch {
        self.lce.load(Ordering::SeqCst)
    }

    /// Latest Safe Epoch.
    pub fn lse(&self) -> Epoch {
        self.lse.load(Ordering::SeqCst)
    }

    /// Advances LCE. Only the transaction manager calls this, after
    /// verifying all prior transactions finished.
    ///
    /// # Panics
    /// Panics if the move would regress LCE or violate `EC > LCE`.
    pub(crate) fn store_lce(&self, value: Epoch) {
        let prev = self.lce.swap(value, Ordering::SeqCst);
        debug_assert!(value >= prev, "LCE must be monotonic ({prev} -> {value})");
        debug_assert!(
            self.current_ec() > value,
            "invariant EC > LCE violated (EC={}, LCE={value})",
            self.current_ec()
        );
    }

    /// Advances LSE. Callers (the manager, on behalf of the
    /// flush/replication machinery) must have verified the paper's
    /// three conditions first.
    ///
    /// # Panics
    /// Panics if the move would regress LSE or violate `LCE >= LSE`.
    pub(crate) fn store_lse(&self, value: Epoch) {
        let prev = self.lse.swap(value, Ordering::SeqCst);
        debug_assert!(value >= prev, "LSE must be monotonic ({prev} -> {value})");
        debug_assert!(
            self.lce() >= value,
            "invariant LCE >= LSE violated (LCE={}, LSE={value})",
            self.lce()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node_issues_consecutive_epochs() {
        let c = EpochClock::single_node();
        assert_eq!(c.next_epoch(), 1);
        assert_eq!(c.next_epoch(), 2);
        assert_eq!(c.next_epoch(), 3);
        assert_eq!(c.current_ec(), 4);
    }

    #[test]
    fn strided_nodes_never_collide() {
        let c1 = EpochClock::new(1, 3);
        let c2 = EpochClock::new(2, 3);
        let c3 = EpochClock::new(3, 3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            assert!(seen.insert(c1.next_epoch()));
            assert!(seen.insert(c2.next_epoch()));
            assert!(seen.insert(c3.next_epoch()));
        }
    }

    #[test]
    fn initial_values_match_paper() {
        // Table IV: a 3-node cluster starts with ECs 1, 2, 3.
        for i in 1..=3 {
            let c = EpochClock::new(i, 3);
            assert_eq!(c.current_ec(), i);
            assert_eq!(c.lce(), NO_EPOCH);
            assert_eq!(c.lse(), NO_EPOCH);
        }
    }

    #[test]
    fn observe_follows_table_iv() {
        // Table IV walkthrough: n1 issues T1 (EC 1 -> 4); its append
        // carries EC=4; n2 merges 2 -> 5 and n3 merges 3 -> 6.
        let n1 = EpochClock::new(1, 3);
        let n2 = EpochClock::new(2, 3);
        let n3 = EpochClock::new(3, 3);
        assert_eq!(n1.next_epoch(), 1);
        assert_eq!(n1.current_ec(), 4);
        assert_eq!(n2.observe(n1.current_ec()), 5);
        assert_eq!(n3.observe(n1.current_ec()), 6);
        // n3 then starts T6 (EC 6 -> 9), n2 starts T5 (EC 5 -> 8).
        assert_eq!(n3.next_epoch(), 6);
        assert_eq!(n2.next_epoch(), 5);
        // T1's commit broadcast returns n2's and n3's ECs; n1 merges
        // up to max(8, 9) = 9 and lands on 10.
        n1.observe(n2.current_ec());
        assert_eq!(n1.observe(n3.current_ec()), 10);
    }

    #[test]
    fn observe_is_noop_when_already_ahead() {
        let c = EpochClock::new(2, 3);
        c.next_epoch(); // EC = 5
        assert_eq!(c.observe(3), 5);
    }

    #[test]
    fn observe_preserves_residue_class() {
        let c = EpochClock::new(2, 4);
        for remote in 0..50u64 {
            let ec = c.observe(remote);
            assert_eq!(ec % 4, 2, "EC {ec} left residue class");
            assert!(ec > remote || remote < 2);
        }
    }

    #[test]
    fn observe_with_residue_zero_node() {
        // Node 4 of 4 issues 4, 8, 12, ... (residue 0).
        let c = EpochClock::new(4, 4);
        assert_eq!(c.observe(5), 8);
        assert_eq!(c.observe(8), 12);
        assert_eq!(c.next_epoch(), 12);
    }

    #[test]
    fn lce_lse_advance() {
        let c = EpochClock::single_node();
        c.next_epoch();
        c.next_epoch();
        c.store_lce(2);
        c.store_lse(1);
        assert_eq!(c.lce(), 2);
        assert_eq!(c.lse(), 1);
    }

    #[test]
    #[should_panic(expected = "node_idx")]
    fn zero_node_idx_rejected() {
        EpochClock::new(0, 3);
    }

    #[test]
    fn concurrent_next_epoch_is_unique() {
        use std::sync::Arc;
        let c = Arc::new(EpochClock::new(1, 2));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| c.next_epoch()).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<Epoch> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let len = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), len, "duplicate epochs issued");
        assert!(all.iter().all(|e| e % 2 == 1), "node 1 of 2 issues odds");
    }
}
