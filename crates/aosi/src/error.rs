//! Error type for protocol operations.

use crate::epoch::Epoch;

/// Errors surfaced by the AOSI protocol layer.
///
/// The protocol has no deterministic isolation conflicts (that is its
/// point), so the error surface is small: misuse of transaction
/// handles and invalid LSE movements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AosiError {
    /// The transaction was already committed or rolled back.
    TxnFinished(Epoch),
    /// A read-only transaction was asked to perform a write.
    ReadOnlyTxn(Epoch),
    /// LSE may not pass LCE or regress.
    InvalidLseAdvance {
        /// Requested LSE.
        requested: Epoch,
        /// Current LCE ceiling.
        lce: Epoch,
        /// Current LSE floor.
        lse: Epoch,
    },
    /// LSE advancement blocked by an active reader below the target.
    ActiveReaderBelow {
        /// Requested LSE.
        requested: Epoch,
        /// Epoch of the oldest active read snapshot.
        oldest_reader: Epoch,
    },
    /// A distributed operation ran before the transaction's begin
    /// broadcast completed, so the remote pending sets (and therefore
    /// an SI-consistent snapshot) are not available yet.
    NotBroadcasted(Epoch),
    /// A remote node stayed unreachable through the retry budget
    /// (dropped messages, crash window, or partition).
    NodeUnreachable {
        /// The transaction whose message could not be delivered.
        epoch: Epoch,
        /// The unreachable node (1-based).
        node: u64,
    },
}

impl std::fmt::Display for AosiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AosiError::TxnFinished(e) => {
                write!(f, "transaction T{e} already finished")
            }
            AosiError::ReadOnlyTxn(e) => {
                write!(f, "transaction T{e} is read-only")
            }
            AosiError::InvalidLseAdvance {
                requested,
                lce,
                lse,
            } => write!(
                f,
                "cannot advance LSE to {requested}: must satisfy {lse} <= LSE <= LCE ({lce})"
            ),
            AosiError::ActiveReaderBelow {
                requested,
                oldest_reader,
            } => write!(
                f,
                "cannot advance LSE to {requested}: active reader at epoch {oldest_reader}"
            ),
            AosiError::NotBroadcasted(e) => {
                write!(f, "transaction T{e} has not completed its begin broadcast")
            }
            AosiError::NodeUnreachable { epoch, node } => write!(
                f,
                "node {node} unreachable for transaction T{epoch} (retry budget exhausted)"
            ),
        }
    }
}

impl std::error::Error for AosiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(AosiError::TxnFinished(3).to_string().contains("T3"));
        assert!(AosiError::ReadOnlyTxn(4).to_string().contains("read-only"));
        let e = AosiError::InvalidLseAdvance {
            requested: 9,
            lce: 5,
            lse: 2,
        };
        assert!(e.to_string().contains('9') && e.to_string().contains('5'));
        let e = AosiError::ActiveReaderBelow {
            requested: 4,
            oldest_reader: 2,
        };
        assert!(e.to_string().contains("reader"));
        assert!(AosiError::NotBroadcasted(6)
            .to_string()
            .contains("begin broadcast"));
        let e = AosiError::NodeUnreachable { epoch: 7, node: 3 };
        assert!(e.to_string().contains("node 3") && e.to_string().contains("T7"));
    }
}
