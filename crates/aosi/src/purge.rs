//! Garbage collection: the purge procedure (Section III-C4, Figure 3).
//!
//! "Purge always operates over LSE, since it is guaranteed that all
//! data prior to it is safely stored on disk … and that there are no
//! pending read transactions over an epoch prior to LSE." Purge has
//! two jobs: **(a)** compacting transactional history — merging
//! adjacent epochs-vector entries at or below LSE into single entries
//! — and **(b)** applying partition-deletes whose epoch is at or below
//! LSE, physically removing the rows they logically deleted.
//!
//! Purge is copy-based: it produces a brand-new epochs vector plus a
//! *keep bitmap* describing which old rows survive; the storage engine
//! rebuilds the partition's data vectors from the bitmap and swaps old
//! for new atomically, exactly as the paper describes.
//!
//! ## Why merging at LSE is safe
//!
//! Every reader the system will ever admit from now on has a snapshot
//! epoch `>= LSE` and no excluded dependency `<= LSE` (the transaction
//! manager's LSE gate enforces both: active readers directly, and
//! pending RW transactions via the min-dep floor each records at
//! begin), so all such readers agree on the visibility of every entry
//! at or below LSE. Relabeling a merged run
//! with the largest constituent epoch (still `<= LSE`) is therefore
//! observationally identical — including under any *future* delete
//! `k`, since `k > LSE >=` every merged epoch means the whole merged
//! run is uniformly below `k`.

use crate::epoch::{Epoch, EpochEntry};
use crate::epochs::EpochsVector;
use columnar::Bitmap;

/// Outcome of purging one partition.
#[derive(Clone, Debug)]
pub struct PurgeResult {
    /// The replacement epochs vector (row indexes recomputed over the
    /// surviving rows).
    pub vector: EpochsVector,
    /// Which *old* rows survive; the storage layer filters each data
    /// vector with this and swaps.
    pub keep: Bitmap,
    /// Rows physically removed by applied deletes.
    pub purged_rows: u64,
    /// Entries removed by merging/dropping.
    pub entries_reclaimed: usize,
    /// `false` if purge found nothing to do (the caller can skip the
    /// partition, as the paper's purge does).
    pub changed: bool,
}

/// Purges `partition` at `lse`.
pub fn purge(partition: &EpochsVector, lse: Epoch) -> PurgeResult {
    let rows = usize::try_from(partition.row_count()).expect("partition too large");
    let mut keep = Bitmap::new_set(rows);

    // (b) Apply the dominant delete at or below LSE. A later delete
    // subsumes earlier ones (see `visibility`), so one suffices.
    let dominant = partition
        .entries()
        .iter()
        .filter(|e| e.is_delete() && e.epoch() <= lse)
        .map(|e| (e.epoch(), e.end()))
        .max();
    if let Some((k, p)) = dominant {
        let mut start = 0usize;
        for entry in partition.entries() {
            if entry.is_delete() {
                continue;
            }
            let end = entry.end() as usize;
            if entry.epoch() < k {
                keep.clear_range(start, end);
            } else if entry.epoch() == k {
                let cut = end.min(p as usize);
                if start < cut {
                    keep.clear_range(start, cut);
                }
            }
            start = end;
        }
    }

    // (a) Rebuild the vector over surviving rows, merging adjacent
    // entries that every future reader sees identically.
    let mut new_entries: Vec<EpochEntry> = Vec::new();
    let mut old_start = 0usize;
    let mut new_rows = 0u64;
    for entry in partition.entries() {
        if entry.is_delete() {
            if entry.epoch() > lse {
                // Still pending for some future reader: retain, with
                // its delete point remapped onto surviving rows.
                let new_point = keep.count_ones_in_range(0, entry.end() as usize) as u64;
                new_entries.push(EpochEntry::delete(entry.epoch(), new_point));
            }
            continue;
        }
        let old_end = entry.end() as usize;
        let surviving = keep.count_ones_in_range(old_start, old_end) as u64;
        old_start = old_end;
        if surviving == 0 {
            continue;
        }
        new_rows += surviving;
        match new_entries.last_mut() {
            Some(last)
                if !last.is_delete()
                    && (last.epoch() == entry.epoch()
                        || (last.epoch() <= lse && entry.epoch() <= lse)) =>
            {
                *last = EpochEntry::insert(last.epoch().max(entry.epoch()), new_rows);
            }
            _ => new_entries.push(EpochEntry::insert(entry.epoch(), new_rows)),
        }
    }

    let purged_rows = rows as u64 - new_rows;
    let entries_reclaimed = partition.entries().len() - new_entries.len();
    let changed = purged_rows > 0 || entries_reclaimed > 0;
    // Continue the mutation counter past the source's history so the
    // rebuilt vector never reuses a generation that named different
    // contents (see `EpochsVector::generation`).
    let mut vector = EpochsVector::from_parts(new_entries, new_rows);
    vector.set_generation(partition.generation() + 1);
    PurgeResult {
        vector,
        keep,
        purged_rows,
        entries_reclaimed,
        changed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::Snapshot;

    fn render(v: &EpochsVector) -> String {
        v.entries().iter().map(|e| format!("{e:?}")).collect()
    }

    /// Figure 2(a)'s schedule (reconstructed; see `visibility` tests).
    fn schedule_a() -> EpochsVector {
        let mut v = EpochsVector::new();
        v.append(1, 2);
        v.append(3, 2);
        v.append(1, 1);
        v.mark_delete(5);
        v.append(3, 4);
        v.append(7, 1);
        v
    }

    #[test]
    fn figure_3a_purge_at_lse_3() {
        // "Purging when LSE = 3 allows (a) to merge all pointers on
        // epochs prior to LSE into a single entry (when contiguous).
        // However, the pending delete still cannot be applied since it
        // comes from a transaction later than LSE."
        let result = purge(&schedule_a(), 3);
        assert!(result.changed);
        assert_eq!(result.purged_rows, 0);
        assert_eq!(
            render(&result.vector),
            "(T3, 5)(T5, DELETE@5)(T3, 9)(T7, 10)"
        );
        assert_eq!(result.entries_reclaimed, 2);
        assert_eq!(result.vector.row_count(), 10);
    }

    #[test]
    fn figure_3b_purge_at_lse_5_applies_delete() {
        // "In (b), however, when LSE = 5, all data prior to 5 can be
        // safely deleted, even if it was inserted after the delete
        // operation chronologically. Hence, the only record and epoch
        // entry required is the one inserted by T7."
        let result = purge(&schedule_a(), 5);
        assert!(result.changed);
        assert_eq!(result.purged_rows, 9);
        assert_eq!(render(&result.vector), "(T7, 1)");
        assert_eq!(result.vector.row_count(), 1);
        // Only the last old row (T7's) survives.
        assert_eq!(result.keep.to_bit_string(), "0000000001");
    }

    #[test]
    fn purge_in_two_steps_equals_one_step() {
        let one_shot = purge(&schedule_a(), 5);
        let step1 = purge(&schedule_a(), 3);
        let step2 = purge(&step1.vector, 5);
        assert_eq!(render(&step2.vector), render(&one_shot.vector));
        assert_eq!(step2.vector.row_count(), one_shot.vector.row_count());
    }

    #[test]
    fn noop_purge_reports_unchanged() {
        let mut v = EpochsVector::new();
        v.append(4, 3);
        let result = purge(&v, 2);
        assert!(!result.changed);
        assert_eq!(result.vector, v);
        // And `needs_purge` agrees there is nothing to do.
        assert!(!v.needs_purge(2));
    }

    #[test]
    fn purge_preserves_visibility_for_future_readers() {
        // Any snapshot with epoch >= LSE and no deps below LSE must
        // see the same rows before and after purge (modulo the row
        // remapping given by `keep`).
        let v = schedule_a();
        for lse in [0u64, 1, 3, 5, 7] {
            let result = purge(&v, lse);
            for reader in lse.max(1)..=9 {
                let snap = Snapshot::committed(reader);
                let before = v.visible_bitmap(&snap);
                let after = result.vector.visible_bitmap(&snap);
                // Map the old bitmap through `keep` and compare.
                let mut expected = String::new();
                for old_row in 0..v.row_count() as usize {
                    if result.keep.get(old_row) {
                        expected.push(if before.get(old_row) { '1' } else { '0' });
                    } else {
                        assert!(
                            !before.get(old_row),
                            "purge at lse={lse} dropped a row visible to reader {reader}"
                        );
                    }
                }
                assert_eq!(after.to_bit_string(), expected, "lse={lse} reader={reader}");
            }
        }
    }

    #[test]
    fn retained_delete_point_is_remapped() {
        // T2 inserts 4 rows; T4 inserts 2; T2 deleted at point 4 is
        // applied (LSE 3), T6's delete at point 6 is retained and must
        // now point at the 2 surviving rows.
        let mut v = EpochsVector::new();
        v.append(2, 4);
        v.mark_delete(2); // point 4: kills T2's own four rows
        v.append(4, 2);
        v.mark_delete(6); // point 6
        let result = purge(&v, 4);
        assert_eq!(render(&result.vector), "(T4, 2)(T6, DELETE@2)");
        // A reader seeing T6's delete still sees nothing.
        let bm = result.vector.visible_bitmap(&Snapshot::committed(7));
        assert!(bm.is_all_zero());
    }

    #[test]
    fn merge_does_not_cross_retained_delete_marker() {
        let mut v = EpochsVector::new();
        v.append(1, 2);
        v.mark_delete(9); // far-future delete, retained
        v.append(2, 2);
        let result = purge(&v, 3);
        assert_eq!(render(&result.vector), "(T1, 2)(T9, DELETE@2)(T2, 4)");
    }

    #[test]
    fn adjacent_same_epoch_entries_merge_even_above_lse() {
        // T7's two runs split by an applied delete marker collapse.
        let mut v = EpochsVector::new();
        v.append(7, 2);
        v.mark_delete(1); // ancient delete, applied; kills nothing (<1)
        v.append(7, 2);
        let result = purge(&v, 2);
        assert_eq!(render(&result.vector), "(T7, 4)");
        assert_eq!(result.purged_rows, 0);
    }

    #[test]
    fn delete_on_empty_partition_is_reclaimed() {
        let mut v = EpochsVector::new();
        v.mark_delete(1);
        let result = purge(&v, 1);
        assert!(result.changed);
        assert!(result.vector.is_empty());
        assert_eq!(result.purged_rows, 0);
    }

    #[test]
    fn long_history_collapses_to_one_entry() {
        let mut v = EpochsVector::new();
        for epoch in 1..=100 {
            v.append(epoch, 10);
        }
        assert_eq!(v.entries().len(), 100);
        let result = purge(&v, 100);
        assert_eq!(result.vector.entries().len(), 1);
        assert_eq!(result.vector.row_count(), 1000);
        assert_eq!(result.entries_reclaimed, 99);
        assert_eq!(result.purged_rows, 0);
        assert_eq!(result.vector.entries()[0].epoch(), 100);
    }
}
