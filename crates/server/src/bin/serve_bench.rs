//! Serving-path load generator: drives concurrent HTTP clients
//! through a mixed SELECT/INSERT workload against a live in-process
//! server, sweeping client concurrency, with the online SI checker
//! attached to every transaction and read.
//!
//! Emits `BENCH_serve.json` (override with `AOSI_BENCH_OUT`): per
//! concurrency level, QPS plus p50/p95/p99 end-to-end latency, 429
//! rejections, and dedup share counts.
//!
//! Knobs: `AOSI_SERVE_LEVELS` (comma-separated client counts,
//! default `8,32,128`), `AOSI_SERVE_OPS` (requests per client),
//! `AOSI_SERVE_INFLIGHT` (admission limit), `AOSI_SERVE_SHARDS`
//! (engine shard threads), `AOSI_SERVE_MAX_P99_MS` (when > 0,
//! exit 1 if any level's SELECT p99 exceeds it — the serve-smoke CI
//! gate).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use checker::{SiChecker, TxnEvent};
use cubrick::Engine;
use server::client::Client;
use server::json::Json;
use server::{Server, ServerConfig};

const CUBE: &str = "servebench";
const NODE: u64 = 1;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The read battery: live aggregates, grouped/ordered shapes (the
/// fixed statement texts also make dedup collisions likely under
/// concurrency, which is the point of the dedup layer).
fn select_battery(i: usize) -> String {
    match i % 4 {
        0 => format!("SELECT SUM(likes), COUNT(*) FROM {CUBE}"),
        1 => format!(
            "SELECT AVG(score) FROM {CUBE} GROUP BY region ORDER BY AVG(score) DESC LIMIT 4"
        ),
        2 => format!("SELECT MIN(likes), MAX(likes) FROM {CUBE} GROUP BY day ORDER BY day LIMIT 8"),
        _ => format!("SELECT COUNT(*) FROM {CUBE} WHERE region IN ('r0', 'r1') GROUP BY day"),
    }
}

fn insert_statement(client: usize, op: usize) -> String {
    let i = client * 10_000 + op;
    format!(
        "INSERT INTO {CUBE} VALUES ('r{}', {}, {}, {}.5)",
        i % 8,
        i % 16,
        i % 100,
        i % 7
    )
}

#[derive(Default)]
struct LevelTally {
    select_micros: Vec<u64>,
    insert_micros: Vec<u64>,
    rejected: u64,
    dedup_shared: u64,
    errors: u64,
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn main() {
    let levels: Vec<usize> = std::env::var("AOSI_SERVE_LEVELS")
        .unwrap_or_else(|_| "8,32,128".into())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    let ops = env_usize("AOSI_SERVE_OPS", 60);
    let shards = env_usize("AOSI_SERVE_SHARDS", 4);
    let inflight = env_usize("AOSI_SERVE_INFLIGHT", 64);
    let max_p99_ms = env_f64("AOSI_SERVE_MAX_P99_MS", 0.0);
    let out = std::env::var("AOSI_BENCH_OUT").unwrap_or_else(|_| "BENCH_serve.json".into());

    println!("================================================================");
    println!("serve_bench: HTTP serving path under a client-concurrency sweep");
    println!("  levels = {levels:?}");
    println!("  ops_per_client = {ops}");
    println!("  shards = {shards}, max_inflight = {inflight}");
    println!("================================================================");

    let engine = Arc::new(Engine::new(shards));
    let checker = Arc::new(SiChecker::new(NODE));
    cubrick::sql::execute(
        &engine,
        &format!(
            "CREATE CUBE {CUBE} (region STRING DIM(8, 2), day INT DIM(16, 4), \
             likes INT METRIC, score FLOAT METRIC)"
        ),
    )
    .expect("create cube");
    // Seed data so the first SELECTs have bricks to scan.
    for seed in 0..8 {
        cubrick::sql::execute(&engine, &insert_statement(999, seed)).expect("seed insert");
    }

    let handle = Server::start_with_checker(
        Arc::clone(&engine),
        ServerConfig {
            max_inflight: inflight,
            ..ServerConfig::default()
        },
        Some((Arc::clone(&checker), NODE)),
    )
    .expect("start server");
    let addr = handle.addr();
    println!("serving on {addr}");

    let mut level_reports = Vec::new();
    let mut level_p99s = Vec::new();
    for &clients in &levels {
        let rejected = Arc::new(AtomicU64::new(0));
        let dedup_shared = Arc::new(AtomicU64::new(0));
        let errors = Arc::new(AtomicU64::new(0));
        let started = Instant::now();
        let mut joins = Vec::new();
        for client_id in 0..clients {
            let rejected = Arc::clone(&rejected);
            let dedup_shared = Arc::clone(&dedup_shared);
            let errors = Arc::clone(&errors);
            joins.push(std::thread::spawn(move || {
                let mut selects = Vec::new();
                let mut inserts = Vec::new();
                let mut client = Client::connect(addr).expect("connect");
                // A tenth of the clients run through a pinned
                // session: their reads are frozen at the pin epoch.
                let session = if client_id % 10 == 3 {
                    let opened = client
                        .request("POST", "/session", None)
                        .expect("open session");
                    let id = opened
                        .json()
                        .ok()
                        .and_then(|j| j.get("session").and_then(Json::as_f64))
                        .expect("session id") as u64;
                    let pin = server::json::obj([("session", Json::num(id as f64))]);
                    client
                        .request("POST", "/session/pin", Some(&pin))
                        .expect("pin session");
                    Some(id)
                } else {
                    None
                };
                for op in 0..ops {
                    let is_insert = session.is_none() && op % 10 == 9;
                    let sql = if is_insert {
                        insert_statement(client_id, op)
                    } else {
                        select_battery(client_id + op)
                    };
                    let op_started = Instant::now();
                    let mut attempts = 0;
                    loop {
                        let response = match client.query(&sql, session) {
                            Ok(response) => response,
                            Err(_) => {
                                // Connection died (e.g. idle timeout
                                // under extreme scheduling delay):
                                // reconnect once and retry.
                                client = Client::connect(addr).expect("reconnect");
                                errors.fetch_add(1, Ordering::Relaxed);
                                continue;
                            }
                        };
                        if response.status == 429 {
                            rejected.fetch_add(1, Ordering::Relaxed);
                            attempts += 1;
                            std::thread::sleep(
                                Duration::from_millis((2 * attempts).min(20) as u64),
                            );
                            continue;
                        }
                        if response.header("x-cubrick-dedup").is_some() {
                            dedup_shared.fetch_add(1, Ordering::Relaxed);
                        }
                        if response.status != 200 {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                        break;
                    }
                    let micros = op_started.elapsed().as_micros() as u64;
                    if is_insert {
                        inserts.push(micros);
                    } else {
                        selects.push(micros);
                    }
                }
                (selects, inserts)
            }));
        }
        let mut tally = LevelTally {
            rejected: 0,
            dedup_shared: 0,
            errors: 0,
            ..Default::default()
        };
        for join in joins {
            let (selects, inserts) = join.join().expect("client thread");
            tally.select_micros.extend(selects);
            tally.insert_micros.extend(inserts);
        }
        let elapsed = started.elapsed();
        tally.rejected = rejected.load(Ordering::Relaxed);
        tally.dedup_shared = dedup_shared.load(Ordering::Relaxed);
        tally.errors = errors.load(Ordering::Relaxed);
        tally.select_micros.sort_unstable();
        tally.insert_micros.sort_unstable();
        let total_ops = tally.select_micros.len() + tally.insert_micros.len();
        let qps = total_ops as f64 / elapsed.as_secs_f64();
        let p50 = percentile(&tally.select_micros, 0.50) as f64 / 1000.0;
        let p95 = percentile(&tally.select_micros, 0.95) as f64 / 1000.0;
        let p99 = percentile(&tally.select_micros, 0.99) as f64 / 1000.0;
        let insert_p99 = percentile(&tally.insert_micros, 0.99) as f64 / 1000.0;
        println!(
            "clients={clients:>4}  qps={qps:>8.0}  select p50={p50:.2}ms p95={p95:.2}ms \
             p99={p99:.2}ms  insert p99={insert_p99:.2}ms  429s={}  dedup={}  errors={}",
            tally.rejected, tally.dedup_shared, tally.errors
        );
        assert_eq!(tally.errors, 0, "non-200 responses under load");
        level_p99s.push(p99);
        level_reports.push(format!(
            "    {{\"clients\": {clients}, \"ops\": {total_ops}, \"qps\": {qps:.1}, \
             \"select_p50_ms\": {p50:.3}, \"select_p95_ms\": {p95:.3}, \
             \"select_p99_ms\": {p99:.3}, \"insert_p99_ms\": {insert_p99:.3}, \
             \"rejected_429\": {}, \"dedup_shared\": {}}}",
            tally.rejected, tally.dedup_shared
        ));
    }

    // Quiescent clock sample, then the verdict: the serving path must
    // be SI-clean under the whole sweep.
    let clock = engine.manager().clock();
    checker.record(TxnEvent::ClockSample {
        node: NODE,
        ec: clock.current_ec(),
        lce: clock.lce(),
        lse: clock.lse(),
    });
    let violations = checker.violations();
    assert!(
        violations.is_empty(),
        "{} SI violation(s) on the serving path, first: {}",
        violations.len(),
        violations[0]
    );
    println!("SI checker: clean across the sweep");
    println!("\n{}", handle.state().metrics_report());
    handle.shutdown();

    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"config\": {{\"ops_per_client\": {ops}, \
         \"shards\": {shards}, \"max_inflight\": {inflight}}},\n  \"levels\": [\n{}\n  ]\n}}\n",
        level_reports.join(",\n")
    );
    std::fs::write(&out, json).expect("write bench output");
    println!("wrote {out}");

    if max_p99_ms > 0.0 {
        let worst: f64 = level_p99s.iter().copied().fold(0.0, f64::max);
        if worst > max_p99_ms {
            eprintln!(
                "ENFORCE FAILED: worst select p99 {worst:.2}ms exceeds the \
                 {max_p99_ms:.2}ms ceiling"
            );
            std::process::exit(1);
        }
        println!("enforce: worst select p99 {worst:.2}ms <= {max_p99_ms:.2}ms — ok");
    }
}
