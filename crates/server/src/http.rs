//! A hand-rolled HTTP/1.1 server core over `std::net`.
//!
//! Implements exactly what the JSON protocol needs: request-line +
//! header parsing, `Content-Length` bodies (chunked *request* bodies
//! are rejected; chunked *responses* are written for the progressive
//! query stream), keep-alive connections, a body-size cap (413), and
//! a per-read timeout so an idle or half-dead client cannot pin a
//! connection thread forever.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Largest accepted request body, in bytes. Requests beyond it are
/// answered `413` and the connection closed (the body is unread, so
/// the stream is no longer framed).
pub const MAX_BODY_BYTES: usize = 4 << 20;

/// Largest accepted header block, in bytes.
const MAX_HEADER_BYTES: usize = 64 << 10;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, …).
    pub method: String,
    /// Path component of the request target (no query string split —
    /// the protocol carries everything in JSON bodies).
    pub path: String,
    /// Body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
}

/// Why reading a request failed.
#[derive(Debug)]
pub enum ReadError {
    /// Clean EOF before any request bytes: the client closed an idle
    /// keep-alive connection. Not an error worth answering.
    Closed,
    /// Malformed request framing; answer 400 and close.
    Bad(String),
    /// Body larger than [`MAX_BODY_BYTES`]; answer 413 and close.
    TooLarge,
}

/// Reads one request from the stream. `timeout` bounds each
/// underlying read; an idle keep-alive connection times out into
/// `Closed` so the connection thread can exit.
pub fn read_request(
    reader: &mut BufReader<TcpStream>,
    timeout: Duration,
) -> Result<Request, ReadError> {
    reader
        .get_ref()
        .set_read_timeout(Some(timeout))
        .map_err(|e| ReadError::Bad(format!("set_read_timeout: {e}")))?;
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => return Err(ReadError::Closed),
        Ok(_) => {}
        Err(e)
            if e.kind() == std::io::ErrorKind::WouldBlock
                || e.kind() == std::io::ErrorKind::TimedOut =>
        {
            return Err(ReadError::Closed)
        }
        Err(e) => return Err(ReadError::Bad(format!("request line: {e}"))),
    }
    let mut parts = line.split_whitespace();
    let (Some(method), Some(path)) = (parts.next(), parts.next()) else {
        return Err(ReadError::Bad(format!("malformed request line {line:?}")));
    };
    let method = method.to_ascii_uppercase();
    let path = path.to_owned();

    let mut content_length = 0usize;
    let mut keep_alive = true; // HTTP/1.1 default
    let mut header_bytes = line.len();
    loop {
        let mut header = String::new();
        match reader.read_line(&mut header) {
            Ok(0) => return Err(ReadError::Bad("eof in headers".into())),
            Ok(n) => header_bytes += n,
            Err(e) => return Err(ReadError::Bad(format!("header read: {e}"))),
        }
        if header_bytes > MAX_HEADER_BYTES {
            return Err(ReadError::Bad("header block too large".into()));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(ReadError::Bad(format!("malformed header {header:?}")));
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse()
                .map_err(|_| ReadError::Bad(format!("bad content-length {value:?}")))?;
        } else if name.eq_ignore_ascii_case("connection") {
            keep_alive = !value.eq_ignore_ascii_case("close");
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return Err(ReadError::Bad("chunked bodies unsupported".into()));
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(ReadError::TooLarge);
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| ReadError::Bad(format!("body read: {e}")))?;
    Ok(Request {
        method,
        path,
        body,
        keep_alive,
    })
}

/// Writes one response. Always includes `Content-Length` so
/// keep-alive framing works.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
    keep_alive: bool,
) -> std::io::Result<()> {
    let reason = reason_phrase(status);
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    if !keep_alive {
        head.push_str("connection: close\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Starts a `Transfer-Encoding: chunked` response: status line and
/// headers only. Follow with [`write_chunk`] per payload piece and
/// [`finish_chunked`] to close the message; keep-alive framing stays
/// intact because the zero-length chunk marks the end.
pub fn write_chunked_head(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    let reason = reason_phrase(status);
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\ncontent-type: {content_type}\r\ntransfer-encoding: chunked\r\n"
    );
    if !keep_alive {
        head.push_str("connection: close\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())
}

/// Writes one chunk and flushes, so a streaming client observes the
/// refinement as soon as it exists. Empty payloads are skipped — an
/// empty chunk is the terminator, which only [`finish_chunked`] may
/// write.
pub fn write_chunk(stream: &mut TcpStream, data: &[u8]) -> std::io::Result<()> {
    if data.is_empty() {
        return Ok(());
    }
    write!(stream, "{:x}\r\n", data.len())?;
    stream.write_all(data)?;
    stream.write_all(b"\r\n")?;
    stream.flush()
}

/// Terminates a chunked response (the zero-length chunk).
pub fn finish_chunked(stream: &mut TcpStream) -> std::io::Result<()> {
    stream.write_all(b"0\r\n\r\n")?;
    stream.flush()
}

fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        _ => "Response",
    }
}
