//! Session-scoped snapshot pinning.
//!
//! A session is a named epoch pin: `POST /session/pin` takes an AOSI
//! [`ReadGuard`] on the requested epoch, and every subsequent
//! `/query` on that session reads `AS OF` the pinned epoch unless the
//! statement carries its own explicit `AS OF`. The guard matters, not
//! just the number — a registered guard participates in the LSE
//! advance protocol, so purge can never reclaim a pinned epoch out
//! from under the session (the paper's read-stability contract,
//! stretched across requests).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use aosi::{ReadGuard, Snapshot};
use cubrick::Engine;

/// Why a session operation failed.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionError {
    /// The session id is unknown (expired, closed, or never issued).
    Unknown(u64),
    /// The requested pin epoch is outside the readable window.
    EpochOutOfRange {
        /// Requested epoch.
        requested: u64,
        /// Purge floor at the time of the request.
        lse: u64,
        /// Freshest committed epoch at the time of the request.
        lce: u64,
    },
    /// The registry is at capacity.
    TooManySessions,
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Unknown(id) => write!(f, "unknown session {id}"),
            SessionError::EpochOutOfRange {
                requested,
                lse,
                lce,
            } => write!(
                f,
                "epoch {requested} outside readable window [{lse}, {lce}]"
            ),
            SessionError::TooManySessions => write!(f, "session table full"),
        }
    }
}

struct Session {
    /// The pin: holding the `ReadGuard` keeps the epoch readable.
    pin: Option<(u64, ReadGuard)>,
}

/// All live sessions. One per server.
pub struct SessionRegistry {
    sessions: Mutex<HashMap<u64, Session>>,
    next_id: AtomicU64,
    capacity: usize,
}

impl SessionRegistry {
    /// An empty registry holding at most `capacity` sessions.
    pub fn new(capacity: usize) -> Self {
        SessionRegistry {
            sessions: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            capacity,
        }
    }

    /// Opens a session, returning its id.
    pub fn open(&self) -> Result<u64, SessionError> {
        let mut sessions = self.sessions.lock().unwrap();
        if sessions.len() >= self.capacity {
            return Err(SessionError::TooManySessions);
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        sessions.insert(id, Session { pin: None });
        Ok(id)
    }

    /// Pins `session` to `epoch` (or to the freshest committed epoch
    /// when `epoch` is `None`), replacing any previous pin. Returns
    /// the epoch actually pinned.
    ///
    /// The guard is taken *before* the window check — the same
    /// TOCTOU-safe order the engine itself uses — so a concurrent
    /// purge between sample and registration cannot invalidate a pin
    /// that validated.
    pub fn pin(
        &self,
        engine: &Engine,
        session: u64,
        epoch: Option<u64>,
    ) -> Result<u64, SessionError> {
        let manager = engine.manager();
        let epoch = epoch.unwrap_or_else(|| manager.lce());
        let guard = manager.guard_snapshot(Snapshot::committed(epoch));
        let (lse, lce) = (manager.lse(), manager.lce());
        if epoch < lse || epoch > lce {
            return Err(SessionError::EpochOutOfRange {
                requested: epoch,
                lse,
                lce,
            });
        }
        let mut sessions = self.sessions.lock().unwrap();
        let entry = sessions
            .get_mut(&session)
            .ok_or(SessionError::Unknown(session))?;
        entry.pin = Some((epoch, guard));
        Ok(epoch)
    }

    /// The session's pinned epoch, if any. Errors on unknown ids so
    /// clients learn their session died rather than silently reading
    /// fresh data.
    pub fn pinned_epoch(&self, session: u64) -> Result<Option<u64>, SessionError> {
        let sessions = self.sessions.lock().unwrap();
        sessions
            .get(&session)
            .map(|s| s.pin.as_ref().map(|(epoch, _)| *epoch))
            .ok_or(SessionError::Unknown(session))
    }

    /// Closes a session, dropping its pin (and the read guard with
    /// it, which lets LSE advance past the pinned epoch).
    pub fn close(&self, session: u64) -> Result<(), SessionError> {
        let mut sessions = self.sessions.lock().unwrap();
        sessions
            .remove(&session)
            .map(|_| ())
            .ok_or(SessionError::Unknown(session))
    }

    /// Live session count.
    pub fn len(&self) -> usize {
        self.sessions.lock().unwrap().len()
    }

    /// Whether no sessions are open.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine_with_rows(epochs: u64) -> Engine {
        let engine = Engine::new(1);
        cubrick::sql::execute(&engine, "CREATE CUBE s (k INT DIM(8, 2), v INT METRIC)").unwrap();
        for i in 0..epochs {
            cubrick::sql::execute(&engine, &format!("INSERT INTO s VALUES ({}, 1)", i % 8))
                .unwrap();
        }
        engine
    }

    #[test]
    fn open_pin_query_close() {
        let engine = engine_with_rows(3);
        let reg = SessionRegistry::new(8);
        let id = reg.open().unwrap();
        assert_eq!(reg.pinned_epoch(id).unwrap(), None);
        let pinned = reg.pin(&engine, id, Some(2)).unwrap();
        assert_eq!(pinned, 2);
        assert_eq!(reg.pinned_epoch(id).unwrap(), Some(2));
        // Default pin = freshest committed epoch.
        let pinned = reg.pin(&engine, id, None).unwrap();
        assert_eq!(pinned, engine.manager().lce());
        reg.close(id).unwrap();
        assert!(matches!(
            reg.pinned_epoch(id),
            Err(SessionError::Unknown(_))
        ));
    }

    #[test]
    fn pin_blocks_purge_of_pinned_epoch() {
        let engine = engine_with_rows(4);
        let reg = SessionRegistry::new(8);
        let id = reg.open().unwrap();
        reg.pin(&engine, id, Some(2)).unwrap();
        // Purge may advance LSE up to — but not past — the pin.
        engine.advance_lse_and_purge();
        assert!(engine.manager().lse() <= 2, "pin must hold the LSE back");
        let result = engine.query_as_of(
            "s",
            &cubrick::Query::aggregate(vec![cubrick::Aggregation::new(cubrick::AggFn::Count, "v")]),
            2,
        );
        assert!(result.is_ok(), "pinned epoch stays readable: {result:?}");
        // Closing the session releases the pin; purge can proceed.
        reg.close(id).unwrap();
        engine.advance_lse_and_purge();
        assert_eq!(engine.manager().lse(), engine.manager().lce());
    }

    #[test]
    fn out_of_window_pin_is_rejected() {
        let engine = engine_with_rows(2);
        let reg = SessionRegistry::new(8);
        let id = reg.open().unwrap();
        assert!(matches!(
            reg.pin(&engine, id, Some(99)),
            Err(SessionError::EpochOutOfRange { requested: 99, .. })
        ));
    }

    #[test]
    fn capacity_is_enforced() {
        let reg = SessionRegistry::new(1);
        reg.open().unwrap();
        assert!(matches!(reg.open(), Err(SessionError::TooManySessions)));
    }
}
