//! In-flight read-request deduplication.
//!
//! OLAP dashboards fan the same query out from many widgets at once;
//! under AOSI all of them read an immutable snapshot, so identical
//! (statement, snapshot-epoch) requests arriving while one is already
//! executing can share that execution's result instead of re-scanning
//! the bricks. The first arrival becomes the *leader* and runs the
//! query; *followers* block on a condvar and receive the leader's
//! rendered response verbatim.
//!
//! Correctness rests on snapshot immutability: the key includes the
//! effective epoch, and a query at a fixed epoch is deterministic, so
//! sharing is invisible to clients. Read-your-writes is preserved —
//! a client that just committed samples a fresher LCE, which is a
//! different key than any older in-flight leader.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

use obs::Counter;

/// A shared rendered response: HTTP status plus body.
pub type SharedResponse = Arc<(u16, String)>;

#[derive(Default)]
struct Inflight {
    done: Mutex<Option<Option<SharedResponse>>>,
    ready: Condvar,
}

/// The in-flight table. One per server.
#[derive(Default)]
pub struct DedupMap {
    inflight: Mutex<HashMap<(String, u64), Arc<Inflight>>>,
    /// Queries that executed (first arrivals).
    pub leaders: Counter,
    /// Queries answered from a leader's execution.
    pub followers: Counter,
}

/// What [`DedupMap::join`] decided for this request.
pub enum Role<'a> {
    /// Execute the query, then call [`LeaderGuard::publish`].
    Leader(LeaderGuard<'a>),
    /// The leader's response, shared verbatim.
    Follower(SharedResponse),
}

impl DedupMap {
    /// An empty table.
    pub fn new() -> Self {
        DedupMap::default()
    }

    /// Joins the in-flight execution for `(statement, epoch)`, or
    /// starts one. Followers block until the leader publishes.
    ///
    /// A leader that dies without publishing (panic, connection
    /// teardown) wakes its followers with `None` via the guard's
    /// `Drop`; those followers return `None` and re-execute as
    /// ordinary queries rather than hanging.
    pub fn join(&self, statement: &str, epoch: u64) -> Option<Role<'_>> {
        let key = (statement.to_owned(), epoch);
        let entry = {
            let mut inflight = self.inflight.lock().unwrap();
            match inflight.get(&key) {
                Some(entry) => Some(Arc::clone(entry)),
                None => {
                    inflight.insert(key.clone(), Arc::new(Inflight::default()));
                    None
                }
            }
        };
        match entry {
            None => {
                self.leaders.inc();
                Some(Role::Leader(LeaderGuard {
                    map: self,
                    key,
                    published: false,
                }))
            }
            Some(entry) => {
                let mut done = entry.done.lock().unwrap();
                while done.is_none() {
                    done = entry.ready.wait(done).unwrap();
                }
                match done.as_ref().unwrap() {
                    Some(response) => {
                        self.followers.inc();
                        Some(Role::Follower(Arc::clone(response)))
                    }
                    // Leader died without a result; caller re-executes.
                    None => None,
                }
            }
        }
    }
}

/// The leader's obligation: publish a response (or wake followers
/// empty-handed on drop).
pub struct LeaderGuard<'a> {
    map: &'a DedupMap,
    key: (String, u64),
    published: bool,
}

impl LeaderGuard<'_> {
    /// Publishes the rendered response to all followers and removes
    /// the in-flight entry (later arrivals start a fresh execution —
    /// by then the result may be cheap to recompute, and unbounded
    /// result caching is a different feature).
    pub fn publish(mut self, response: SharedResponse) {
        self.finish(Some(response));
        self.published = true;
    }

    fn finish(&mut self, response: Option<SharedResponse>) {
        let entry = {
            let mut inflight = self.map.inflight.lock().unwrap();
            inflight.remove(&self.key)
        };
        if let Some(entry) = entry {
            let mut done = entry.done.lock().unwrap();
            *done = Some(response);
            entry.ready.notify_all();
        }
    }
}

impl Drop for LeaderGuard<'_> {
    fn drop(&mut self) {
        if !self.published {
            self.finish(None);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;

    #[test]
    fn followers_share_the_leaders_response() {
        let map = Arc::new(DedupMap::new());
        let executions = Arc::new(AtomicUsize::new(0));
        let barrier = Arc::new(Barrier::new(4));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let map = Arc::clone(&map);
            let executions = Arc::clone(&executions);
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                match map.join("SELECT 1", 7).unwrap() {
                    Role::Leader(guard) => {
                        executions.fetch_add(1, Ordering::SeqCst);
                        // Give followers time to pile up on the entry.
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        guard.publish(Arc::new((200, "body".into())));
                        "leader".to_owned()
                    }
                    Role::Follower(shared) => {
                        assert_eq!(shared.1, "body");
                        "follower".to_owned()
                    }
                }
            }));
        }
        let roles: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let leaders = roles.iter().filter(|r| *r == "leader").count();
        assert_eq!(leaders, 1, "exactly one execution: {roles:?}");
        assert_eq!(executions.load(Ordering::SeqCst), 1);
        assert_eq!(map.leaders.get(), 1);
        assert_eq!(map.followers.get(), 3);
    }

    #[test]
    fn different_epochs_do_not_share() {
        let map = DedupMap::new();
        let Role::Leader(a) = map.join("SELECT 1", 1).unwrap() else {
            panic!("first arrival must lead");
        };
        let Role::Leader(b) = map.join("SELECT 1", 2).unwrap() else {
            panic!("different epoch must not share");
        };
        a.publish(Arc::new((200, "a".into())));
        b.publish(Arc::new((200, "b".into())));
    }

    #[test]
    fn dead_leader_wakes_followers_empty_handed() {
        let map = Arc::new(DedupMap::new());
        let Role::Leader(guard) = map.join("q", 1).unwrap() else {
            panic!()
        };
        let follower = {
            let map = Arc::clone(&map);
            std::thread::spawn(move || map.join("q", 1).is_none())
        };
        // Wait until the follower is parked on the entry, then drop
        // the guard without publishing (simulates a panicking leader).
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(guard);
        assert!(
            follower.join().unwrap(),
            "follower must observe the dead leader"
        );
        // The entry is gone: the next arrival leads fresh.
        assert!(matches!(map.join("q", 1), Some(Role::Leader(_))));
    }
}
