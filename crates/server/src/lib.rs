//! The serving front door: HTTP/JSON over the Cubrick engine.
//!
//! The paper's protocol exists so *many concurrent clients* can read
//! cheap snapshots under heavy ingestion; this crate is where those
//! clients actually connect. It is a hand-rolled HTTP/1.1 server
//! (`std::net` only — the build has no crates.io access) wrapping the
//! SQL layer with the three serving-layer mechanisms an in-process
//! engine cannot provide:
//!
//! * **Sessions** ([`session`]) — a session pins an `AS OF` epoch
//!   behind an AOSI read guard, so a dashboard paging through results
//!   sees one frozen snapshot across requests and purge cannot
//!   reclaim it mid-pagination.
//! * **Admission control** ([`admission`]) — a bounded in-flight
//!   semaphore above the `ShardPool` turns overload into typed `429`
//!   backpressure instead of unbounded thread pileup.
//! * **In-flight dedup** ([`dedup`]) — identical (statement, epoch)
//!   reads arriving while one is executing share that execution's
//!   response; snapshot immutability makes the sharing invisible.
//!
//! Result-surface conventions (shared with the console path, enforced
//! by the query layer): empty-group `Min`/`Max`/`Avg` finalize to NaN
//! and serialize as JSON `null`; `ORDER BY` is total with NaN last in
//! both directions; `DESC` reverses the comparator (never the rows),
//! tie-breaking by packed group key.
//!
//! # Protocol
//!
//! | Route                | Body                          | Answer |
//! |----------------------|-------------------------------|--------|
//! | `POST /query`        | `{"sql": "...", "session"?}`  | result table / ack |
//! | `POST /query` + `"progressive": true` | same          | chunked NDJSON refinement stream |
//! | `POST /session`      | —                             | `{"session": id}` |
//! | `POST /session/pin`  | `{"session", "epoch"?}`       | `{"session", "epoch"}` |
//! | `POST /session/close`| `{"session"}`                 | `{"closed": true}` |
//! | `GET /health`        | —                             | `{"status":"ok", ...}` |
//! | `GET /metrics`       | —                             | plain-text report |
//!
//! **Progressive SELECTs**: a `"progressive": true` member on
//! `POST /query` switches the response to `Transfer-Encoding:
//! chunked` NDJSON — one full result object per line as brick
//! partials land at the merge coordinator, each marked
//! `"partial": true`, with the final complete result (identical to
//! the non-progressive answer at the same epoch) marked
//! `"partial": false`. Refinements arrive in the executor's
//! deterministic merge order. Progressive responses bypass the
//! dedup layer (a stream cannot be shared) but still pass admission
//! control. Errors detected before the first byte (parse errors,
//! non-SELECT statements, bad epochs, saturation) come back as the
//! usual one-shot JSON statuses.
//!
//! Errors: 400 (malformed JSON/SQL), 404 (route, unknown session),
//! 405 (method), 413 (body cap), 422 (engine errors, bad epochs),
//! 429 (saturated; body carries `"kind":"saturated"`).

#![warn(missing_docs)]

pub mod admission;
pub mod client;
pub mod dedup;
pub mod http;
pub mod json;
pub mod session;

use std::collections::BTreeSet;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use aosi::{ReadGuard, Snapshot};
use checker::{SiChecker, TxnEvent};
use columnar::Value;
use cubrick::sql::{self, SelectOutcome, SqlError, SqlOutput, Statement};
use cubrick::Engine;
use obs::{Counter, Histogram, ReportBuilder};

use admission::{AdmissionGate, AdmitError};
use dedup::{DedupMap, Role};
use http::{
    finish_chunked, read_request, write_chunk, write_chunked_head, write_response, ReadError,
    Request,
};
use json::{obj, Json};
use session::{SessionError, SessionRegistry};

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Address to bind; port 0 picks a free port.
    pub bind: SocketAddr,
    /// Queries executing at once; 0 rejects everything (tests).
    pub max_inflight: usize,
    /// Queries waiting for a slot beyond the in-flight limit.
    pub max_queue: usize,
    /// Longest a query waits in the admission queue before a 429.
    pub queue_timeout: Duration,
    /// Live session cap.
    pub max_sessions: usize,
    /// Idle read timeout per connection; an idle keep-alive
    /// connection is closed after this.
    pub read_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            bind: "127.0.0.1:0".parse().unwrap(),
            max_inflight: 64,
            max_queue: 256,
            queue_timeout: Duration::from_secs(10),
            max_sessions: 1024,
            read_timeout: Duration::from_secs(30),
        }
    }
}

/// `[server]`-section counters.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// `POST /query` requests.
    pub query_requests: Counter,
    /// SELECTs among them.
    pub select_queries: Counter,
    /// Progressive (streamed NDJSON) SELECTs among them.
    pub progressive_queries: Counter,
    /// INSERTs among them.
    pub insert_queries: Counter,
    /// Session-endpoint requests.
    pub session_requests: Counter,
    /// `GET /health` requests.
    pub health_requests: Counter,
    /// `GET /metrics` requests.
    pub metrics_requests: Counter,
    /// Responses by status class.
    pub responses_2xx: Counter,
    /// 4xx responses other than 429.
    pub responses_4xx: Counter,
    /// 429 responses (admission rejections).
    pub responses_429: Counter,
    /// 5xx responses.
    pub responses_5xx: Counter,
    /// Connections accepted.
    pub connections_opened: Counter,
    /// Connections finished.
    pub connections_closed: Counter,
    /// End-to-end `/query` latency in nanoseconds.
    pub query_nanos: Histogram,
}

/// Shared server state: engine, gates, tables, metrics.
pub struct ServerState {
    engine: Arc<Engine>,
    gate: AdmissionGate,
    sessions: SessionRegistry,
    dedup: DedupMap,
    metrics: ServerMetrics,
    checker: Option<(Arc<SiChecker>, u64)>,
    started: Instant,
    shutdown: AtomicBool,
}

impl ServerState {
    /// Renders the `[server.*]` sections followed by the engine's own
    /// report — one text artifact with the whole node's health.
    pub fn metrics_report(&self) -> String {
        let uptime = self.started.elapsed();
        let queries = self.metrics.query_requests.get();
        let qps = queries as f64 / uptime.as_secs_f64().max(1e-9);
        let (inflight, queued) = self.gate.depths();
        let mut report = ReportBuilder::new();
        report
            .section("server")
            .metric("uptime_seconds", format!("{:.1}", uptime.as_secs_f64()))
            .counter("query.requests", &self.metrics.query_requests)
            .metric("query.qps", format!("{qps:.1}"))
            .counter("query.selects", &self.metrics.select_queries)
            .counter("query.progressive", &self.metrics.progressive_queries)
            .counter("query.inserts", &self.metrics.insert_queries)
            .counter("session.requests", &self.metrics.session_requests)
            .counter("health.requests", &self.metrics.health_requests)
            .counter("metrics.requests", &self.metrics.metrics_requests)
            .counter("responses.2xx", &self.metrics.responses_2xx)
            .counter("responses.4xx", &self.metrics.responses_4xx)
            .counter("responses.429", &self.metrics.responses_429)
            .counter("responses.5xx", &self.metrics.responses_5xx)
            .counter("connections.opened", &self.metrics.connections_opened)
            .counter("connections.closed", &self.metrics.connections_closed)
            .histogram("query_nanos", &self.metrics.query_nanos);
        report
            .section("server.admission")
            .counter("admitted", &self.gate.admitted)
            .counter("rejected", &self.gate.rejected)
            .metric("inflight", inflight)
            .metric("queued", queued)
            .gauge("queue_high_water", &self.gate.queue_high_water)
            .histogram("queue_wait_nanos", &self.gate.queue_wait_nanos);
        report
            .section("server.dedup")
            .counter("leaders", &self.dedup.leaders)
            .counter("followers", &self.dedup.followers);
        report
            .section("server.sessions")
            .metric("live", self.sessions.len());
        let mut text = report.finish();
        text.push('\n');
        text.push_str(&self.engine.metrics_report());
        text
    }
}

/// A running server: bound address plus shutdown control.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (the OS-assigned port when `bind` used 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared state, for metrics inspection in tests and benches.
    pub fn state(&self) -> &ServerState {
        &self.state
    }

    /// Stops accepting connections and joins the accept thread.
    /// Already-open connections finish their current request and are
    /// closed by their idle timeout.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with one throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.stop();
        }
    }
}

/// Builds and starts servers.
pub struct Server;

impl Server {
    /// Starts serving `engine` per `config`. Returns once the
    /// listener is bound; connections are handled on background
    /// threads (one per connection — plenty for the scale this
    /// reproduction targets, and the admission gate bounds the
    /// queries behind them regardless of connection count).
    pub fn start(engine: Arc<Engine>, config: ServerConfig) -> std::io::Result<ServerHandle> {
        Self::start_with_checker(engine, config, None)
    }

    /// [`Server::start`] with the online SI checker riding along:
    /// every transaction on the insert path and every read records a
    /// checker event under `node`.
    pub fn start_with_checker(
        engine: Arc<Engine>,
        config: ServerConfig,
        checker: Option<(Arc<SiChecker>, u64)>,
    ) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(config.bind)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(ServerState {
            engine,
            gate: AdmissionGate::new(config.max_inflight, config.max_queue, config.queue_timeout),
            sessions: SessionRegistry::new(config.max_sessions),
            dedup: DedupMap::new(),
            metrics: ServerMetrics::default(),
            checker,
            started: Instant::now(),
            shutdown: AtomicBool::new(false),
        });
        let read_timeout = config.read_timeout;
        let accept_state = Arc::clone(&state);
        let accept_thread = std::thread::Builder::new()
            .name("cubrick-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_state.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    accept_state.metrics.connections_opened.inc();
                    let state = Arc::clone(&accept_state);
                    let _ = std::thread::Builder::new()
                        .name("cubrick-conn".into())
                        .spawn(move || {
                            handle_connection(&state, stream, read_timeout);
                            state.metrics.connections_closed.inc();
                        });
                }
            })?;
        Ok(ServerHandle {
            addr,
            state,
            accept_thread: Some(accept_thread),
        })
    }
}

fn handle_connection(state: &ServerState, stream: TcpStream, read_timeout: Duration) {
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(stream);
    loop {
        if state.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let request = match read_request(&mut reader, read_timeout) {
            Ok(request) => request,
            Err(ReadError::Closed) => return,
            Err(ReadError::TooLarge) => {
                let body = error_body("request body too large", "too_large").render();
                let _ = write_response(
                    reader.get_mut(),
                    413,
                    "application/json",
                    &[],
                    body.as_bytes(),
                    false,
                );
                return;
            }
            Err(ReadError::Bad(msg)) => {
                let body = error_body(&msg, "protocol").render();
                let _ = write_response(
                    reader.get_mut(),
                    400,
                    "application/json",
                    &[],
                    body.as_bytes(),
                    false,
                );
                return;
            }
        };
        let keep_alive = request.keep_alive;
        // Progressive queries stream their own (chunked) response and
        // cannot go through the buffered `route` path.
        let progressive = request.method == "POST"
            && request.path == "/query"
            && parse_body(&request.body)
                .ok()
                .and_then(|b| b.get("progressive").and_then(Json::as_bool))
                == Some(true);
        if progressive {
            let started = Instant::now();
            state.metrics.query_requests.inc();
            state.metrics.progressive_queries.inc();
            let outcome =
                handle_progressive_query(state, reader.get_mut(), &request.body, keep_alive);
            state.metrics.query_nanos.record_duration(started.elapsed());
            match outcome {
                // Streamed to completion; the chunked terminator keeps
                // keep-alive framing intact.
                Ok(true) => {
                    state.metrics.responses_2xx.inc();
                    if !keep_alive {
                        return;
                    }
                    continue;
                }
                // Mid-stream I/O failure: the message is unframed, so
                // the connection must close.
                Ok(false) => {
                    state.metrics.responses_5xx.inc();
                    return;
                }
                // Rejected before any bytes went out: fall through to
                // the ordinary one-shot response writer below.
                Err(routed) => {
                    let (status, content_type, extra, body) = routed;
                    match status {
                        200 => state.metrics.responses_2xx.inc(),
                        429 => state.metrics.responses_429.inc(),
                        400..=499 => state.metrics.responses_4xx.inc(),
                        _ => state.metrics.responses_5xx.inc(),
                    }
                    let extra_refs: Vec<(&str, &str)> = extra
                        .iter()
                        .map(|(n, v)| (n.as_str(), v.as_str()))
                        .collect();
                    if write_response(
                        reader.get_mut(),
                        status,
                        content_type,
                        &extra_refs,
                        body.as_bytes(),
                        keep_alive,
                    )
                    .is_err()
                        || !keep_alive
                    {
                        return;
                    }
                    continue;
                }
            }
        }
        let (status, content_type, extra, body) = route(state, &request);
        match status {
            200 => state.metrics.responses_2xx.inc(),
            429 => state.metrics.responses_429.inc(),
            400..=499 => state.metrics.responses_4xx.inc(),
            _ => state.metrics.responses_5xx.inc(),
        }
        let extra_refs: Vec<(&str, &str)> = extra
            .iter()
            .map(|(n, v)| (n.as_str(), v.as_str()))
            .collect();
        if write_response(
            reader.get_mut(),
            status,
            content_type,
            &extra_refs,
            body.as_bytes(),
            keep_alive,
        )
        .is_err()
            || !keep_alive
        {
            return;
        }
    }
}

type Routed = (u16, &'static str, Vec<(String, String)>, String);

fn route(state: &ServerState, request: &Request) -> Routed {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/health") => {
            state.metrics.health_requests.inc();
            let manager = state.engine.manager();
            let body = obj([
                ("status", Json::str("ok")),
                ("lce", Json::num(manager.lce() as f64)),
                ("lse", Json::num(manager.lse() as f64)),
                ("sessions", Json::num(state.sessions.len() as f64)),
            ]);
            (200, "application/json", Vec::new(), body.render())
        }
        ("GET", "/metrics") => {
            state.metrics.metrics_requests.inc();
            (200, "text/plain", Vec::new(), state.metrics_report())
        }
        ("POST", "/query") => {
            let started = Instant::now();
            let routed = handle_query(state, &request.body);
            state.metrics.query_nanos.record_duration(started.elapsed());
            routed
        }
        ("POST", "/session") => {
            state.metrics.session_requests.inc();
            match state.sessions.open() {
                Ok(id) => json_ok(obj([("session", Json::num(id as f64))])),
                Err(e) => session_error(e),
            }
        }
        ("POST", "/session/pin") => {
            state.metrics.session_requests.inc();
            let parsed = match parse_body(&request.body) {
                Ok(parsed) => parsed,
                Err(routed) => return routed,
            };
            let Some(session) = parsed.get("session").and_then(Json::as_f64) else {
                return bad_request("body needs a numeric `session`");
            };
            let epoch = parsed.get("epoch").and_then(Json::as_f64).map(|e| e as u64);
            match state.sessions.pin(&state.engine, session as u64, epoch) {
                Ok(epoch) => json_ok(obj([
                    ("session", Json::num(session)),
                    ("epoch", Json::num(epoch as f64)),
                ])),
                Err(e) => session_error(e),
            }
        }
        ("POST", "/session/close") => {
            state.metrics.session_requests.inc();
            let parsed = match parse_body(&request.body) {
                Ok(parsed) => parsed,
                Err(routed) => return routed,
            };
            let Some(session) = parsed.get("session").and_then(Json::as_f64) else {
                return bad_request("body needs a numeric `session`");
            };
            match state.sessions.close(session as u64) {
                Ok(()) => json_ok(obj([("closed", Json::Bool(true))])),
                Err(e) => session_error(e),
            }
        }
        ("POST" | "GET", _) => (
            404,
            "application/json",
            Vec::new(),
            error_body(&format!("no route {}", request.path), "route").render(),
        ),
        _ => (
            405,
            "application/json",
            Vec::new(),
            error_body(&format!("method {} not allowed", request.method), "method").render(),
        ),
    }
}

fn handle_query(state: &ServerState, body: &[u8]) -> Routed {
    state.metrics.query_requests.inc();
    let parsed = match parse_body(body) {
        Ok(parsed) => parsed,
        Err(routed) => return routed,
    };
    let Some(sql) = parsed.get("sql").and_then(Json::as_str) else {
        return bad_request("body needs a string `sql`");
    };
    let session = parsed
        .get("session")
        .and_then(Json::as_f64)
        .map(|s| s as u64);
    let statement = match sql::parse(sql) {
        Ok(statement) => statement,
        Err(e) => return sql_error(e),
    };
    match statement {
        Statement::Select { cube, query, as_of } => {
            state.metrics.select_queries.inc();
            handle_select(state, sql, &cube, &query, as_of, session)
        }
        Statement::Insert { cube, rows } => {
            state.metrics.insert_queries.inc();
            let _permit = match state.gate.admit() {
                Ok(permit) => permit,
                Err(AdmitError::Saturated) => return saturated(),
            };
            handle_insert(state, &cube, &rows)
        }
        other => {
            let _permit = match state.gate.admit() {
                Ok(permit) => permit,
                Err(AdmitError::Saturated) => return saturated(),
            };
            match sql::execute_statement(&state.engine, other) {
                Ok(SqlOutput::Ok(msg)) => json_ok(obj([("ok", Json::str(msg))])),
                Ok(SqlOutput::Table { columns, rows }) => {
                    let columns = Json::Arr(columns.into_iter().map(Json::Str).collect());
                    let rows = Json::Arr(
                        rows.into_iter()
                            .map(|r| Json::Arr(r.into_iter().map(Json::Str).collect()))
                            .collect(),
                    );
                    json_ok(obj([("columns", columns), ("rows", rows)]))
                }
                Err(e) => sql_error(e),
            }
        }
    }
}

/// The SELECT path: resolve the effective epoch (statement `AS OF` >
/// session pin > freshest committed), admit, dedup, execute, render.
fn handle_select(
    state: &ServerState,
    sql: &str,
    cube: &str,
    query: &cubrick::Query,
    as_of: Option<u64>,
    session: Option<u64>,
) -> Routed {
    let (epoch, _guard) = match resolve_read_epoch(state, as_of, session) {
        Ok(resolved) => resolved,
        Err(routed) => return routed,
    };
    let statement_key = sql.trim();
    match state.dedup.join(statement_key, epoch) {
        Some(Role::Follower(shared)) => {
            let (status, body) = (shared.0, shared.1.clone());
            (
                status,
                "application/json",
                vec![("x-cubrick-dedup".to_owned(), "shared".to_owned())],
                body,
            )
        }
        Some(Role::Leader(leader)) => {
            let routed = execute_select_routed(state, cube, query, epoch, statement_key);
            leader.publish(Arc::new((routed.0, routed.3.clone())));
            routed
        }
        // The previous leader died without publishing; run it solo.
        None => execute_select_routed(state, cube, query, epoch, statement_key),
    }
}

/// Resolves the effective read epoch for a SELECT — statement
/// `AS OF` beats the session pin beats the freshest committed. The
/// live case takes a guard *before* re-validating the window (the
/// engine's own TOCTOU-safe order) so the resolved epoch stays
/// readable for as long as the caller holds the guard — the dedup
/// key for buffered responses, the whole refinement stream for
/// progressive ones.
fn resolve_read_epoch(
    state: &ServerState,
    as_of: Option<u64>,
    session: Option<u64>,
) -> Result<(u64, Option<ReadGuard>), Routed> {
    let manager = state.engine.manager();
    match as_of {
        Some(epoch) => Ok((epoch, None)),
        None => {
            let pinned = match session {
                Some(id) => match state.sessions.pinned_epoch(id) {
                    Ok(pinned) => pinned,
                    Err(e) => return Err(session_error(e)),
                },
                None => None,
            };
            match pinned {
                Some(epoch) => Ok((epoch, None)),
                None => {
                    // Freshest committed epoch; retry the sample if a
                    // purge wins the race between sample and guard.
                    let mut attempt = 0;
                    loop {
                        let epoch = manager.lce();
                        let guard = manager.guard_snapshot(Snapshot::committed(epoch));
                        if epoch >= manager.lse() {
                            return Ok((epoch, Some(guard)));
                        }
                        attempt += 1;
                        if attempt > 8 {
                            return Err((
                                500,
                                "application/json",
                                Vec::new(),
                                error_body("cannot stabilize a read epoch", "internal").render(),
                            ));
                        }
                    }
                }
            }
        }
    }
}

/// Writes the progressive NDJSON stream: lazily opens the chunked
/// response on the first line, then one flushed chunk per line. The
/// lazy head is what lets every pre-stream error (parse, admission,
/// window) still go out as an ordinary status response.
struct ProgressiveSink<'a> {
    stream: &'a mut TcpStream,
    keep_alive: bool,
    started: bool,
    failed: bool,
}

impl ProgressiveSink<'_> {
    fn send(&mut self, line: &Json) {
        if self.failed {
            return;
        }
        if !self.started {
            // Head bytes may be partially written on failure, so the
            // connection counts as unframed either way.
            self.started = true;
            if write_chunked_head(self.stream, 200, "application/x-ndjson", self.keep_alive)
                .is_err()
            {
                self.failed = true;
                return;
            }
        }
        let mut text = line.render();
        text.push('\n');
        if write_chunk(self.stream, text.as_bytes()).is_err() {
            self.failed = true;
        }
    }

    fn finish(&mut self) {
        if !self.failed && finish_chunked(self.stream).is_err() {
            self.failed = true;
        }
    }
}

/// The progressive `/query` path. `Ok(true)`: the chunked stream was
/// written to completion (keep-alive framing intact). `Ok(false)`:
/// an I/O failure mid-stream left the message unframed — close the
/// connection. `Err`: the request was rejected before any response
/// byte; the caller writes the ordinary one-shot answer.
fn handle_progressive_query(
    state: &ServerState,
    stream: &mut TcpStream,
    body: &[u8],
    keep_alive: bool,
) -> Result<bool, Routed> {
    let parsed = parse_body(body)?;
    let Some(sql) = parsed.get("sql").and_then(Json::as_str) else {
        return Err(bad_request("body needs a string `sql`"));
    };
    let session = parsed
        .get("session")
        .and_then(Json::as_f64)
        .map(|s| s as u64);
    let statement = sql::parse(sql).map_err(sql_error)?;
    let Statement::Select { cube, query, as_of } = statement else {
        return Err(bad_request("progressive mode requires a SELECT"));
    };
    state.metrics.select_queries.inc();
    let (epoch, _guard) = resolve_read_epoch(state, as_of, session)?;
    let _permit = state.gate.admit().map_err(|_| saturated())?;
    let mut sink = ProgressiveSink {
        stream,
        keep_alive,
        started: false,
        failed: false,
    };
    let outcome =
        sql::execute_select_with_progress(&state.engine, &cube, &query, epoch, |refinement| {
            sink.send(&render_progressive(&refinement, epoch, true));
        });
    match outcome {
        Ok(complete) => {
            if let Some((checker, node)) = &state.checker {
                checker.record(TxnEvent::Read {
                    node: *node,
                    snapshot_epoch: epoch,
                    deps: BTreeSet::new(),
                    observed: BTreeSet::new(),
                    reader: None,
                    key: format!("{cube}:{}", sql.trim()),
                    fingerprint: fingerprint_outcome(&complete),
                });
            }
            sink.send(&render_progressive(&complete, epoch, false));
            sink.finish();
            Ok(!sink.failed)
        }
        Err(e) => {
            let routed = sql_error(e);
            if !sink.started {
                // Nothing streamed yet (the usual case: resolution
                // fails before any partial lands) — ordinary status.
                return Err(routed);
            }
            // Refinements already went out; terminate the stream with
            // a final error line so the client is not left waiting.
            let mut line = json::parse(&routed.3)
                .unwrap_or_else(|_| error_body("query failed mid-stream", "engine"));
            line.set("partial", Json::Bool(false));
            sink.send(&line);
            sink.finish();
            Ok(!sink.failed)
        }
    }
}

/// One NDJSON line of the progressive stream: the ordinary SELECT
/// rendering plus the `partial` marker.
fn render_progressive(outcome: &SelectOutcome, epoch: u64, partial: bool) -> Json {
    let mut body = render_select(outcome, epoch);
    body.set("partial", Json::Bool(partial));
    body
}

fn execute_select_routed(
    state: &ServerState,
    cube: &str,
    query: &cubrick::Query,
    epoch: u64,
    statement_key: &str,
) -> Routed {
    let _permit = match state.gate.admit() {
        Ok(permit) => permit,
        Err(AdmitError::Saturated) => return saturated(),
    };
    let outcome = match sql::execute_select(&state.engine, cube, query, Some(epoch)) {
        Ok(outcome) => outcome,
        Err(e) => return sql_error(e),
    };
    if let Some((checker, node)) = &state.checker {
        checker.record(TxnEvent::Read {
            node: *node,
            snapshot_epoch: epoch,
            deps: BTreeSet::new(),
            observed: BTreeSet::new(),
            reader: None,
            key: format!("{cube}:{statement_key}"),
            fingerprint: fingerprint_outcome(&outcome),
        });
    }
    let body = render_select(&outcome, epoch);
    (200, "application/json", Vec::new(), body.render())
}

fn handle_insert(state: &ServerState, cube: &str, rows: &[columnar::Row]) -> Routed {
    // Explicit transaction so the SI checker sees Begin/Commit (or
    // Rollback when rows are rejected), exactly like a native writer.
    let txn = state.engine.begin();
    if let Some((checker, node)) = &state.checker {
        checker.record(TxnEvent::Begin {
            node: *node,
            epoch: txn.epoch(),
            deps: txn.snapshot().deps().clone(),
        });
    }
    let epoch = txn.epoch();
    match state.engine.append(cube, rows, &txn) {
        Ok((accepted, 0)) => match state.engine.commit(&txn) {
            Ok(()) => {
                if let Some((checker, node)) = &state.checker {
                    checker.record(TxnEvent::Commit { node: *node, epoch });
                }
                json_ok(obj([
                    (
                        "ok",
                        Json::str(format!(
                            "inserted {accepted} row(s) as transaction T{epoch}"
                        )),
                    ),
                    ("epoch", Json::num(epoch as f64)),
                    ("accepted", Json::num(accepted as f64)),
                ]))
            }
            Err(e) => engine_error(&e.to_string()),
        },
        Ok((_, rejected)) => {
            let rolled_back = state.engine.rollback(&txn);
            if let Some((checker, node)) = &state.checker {
                checker.record(TxnEvent::Rollback { node: *node, epoch });
            }
            let _ = rolled_back;
            engine_error(&format!(
                "{rejected} row(s) rejected; transaction rolled back"
            ))
        }
        Err(e) => {
            let rolled_back = state.engine.rollback(&txn);
            if let Some((checker, node)) = &state.checker {
                checker.record(TxnEvent::Rollback { node: *node, epoch });
            }
            let _ = rolled_back;
            engine_error(&e.to_string())
        }
    }
}

/// Renders a SELECT outcome: group-key cells keep their native JSON
/// types, aggregate cells are numbers with NaN/±inf as `null`.
fn render_select(outcome: &SelectOutcome, epoch: u64) -> Json {
    let rows = outcome
        .rows
        .iter()
        .map(|(keys, values)| {
            let mut cells: Vec<Json> = keys.iter().map(value_to_json).collect();
            cells.extend(values.iter().map(|&v| Json::num(v)));
            Json::Arr(cells)
        })
        .collect();
    obj([
        (
            "columns",
            Json::Arr(outcome.columns.iter().map(Json::str).collect()),
        ),
        ("rows", Json::Arr(rows)),
        ("row_count", Json::num(outcome.rows.len() as f64)),
        ("epoch", Json::num(epoch as f64)),
        (
            "stats",
            obj([
                ("rows_scanned", Json::num(outcome.stats.rows_scanned as f64)),
                ("rows_visible", Json::num(outcome.stats.rows_visible as f64)),
                (
                    "bricks_scanned",
                    Json::num(outcome.stats.bricks_scanned as f64),
                ),
            ]),
        ),
    ])
}

fn value_to_json(v: &Value) -> Json {
    match v {
        Value::Str(s) => Json::str(s.as_str()),
        Value::I64(i) => Json::num(*i as f64),
        Value::F64(f) => Json::num(*f),
    }
}

/// Order-insensitive fingerprint of a SELECT outcome for the SI
/// checker: FNV-1a per row, combined commutatively.
fn fingerprint_outcome(outcome: &SelectOutcome) -> u64 {
    let row_hashes = outcome.rows.iter().map(|(keys, values)| {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        let mut fold = |bytes: &[u8]| {
            for &b in bytes {
                hash ^= b as u64;
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for key in keys {
            match key {
                Value::Str(s) => fold(s.as_bytes()),
                Value::I64(i) => fold(&i.to_le_bytes()),
                Value::F64(f) => fold(&f.to_bits().to_le_bytes()),
            }
            fold(&[0xfe]);
        }
        for value in values {
            fold(&value.to_bits().to_le_bytes());
        }
        hash
    });
    checker::fingerprint_rows(row_hashes)
}

fn parse_body(body: &[u8]) -> Result<Json, Routed> {
    let text = std::str::from_utf8(body).map_err(|_| bad_request("body is not UTF-8"))?;
    if text.trim().is_empty() {
        return Ok(Json::Obj(Default::default()));
    }
    json::parse(text).map_err(|e| bad_request(&format!("bad JSON body: {e}")))
}

fn error_body(message: &str, kind: &str) -> Json {
    obj([("error", Json::str(message)), ("kind", Json::str(kind))])
}

fn json_ok(body: Json) -> Routed {
    (200, "application/json", Vec::new(), body.render())
}

fn bad_request(message: &str) -> Routed {
    (
        400,
        "application/json",
        Vec::new(),
        error_body(message, "bad_request").render(),
    )
}

fn engine_error(message: &str) -> Routed {
    (
        422,
        "application/json",
        Vec::new(),
        error_body(message, "engine").render(),
    )
}

fn saturated() -> Routed {
    (
        429,
        "application/json",
        Vec::new(),
        error_body(
            "server saturated: in-flight and queue limits reached; retry with backoff",
            "saturated",
        )
        .render(),
    )
}

fn sql_error(e: SqlError) -> Routed {
    match e {
        SqlError::Lex(msg) => (
            400,
            "application/json",
            Vec::new(),
            error_body(&format!("lex error: {msg}"), "parse").render(),
        ),
        SqlError::Parse(msg) => (
            400,
            "application/json",
            Vec::new(),
            error_body(&format!("parse error: {msg}"), "parse").render(),
        ),
        SqlError::Unsupported(msg) => (
            400,
            "application/json",
            Vec::new(),
            error_body(&format!("unsupported: {msg}"), "unsupported").render(),
        ),
        SqlError::Engine(msg) => engine_error(&msg),
    }
}

fn session_error(e: SessionError) -> Routed {
    let status = match e {
        SessionError::Unknown(_) => 404,
        SessionError::EpochOutOfRange { .. } => 422,
        SessionError::TooManySessions => 429,
    };
    (
        status,
        "application/json",
        Vec::new(),
        error_body(&e.to_string(), "session").render(),
    )
}
