//! Per-query admission control: a bounded in-flight semaphore with a
//! bounded, time-limited wait queue.
//!
//! The engine's `ShardPool` parallelizes one scan across cores; it
//! has no notion of *how many* scans should run at once. Layering a
//! semaphore above it turns overload into typed backpressure instead
//! of unbounded thread pileup: up to `max_inflight` queries execute,
//! up to `max_queue` more wait at most `queue_timeout`, and everyone
//! else is rejected immediately with a 429-style [`Saturated`]
//! outcome the client can retry against.
//!
//! [`Saturated`]: AdmitError::Saturated

use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use obs::{Counter, Gauge, Histogram};

/// Why a query was not admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmitError {
    /// The in-flight limit and the wait queue are both full, or the
    /// wait timed out. Maps to HTTP 429.
    Saturated,
}

/// Admission state + metrics. One per server.
#[derive(Debug)]
pub struct AdmissionGate {
    max_inflight: usize,
    max_queue: usize,
    queue_timeout: Duration,
    state: Mutex<GateState>,
    freed: Condvar,
    /// Queries admitted (including after a queue wait).
    pub admitted: Counter,
    /// Queries rejected at the door or after a timed-out wait.
    pub rejected: Counter,
    /// High-water mark of the wait queue.
    pub queue_high_water: Gauge,
    /// Nanoseconds spent waiting for admission (admitted queries
    /// only; a zero-wait admit records 0).
    pub queue_wait_nanos: Histogram,
}

#[derive(Debug, Default)]
struct GateState {
    inflight: usize,
    queued: usize,
}

impl AdmissionGate {
    /// A gate admitting `max_inflight` concurrent queries with up to
    /// `max_queue` waiters. `max_inflight == 0` rejects everything —
    /// useful for testing the saturated path deterministically.
    pub fn new(max_inflight: usize, max_queue: usize, queue_timeout: Duration) -> Self {
        AdmissionGate {
            max_inflight,
            max_queue,
            queue_timeout,
            state: Mutex::new(GateState::default()),
            freed: Condvar::new(),
            admitted: Counter::new(),
            rejected: Counter::new(),
            queue_high_water: Gauge::new(),
            queue_wait_nanos: Histogram::new(),
        }
    }

    /// Acquires one in-flight slot, waiting in the bounded queue if
    /// necessary. The returned permit releases the slot on drop.
    pub fn admit(&self) -> Result<Permit<'_>, AdmitError> {
        let started = Instant::now();
        let mut state = self.state.lock().unwrap();
        if state.inflight < self.max_inflight {
            state.inflight += 1;
            self.admitted.inc();
            self.queue_wait_nanos.record(0);
            return Ok(Permit { gate: self });
        }
        if state.queued >= self.max_queue {
            drop(state);
            self.rejected.inc();
            return Err(AdmitError::Saturated);
        }
        state.queued += 1;
        self.queue_high_water.set_max(state.queued as u64);
        let deadline = started + self.queue_timeout;
        loop {
            let now = Instant::now();
            if now >= deadline {
                state.queued -= 1;
                drop(state);
                self.rejected.inc();
                return Err(AdmitError::Saturated);
            }
            let (next, timeout) = self.freed.wait_timeout(state, deadline - now).unwrap();
            state = next;
            if state.inflight < self.max_inflight {
                state.queued -= 1;
                state.inflight += 1;
                self.admitted.inc();
                self.queue_wait_nanos.record_duration(started.elapsed());
                return Ok(Permit { gate: self });
            }
            // Spurious wake or someone else took the slot; loop
            // unless the deadline passed.
            let _ = timeout;
        }
    }

    /// Current in-flight and queued counts (for gauges/tests).
    pub fn depths(&self) -> (usize, usize) {
        let state = self.state.lock().unwrap();
        (state.inflight, state.queued)
    }
}

/// RAII in-flight slot; dropping it wakes one queued waiter.
#[derive(Debug)]
pub struct Permit<'a> {
    gate: &'a AdmissionGate,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut state = self.gate.state.lock().unwrap();
        state.inflight -= 1;
        drop(state);
        self.gate.freed.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn zero_capacity_rejects_everything() {
        let gate = AdmissionGate::new(0, 4, Duration::from_millis(10));
        assert_eq!(gate.admit().unwrap_err(), AdmitError::Saturated);
        assert_eq!(gate.rejected.get(), 1);
        assert_eq!(gate.admitted.get(), 0);
    }

    #[test]
    fn slots_release_on_drop_and_queue_drains() {
        let gate = Arc::new(AdmissionGate::new(1, 8, Duration::from_secs(5)));
        let permit = gate.admit().unwrap();
        assert_eq!(gate.depths(), (1, 0));
        let worker = {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                // Blocks in the queue until the main thread drops.
                let _p = gate.admit().unwrap();
            })
        };
        // Wait for the worker to be queued, then release.
        while gate.depths().1 == 0 {
            std::thread::yield_now();
        }
        drop(permit);
        worker.join().unwrap();
        assert_eq!(gate.depths(), (0, 0));
        assert_eq!(gate.admitted.get(), 2);
        assert_eq!(gate.queue_high_water.get(), 1);
    }

    #[test]
    fn full_queue_rejects_immediately() {
        let gate = Arc::new(AdmissionGate::new(1, 0, Duration::from_secs(5)));
        let _permit = gate.admit().unwrap();
        // No queue slots: the second query bounces without waiting.
        let started = Instant::now();
        assert_eq!(gate.admit().unwrap_err(), AdmitError::Saturated);
        assert!(started.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn queued_waiter_times_out() {
        let gate = AdmissionGate::new(1, 4, Duration::from_millis(20));
        let _permit = gate.admit().unwrap();
        assert_eq!(gate.admit().unwrap_err(), AdmitError::Saturated);
        assert_eq!(gate.rejected.get(), 1);
        let (inflight, queued) = gate.depths();
        assert_eq!((inflight, queued), (1, 0), "timed-out waiter dequeued");
    }
}
