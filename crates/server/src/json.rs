//! A minimal JSON value, parser, and writer.
//!
//! The build has no crates.io access, so the wire format is
//! implemented here: a recursive-descent parser over the subset of
//! JSON the protocol needs (which is all of JSON minus exotic escape
//! handling — `\uXXXX` escapes outside the BMP are rejected rather
//! than paired), and a writer with one engine-specific rule: **every
//! non-finite `f64` serializes as `null`**. JSON has no NaN or
//! infinity literal, and the query layer finalizes empty-group
//! aggregates to NaN (SQL NULL), so `null` is the only faithful
//! rendering.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value. Object keys are ordered (BTreeMap) so rendering is
/// deterministic — handy for tests and for byte-identical dedup'd
/// response bodies.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null` — also the rendering of every non-finite number.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number. Constructing via [`Json::num`] is preferred:
    /// it maps non-finite values to `Null` at the boundary.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with deterministic key order.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// A number cell: finite values become `Num`, NaN and ±infinity
    /// become `Null` (SQL NULL at the result surface).
    pub fn num(v: f64) -> Json {
        if v.is_finite() {
            Json::Num(v)
        } else {
            Json::Null
        }
    }

    /// A string cell.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Object member lookup; `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Inserts (or replaces) an object member; a no-op on
    /// non-objects.
    pub fn set(&mut self, key: &str, value: Json) {
        if let Json::Obj(members) = self {
            members.insert(key.to_owned(), value);
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Renders to compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_number(*v, out),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Builds an object from `(key, value)` pairs.
pub fn obj<const N: usize>(members: [(&str, Json); N]) -> Json {
    Json::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect(),
    )
}

fn write_number(v: f64, out: &mut String) {
    if !v.is_finite() {
        // Belt and braces: `Json::num` already maps these to Null,
        // but a hand-constructed `Json::Num(NaN)` must not emit
        // invalid JSON either.
        out.push_str("null");
    } else if v.fract() == 0.0 && v.abs() < 9.0e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, token: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(token.as_bytes()) {
            self.pos += token.len();
            Ok(())
        } else {
            Err(format!("expected `{token}` at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.eat("null").map(|()| Json::Null),
            Some(b't') => self.eat("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.eat("false").map(|()| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!("unexpected byte {b:#04x} at {}", self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.pos += 1; // '{'
        let mut members = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(format!("expected object key at byte {}", self.pos));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(format!("expected `:` at byte {}", self.pos));
            }
            self.pos += 1;
            self.skip_ws();
            let value = self.value()?;
            members.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err("unterminated string".into());
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".into());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "non-ascii \\u escape".to_owned())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or(format!("surrogate \\u escape {code:#x}"))?,
                            );
                        }
                        other => return Err(format!("bad escape `\\{}`", other as char)),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number `{text}`"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_nan_rule() {
        let v = obj([
            ("a", Json::num(1.5)),
            ("b", Json::num(f64::NAN)),
            ("c", Json::num(f64::INFINITY)),
            ("d", Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("e", Json::str("x\"y\n")),
        ]);
        let text = v.render();
        assert_eq!(
            text,
            r#"{"a":1.5,"b":null,"c":null,"d":[true,null],"e":"x\"y\n"}"#
        );
        let back = parse(&text).unwrap();
        assert_eq!(back.get("b"), Some(&Json::Null));
        assert_eq!(back.get("a").and_then(Json::as_f64), Some(1.5));
    }

    #[test]
    fn parses_numbers_and_rejects_garbage() {
        assert_eq!(parse("-2.5e3").unwrap(), Json::Num(-2500.0));
        assert_eq!(parse(" 42 ").unwrap(), Json::Num(42.0));
        assert!(parse("42 x").is_err());
        assert!(parse("{\"k\": }").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"open").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn integral_numbers_render_without_fraction() {
        assert_eq!(Json::num(3.0).render(), "3");
        assert_eq!(Json::num(-0.25).render(), "-0.25");
        // Huge magnitudes render as a full decimal expansion — valid
        // JSON that parses back to the same double.
        assert_eq!(parse(&Json::Num(1e300).render()).unwrap(), Json::Num(1e300));
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(parse("\"\\u0041\"").unwrap(), Json::Str("A".into()));
        assert!(parse("\"\\ud800\"").is_err(), "lone surrogate rejected");
        assert_eq!(
            parse("\"héllo\"").unwrap(),
            Json::Str("héllo".into()),
            "raw UTF-8 passes through"
        );
    }
}
