//! A minimal blocking HTTP/1.1 client for tests and the load
//! generator. Speaks exactly the server's dialect: JSON bodies,
//! `Content-Length` framing (plus chunked responses for the
//! progressive query stream), keep-alive.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::json::{self, Json};

/// One response as the client sees it.
#[derive(Debug)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response headers, lower-cased names.
    pub headers: Vec<(String, String)>,
    /// Raw body.
    pub body: String,
}

impl ClientResponse {
    /// Parses the body as JSON.
    pub fn json(&self) -> Result<Json, String> {
        json::parse(&self.body)
    }

    /// Parses the body as NDJSON — one JSON document per line, the
    /// shape of a progressive query stream.
    pub fn ndjson(&self) -> Result<Vec<Json>, String> {
        self.body
            .lines()
            .filter(|line| !line.trim().is_empty())
            .map(json::parse)
            .collect()
    }

    /// A header value by (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// A keep-alive connection to the server.
pub struct Client {
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects with a generous I/O timeout.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        stream.set_nodelay(true)?;
        Ok(Client {
            reader: BufReader::new(stream),
        })
    }

    /// Sends one request and reads the response.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&Json>,
    ) -> std::io::Result<ClientResponse> {
        let body_text = body.map(Json::render).unwrap_or_default();
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: cubrick\r\ncontent-length: {}\r\ncontent-type: application/json\r\n\r\n",
            body_text.len()
        );
        let stream = self.reader.get_mut();
        stream.write_all(head.as_bytes())?;
        stream.write_all(body_text.as_bytes())?;
        stream.flush()?;
        self.read_response()
    }

    /// `POST /query` with a SQL statement (and optional session id).
    pub fn query(&mut self, sql: &str, session: Option<u64>) -> std::io::Result<ClientResponse> {
        self.post_query(sql, session, false)
    }

    /// `POST /query` with `"progressive": true`. A 200 response is
    /// the whole chunked NDJSON stream (parse with
    /// [`ClientResponse::ndjson`]); a pre-stream rejection comes back
    /// as the ordinary one-shot status.
    pub fn query_progressive(
        &mut self,
        sql: &str,
        session: Option<u64>,
    ) -> std::io::Result<ClientResponse> {
        self.post_query(sql, session, true)
    }

    fn post_query(
        &mut self,
        sql: &str,
        session: Option<u64>,
        progressive: bool,
    ) -> std::io::Result<ClientResponse> {
        let mut members = vec![("sql", Json::str(sql))];
        if let Some(id) = session {
            members.push(("session", Json::num(id as f64)));
        }
        if progressive {
            members.push(("progressive", Json::Bool(true)));
        }
        let body = Json::Obj(
            members
                .into_iter()
                .map(|(k, v)| (k.to_owned(), v))
                .collect(),
        );
        self.request("POST", "/query", Some(&body))
    }

    fn read_response(&mut self) -> std::io::Result<ClientResponse> {
        let mut line = String::new();
        self.reader.read_line(&mut line)?;
        let status: u16 = line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("bad status line {line:?}"),
                )
            })?;
        let mut headers = Vec::new();
        let mut content_length = 0usize;
        let mut chunked = false;
        loop {
            let mut header = String::new();
            self.reader.read_line(&mut header)?;
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                let name = name.to_ascii_lowercase();
                let value = value.trim().to_owned();
                if name == "content-length" {
                    content_length = value.parse().unwrap_or(0);
                } else if name == "transfer-encoding" {
                    chunked = value.eq_ignore_ascii_case("chunked");
                }
                headers.push((name, value));
            }
        }
        let body = if chunked {
            self.read_chunked_body()?
        } else {
            let mut body = vec![0u8; content_length];
            self.reader.read_exact(&mut body)?;
            body
        };
        Ok(ClientResponse {
            status,
            headers,
            body: String::from_utf8_lossy(&body).into_owned(),
        })
    }

    /// Drains a chunked message: hex-size line, payload, CRLF,
    /// repeated until the zero-length terminator chunk.
    fn read_chunked_body(&mut self) -> std::io::Result<Vec<u8>> {
        let mut out = Vec::new();
        loop {
            let mut size_line = String::new();
            self.reader.read_line(&mut size_line)?;
            let size = usize::from_str_radix(size_line.trim(), 16).map_err(|_| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("bad chunk size {size_line:?}"),
                )
            })?;
            if size == 0 {
                // Trailing CRLF after the terminator chunk.
                let mut crlf = String::new();
                self.reader.read_line(&mut crlf)?;
                return Ok(out);
            }
            let start = out.len();
            out.resize(start + size, 0);
            self.reader.read_exact(&mut out[start..])?;
            let mut crlf = [0u8; 2];
            self.reader.read_exact(&mut crlf)?;
        }
    }
}
