//! Wire-level integration suite: every request/response below goes
//! through a real TCP connection against a live server — the JSON
//! renderings, status codes, session semantics, backpressure, and
//! dedup behavior a network client actually observes.

use std::sync::Arc;
use std::time::Duration;

use checker::SiChecker;
use cubrick::Engine;
use server::client::Client;
use server::json::{obj, Json};
use server::{Server, ServerConfig, ServerHandle};

const NODE: u64 = 1;

fn start(config: ServerConfig) -> (Arc<Engine>, ServerHandle) {
    let engine = Arc::new(Engine::new(2));
    let handle = Server::start(Arc::clone(&engine), config).expect("start server");
    (engine, handle)
}

fn start_seeded(config: ServerConfig) -> (Arc<Engine>, ServerHandle) {
    let (engine, handle) = start(config);
    let mut client = Client::connect(handle.addr()).unwrap();
    let created = client
        .query(
            "CREATE CUBE t (region STRING DIM(4, 2), day INT DIM(8, 4), \
             likes INT METRIC, score FLOAT METRIC)",
            None,
        )
        .unwrap();
    assert_eq!(created.status, 200, "{}", created.body);
    let inserted = client
        .query(
            "INSERT INTO t VALUES ('us', 0, 10, 1.5), ('us', 1, 20, 2.5), ('br', 2, 30, 3.5)",
            None,
        )
        .unwrap();
    assert_eq!(inserted.status, 200, "{}", inserted.body);
    (engine, handle)
}

#[test]
fn select_round_trips_typed_json() {
    let (_engine, handle) = start_seeded(ServerConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();
    let response = client
        .query(
            "SELECT SUM(likes), AVG(score) FROM t GROUP BY region ORDER BY region",
            None,
        )
        .unwrap();
    assert_eq!(response.status, 200, "{}", response.body);
    let json = response.json().unwrap();
    let columns: Vec<&str> = json
        .get("columns")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .filter_map(Json::as_str)
        .collect();
    assert_eq!(columns, vec!["region", "sum(likes)", "avg(score)"]);
    let rows = json.get("rows").and_then(Json::as_arr).unwrap();
    assert_eq!(rows.len(), 2);
    // Rows are typed: string key cell, numeric aggregates.
    let br = rows[0].as_arr().unwrap();
    assert_eq!(br[0], Json::Str("br".into()));
    assert_eq!(br[1], Json::Num(30.0));
    assert_eq!(br[2], Json::Num(3.5));
    assert_eq!(json.get("row_count"), Some(&Json::Num(2.0)));
    assert!(json.get("epoch").and_then(Json::as_f64).unwrap() >= 1.0);
    assert!(json
        .get("stats")
        .and_then(|s| s.get("rows_visible"))
        .is_some());
}

#[test]
fn empty_group_min_max_render_as_null() {
    let (_engine, handle) = start_seeded(ServerConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();
    // Ungrouped aggregation over an empty match set: COUNT 0, every
    // other aggregate NULL — the ±inf identities must never appear.
    let response = client
        .query(
            "SELECT MIN(likes), MAX(likes), AVG(score), COUNT(*) FROM t \
             WHERE region IN ('atlantis')",
            None,
        )
        .unwrap();
    assert_eq!(response.status, 200, "{}", response.body);
    let json = response.json().unwrap();
    let row = json.get("rows").and_then(Json::as_arr).unwrap()[0]
        .as_arr()
        .unwrap();
    assert_eq!(
        row,
        &[Json::Null, Json::Null, Json::Null, Json::Num(0.0)],
        "empty Min/Max/Avg are JSON null, Count is 0: {}",
        response.body
    );
    // The raw body must never smuggle an inf/nan token past the
    // parser.
    assert!(!response.body.to_lowercase().contains("inf"));
    assert!(!response.body.to_lowercase().contains("nan"));
}

#[test]
fn empty_grouped_result_is_an_empty_rows_array() {
    let (_engine, handle) = start_seeded(ServerConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();
    let response = client
        .query(
            "SELECT SUM(likes) FROM t WHERE region IN ('atlantis') GROUP BY day",
            None,
        )
        .unwrap();
    let json = response.json().unwrap();
    assert_eq!(json.get("rows"), Some(&Json::Arr(Vec::new())));
    assert_eq!(json.get("row_count"), Some(&Json::Num(0.0)));
}

#[test]
fn progressive_select_streams_refinements_then_the_complete_result() {
    let (_engine, handle) = start_seeded(ServerConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();
    // Spread rows across day buckets (DIM(8, 4) partitions days by 4)
    // so the scan produces more than one brick partial.
    let inserted = client
        .query(
            "INSERT INTO t VALUES ('us', 4, 40, 4.5), ('br', 5, 50, 5.5), ('mx', 7, 70, 7.5)",
            None,
        )
        .unwrap();
    assert_eq!(inserted.status, 200, "{}", inserted.body);
    let sql = "SELECT SUM(likes), COUNT(*) FROM t GROUP BY region ORDER BY region";
    let buffered = client.query(sql, None).unwrap();
    assert_eq!(buffered.status, 200, "{}", buffered.body);
    let complete = buffered.json().unwrap();

    let streamed = client.query_progressive(sql, None).unwrap();
    assert_eq!(streamed.status, 200, "{}", streamed.body);
    assert_eq!(streamed.header("transfer-encoding"), Some("chunked"));
    let lines = streamed.ndjson().unwrap();
    assert!(!lines.is_empty(), "stream carried no lines");
    // Every line but the last is a refinement; the last is complete.
    for (i, line) in lines.iter().enumerate() {
        let expected = i + 1 < lines.len();
        assert_eq!(
            line.get("partial"),
            Some(&Json::Bool(expected)),
            "line {i} of {}: {}",
            lines.len(),
            streamed.body
        );
    }
    // Refinements grow monotonically in scan coverage.
    let covered: Vec<f64> = lines
        .iter()
        .map(|l| {
            l.get("stats")
                .and_then(|s| s.get("bricks_scanned"))
                .and_then(Json::as_f64)
                .unwrap()
        })
        .collect();
    assert!(
        covered.windows(2).all(|w| w[0] <= w[1]),
        "bricks_scanned regressed across refinements: {covered:?}"
    );
    assert!(
        *covered.last().unwrap() >= 2.0,
        "final line must cover multiple bricks: {covered:?}"
    );
    // The final line matches the buffered answer cell for cell.
    let last = lines.last().unwrap();
    assert_eq!(last.get("rows"), complete.get("rows"), "{}", streamed.body);
    assert_eq!(last.get("columns"), complete.get("columns"));
    assert_eq!(last.get("row_count"), complete.get("row_count"));
    // Keep-alive framing survived the chunked response: the same
    // connection serves another request.
    let again = client.query("SELECT COUNT(*) FROM t", None).unwrap();
    assert_eq!(again.status, 200, "{}", again.body);
    // The stream is visible in the metrics report.
    let report = handle.state().metrics_report();
    let progressive = report
        .lines()
        .find(|l| l.starts_with("query.progressive = "))
        .unwrap();
    assert!(progressive.ends_with("= 1"), "{progressive}");
}

#[test]
fn progressive_rejections_are_ordinary_statuses() {
    let (_engine, handle) = start_seeded(ServerConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();
    // Non-SELECT statements cannot stream.
    let response = client
        .query_progressive("INSERT INTO t VALUES ('us', 0, 1, 1.0)", None)
        .unwrap();
    assert_eq!(response.status, 400, "{}", response.body);
    assert!(response.body.contains("requires a SELECT"));
    // Parse errors, bad epochs, and unknown sessions keep their
    // one-shot status codes.
    let response = client.query_progressive("SELEKT 1", None).unwrap();
    assert_eq!(response.status, 400, "{}", response.body);
    let response = client
        .query_progressive("SELECT COUNT(*) FROM t AS OF 99", None)
        .unwrap();
    assert_eq!(response.status, 422, "{}", response.body);
    let response = client
        .query_progressive("SELECT COUNT(*) FROM t", Some(777))
        .unwrap();
    assert_eq!(response.status, 404, "{}", response.body);
    // None of the rejections were chunked.
    assert!(response.header("transfer-encoding").is_none());
    // The connection is still framed for ordinary traffic.
    let ok = client.query("SELECT COUNT(*) FROM t", None).unwrap();
    assert_eq!(ok.status, 200, "{}", ok.body);
}

#[test]
fn progressive_select_respects_admission_control() {
    let engine = Arc::new(Engine::new(2));
    cubrick::sql::execute(
        &engine,
        "CREATE CUBE t (region STRING DIM(4, 2), likes INT METRIC)",
    )
    .unwrap();
    cubrick::sql::execute(&engine, "INSERT INTO t VALUES ('us', 10)").unwrap();
    let handle = Server::start(
        Arc::clone(&engine),
        ServerConfig {
            max_inflight: 0,
            max_queue: 0,
            queue_timeout: Duration::from_millis(50),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let response = client
        .query_progressive("SELECT COUNT(*) FROM t", None)
        .unwrap();
    assert_eq!(response.status, 429, "{}", response.body);
    assert_eq!(
        response.json().unwrap().get("kind"),
        Some(&Json::Str("saturated".into()))
    );
}

#[test]
fn session_pins_a_snapshot_across_requests() {
    let (_engine, handle) = start_seeded(ServerConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();
    let session = {
        let response = client.request("POST", "/session", None).unwrap();
        response
            .json()
            .unwrap()
            .get("session")
            .and_then(Json::as_f64)
            .unwrap() as u64
    };
    // Pin at the current snapshot (3 rows), then insert more.
    let pin = client
        .request(
            "POST",
            "/session/pin",
            Some(&obj([("session", Json::num(session as f64))])),
        )
        .unwrap();
    assert_eq!(pin.status, 200, "{}", pin.body);
    let pinned_epoch = pin
        .json()
        .unwrap()
        .get("epoch")
        .and_then(Json::as_f64)
        .unwrap();
    client
        .query("INSERT INTO t VALUES ('mx', 3, 100, 9.9)", None)
        .unwrap();
    // The pinned session still counts 3; a fresh read counts 4.
    let counts = |client: &mut Client, session: Option<u64>| -> f64 {
        let response = client.query("SELECT COUNT(*) FROM t", session).unwrap();
        assert_eq!(response.status, 200, "{}", response.body);
        response
            .json()
            .unwrap()
            .get("rows")
            .and_then(Json::as_arr)
            .unwrap()[0]
            .as_arr()
            .unwrap()[0]
            .as_f64()
            .unwrap()
    };
    assert_eq!(counts(&mut client, Some(session)), 3.0);
    assert_eq!(counts(&mut client, None), 4.0);
    // An explicit AS OF on the statement overrides the session pin.
    let fresh = client
        .query(
            &format!("SELECT COUNT(*) FROM t AS OF {}", pinned_epoch as u64 + 1),
            Some(session),
        )
        .unwrap();
    let rows = fresh.json().unwrap();
    let v = rows.get("rows").and_then(Json::as_arr).unwrap()[0]
        .as_arr()
        .unwrap()[0]
        .as_f64()
        .unwrap();
    assert_eq!(v, 4.0, "statement AS OF wins over the session pin");
    // Closing the session releases it; further use 404s.
    let closed = client
        .request(
            "POST",
            "/session/close",
            Some(&obj([("session", Json::num(session as f64))])),
        )
        .unwrap();
    assert_eq!(closed.status, 200);
    let gone = client
        .query("SELECT COUNT(*) FROM t", Some(session))
        .unwrap();
    assert_eq!(gone.status, 404, "{}", gone.body);
}

#[test]
fn unknown_session_is_a_404() {
    let (_engine, handle) = start_seeded(ServerConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();
    let response = client.query("SELECT COUNT(*) FROM t", Some(777)).unwrap();
    assert_eq!(response.status, 404, "{}", response.body);
    assert_eq!(
        response.json().unwrap().get("kind"),
        Some(&Json::Str("session".into()))
    );
}

#[test]
fn saturated_pool_returns_typed_429() {
    // max_inflight = 0: the gate rejects every query deterministically.
    // Seed the engine directly — the server's own gate would 429 the
    // setup statements too.
    let engine = Arc::new(Engine::new(2));
    cubrick::sql::execute(
        &engine,
        "CREATE CUBE t (region STRING DIM(4, 2), likes INT METRIC)",
    )
    .unwrap();
    cubrick::sql::execute(&engine, "INSERT INTO t VALUES ('us', 10)").unwrap();
    let handle = Server::start(
        Arc::clone(&engine),
        ServerConfig {
            max_inflight: 0,
            max_queue: 0,
            queue_timeout: Duration::from_millis(50),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let response = client.query("SELECT COUNT(*) FROM t", None).unwrap();
    assert_eq!(response.status, 429, "{}", response.body);
    assert_eq!(
        response.json().unwrap().get("kind"),
        Some(&Json::Str("saturated".into()))
    );
    // The rejection is visible in the metrics report.
    let report = handle.state().metrics_report();
    assert!(report.contains("[server.admission]"), "{report}");
    let rejected = report
        .lines()
        .find(|l| l.starts_with("rejected = "))
        .unwrap();
    assert!(rejected.ends_with("= 1"), "one rejected select: {rejected}");
}

#[test]
fn protocol_errors_have_typed_statuses() {
    let (_engine, handle) = start_seeded(ServerConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();
    // Bad SQL → 400 parse.
    let response = client.query("SELEKT 1", None).unwrap();
    assert_eq!(response.status, 400);
    // Unsupported SQL → 400 unsupported.
    let response = client.query("UPDATE t SET likes = 1", None).unwrap();
    assert_eq!(response.status, 400);
    assert_eq!(
        response.json().unwrap().get("kind"),
        Some(&Json::Str("unsupported".into()))
    );
    // Engine errors → 422.
    let response = client.query("SELECT COUNT(*) FROM missing", None).unwrap();
    assert_eq!(response.status, 422);
    // AS OF outside the window → 422.
    let response = client
        .query("SELECT COUNT(*) FROM t AS OF 99", None)
        .unwrap();
    assert_eq!(response.status, 422, "{}", response.body);
    // Bad JSON body → 400.
    let response = client
        .request("POST", "/query", Some(&Json::Str("not an object".into())))
        .unwrap();
    assert_eq!(response.status, 400);
    // Unknown route → 404; bad method → 405.
    let response = client.request("POST", "/nope", None).unwrap();
    assert_eq!(response.status, 404);
    let response = client.request("PUT", "/query", None).unwrap();
    assert_eq!(response.status, 405);
}

#[test]
fn health_and_metrics_endpoints() {
    let (_engine, handle) = start_seeded(ServerConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();
    let health = client.request("GET", "/health", None).unwrap();
    assert_eq!(health.status, 200);
    let json = health.json().unwrap();
    assert_eq!(json.get("status"), Some(&Json::Str("ok".into())));
    assert!(json.get("lce").and_then(Json::as_f64).unwrap() >= 1.0);
    client.query("SELECT COUNT(*) FROM t", None).unwrap();
    let metrics = client.request("GET", "/metrics", None).unwrap();
    assert_eq!(metrics.status, 200);
    for section in [
        "[server]",
        "[server.admission]",
        "[server.dedup]",
        "[server.sessions]",
        "[aosi]",
        "[engine]",
        "[shards]",
    ] {
        assert!(metrics.body.contains(section), "missing {section}");
    }
    assert!(metrics.body.contains("query.qps = "));
}

#[test]
fn identical_inflight_reads_are_deduplicated() {
    let (_engine, handle) = start_seeded(ServerConfig::default());
    let addr = handle.addr();
    let lce = {
        let mut client = Client::connect(addr).unwrap();
        let health = client.request("GET", "/health", None).unwrap();
        health
            .json()
            .unwrap()
            .get("lce")
            .and_then(Json::as_f64)
            .unwrap() as u64
    };
    // Many threads fire the same statement at the same frozen epoch
    // (AS OF pins the dedup key); at least one should share.
    let mut joins = Vec::new();
    for _ in 0..8 {
        joins.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            let mut shared = 0u64;
            for _ in 0..20 {
                let response = client
                    .query(
                        &format!("SELECT SUM(likes) FROM t GROUP BY region AS OF {lce}"),
                        None,
                    )
                    .unwrap();
                assert_eq!(response.status, 200, "{}", response.body);
                if response.header("x-cubrick-dedup").is_some() {
                    shared += 1;
                }
            }
            shared
        }));
    }
    let shared: u64 = joins.into_iter().map(|j| j.join().unwrap()).sum();
    assert!(handle.state().metrics_report().contains("[server.dedup]"));
    // 160 identical requests: the dedup layer must have shared some
    // and every response was correct regardless (status asserted
    // above).
    assert!(shared > 0, "no request ever shared a leader's execution");
}

#[test]
fn concurrent_clients_with_checker_stay_si_clean() {
    let engine = Arc::new(Engine::new(2));
    let checker = Arc::new(SiChecker::new(NODE));
    let handle = Server::start_with_checker(
        Arc::clone(&engine),
        ServerConfig::default(),
        Some((Arc::clone(&checker), NODE)),
    )
    .unwrap();
    let addr = handle.addr();
    let mut seed = Client::connect(addr).unwrap();
    assert_eq!(
        seed.query("CREATE CUBE c (k INT DIM(8, 2), v INT METRIC)", None)
            .unwrap()
            .status,
        200
    );
    let mut joins = Vec::new();
    for client_id in 0..6 {
        joins.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            let mut inserted = 0u64;
            for op in 0..25 {
                if op % 5 == 0 {
                    let response = client
                        .query(
                            &format!("INSERT INTO c VALUES ({}, {op})", (client_id + op) % 8),
                            None,
                        )
                        .unwrap();
                    assert_eq!(response.status, 200, "{}", response.body);
                    inserted += 1;
                } else {
                    let response = client.query("SELECT COUNT(*) FROM c", None).unwrap();
                    assert_eq!(response.status, 200, "{}", response.body);
                }
            }
            inserted
        }));
    }
    let total_inserted: u64 = joins.into_iter().map(|j| j.join().unwrap()).sum();
    // Quiescent clock sample, then the SI verdict.
    let clock = engine.manager().clock();
    checker.record(checker::TxnEvent::ClockSample {
        node: NODE,
        ec: clock.current_ec(),
        lce: clock.lce(),
        lse: clock.lse(),
    });
    let violations = checker.violations();
    assert!(
        violations.is_empty(),
        "{} SI violation(s), first: {}",
        violations.len(),
        violations[0]
    );
    // Count conservation: every committed insert is visible.
    let mut client = Client::connect(addr).unwrap();
    let response = client.query("SELECT COUNT(*) FROM c", None).unwrap();
    let count = response
        .json()
        .unwrap()
        .get("rows")
        .and_then(Json::as_arr)
        .unwrap()[0]
        .as_arr()
        .unwrap()[0]
        .as_f64()
        .unwrap();
    assert_eq!(count, total_inserted as f64, "row count drifted");
    handle.shutdown();
}
