//! Workloads and measurement helpers for the evaluation harness.
//!
//! The paper's experiments use two dataset shapes (Section VI): a
//! **single-column** dataset — "the worst case scenario when
//! evaluating memory overhead of concurrency protocols, since most
//! metadata is stored per record" — and a **typical 40-column**
//! dataset. [`SingleColumnDataset`] and [`WideDataset`] generate
//! both, deterministically from a seed. [`clients`] drives concurrent
//! batch loaders against an engine the way the paper's Hive ingestion
//! jobs do (4 clients x 5000-row batches, one implicit transaction
//! per request); [`stats`] and [`timeline`] provide the percentile
//! and time-series plumbing the figure binaries print.

pub mod clients;
pub mod datasets;
pub mod ops;
pub mod queries;
pub mod stats;
pub mod timeline;
pub mod zipf;

pub use clients::{run_load_clients, LoadClientReport};
pub use datasets::{Dataset, SingleColumnDataset, SkewedDataset, WideDataset};
pub use ops::{GenConfig, LogicalOp, Schedule};
pub use queries::QueryMix;
pub use stats::{human_bytes, human_rate, LatencyRecorder, Percentiles};
pub use timeline::{Timeline, TimelinePoint};
pub use zipf::Zipf;
