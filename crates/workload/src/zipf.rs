//! A small Zipf-distributed sampler for skewed workloads.
//!
//! Production OLAP ingest is rarely uniform: a few hot partitions
//! (today's date, the biggest country) take most of the writes. This
//! sampler draws from a Zipf(s) distribution over `0..n` via inverse
//! transform on a precomputed CDF — O(n) setup, O(log n) per sample,
//! no external crates.

use rand::rngs::StdRng;
use rand::Rng;

/// Zipf distribution over `0..n` with exponent `s`.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is not finite and non-negative.
    pub fn new(n: u32, s: f64) -> Self {
        assert!(n > 0, "zipf needs a non-empty domain");
        assert!(s.is_finite() && s >= 0.0, "invalid exponent {s}");
        let mut cdf = Vec::with_capacity(n as usize);
        let mut total = 0.0;
        for rank in 1..=n {
            total += 1.0 / (rank as f64).powf(s);
            cdf.push(total);
        }
        for value in &mut cdf {
            *value /= total;
        }
        // Guard against floating-point shortfall at the tail.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Zipf { cdf }
    }

    /// Domain size.
    pub fn n(&self) -> u32 {
        self.cdf.len() as u32
    }

    /// Draws one value in `0..n`; `0` is the hottest.
    pub fn sample(&self, rng: &mut StdRng) -> u32 {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn histogram(zipf: &Zipf, samples: usize) -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; zipf.n() as usize];
        for _ in 0..samples {
            counts[zipf.sample(&mut rng) as usize] += 1;
        }
        counts
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let zipf = Zipf::new(8, 0.0);
        let counts = histogram(&zipf, 80_000);
        for &c in &counts {
            assert!(
                (8_000..12_000).contains(&c),
                "uniform-ish expected: {counts:?}"
            );
        }
    }

    #[test]
    fn high_exponent_concentrates_on_the_head() {
        let zipf = Zipf::new(100, 1.2);
        let counts = histogram(&zipf, 100_000);
        assert!(counts[0] > counts[10] && counts[10] > counts[99]);
        let head: usize = counts[..10].iter().sum();
        assert!(
            head > 60_000,
            "top-10 of 100 should take most samples: {head}"
        );
    }

    #[test]
    fn samples_stay_in_domain() {
        let zipf = Zipf::new(3, 2.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(zipf.sample(&mut rng) < 3);
        }
    }

    #[test]
    fn single_element_domain() {
        let zipf = Zipf::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(zipf.sample(&mut rng), 0);
    }
}
