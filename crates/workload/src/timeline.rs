//! Time-series sampling of engine memory state.
//!
//! Figures 6 and 7 plot, over the lifetime of a load job: records
//! ingested, dataset size, AOSI overhead (epochs vectors), and the
//! analytic MVCC baseline (16 bytes x records). A [`Timeline`]
//! captures those snapshots and renders the same series.

use std::time::{Duration, Instant};

use cubrick::EngineMemory;

use crate::stats::human_bytes;

/// One sampled point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimelinePoint {
    /// Time since the timeline started.
    pub elapsed: Duration,
    /// Rows stored.
    pub rows: u64,
    /// Payload bytes.
    pub data_bytes: u64,
    /// AOSI epochs-vector bytes.
    pub aosi_bytes: u64,
    /// The MVCC baseline: 16 bytes per record.
    pub baseline_bytes: u64,
}

impl TimelinePoint {
    /// AOSI overhead as a percentage of the dataset size.
    pub fn aosi_pct(&self) -> f64 {
        if self.data_bytes == 0 {
            0.0
        } else {
            self.aosi_bytes as f64 / self.data_bytes as f64 * 100.0
        }
    }

    /// Baseline overhead as a percentage of the dataset size.
    pub fn baseline_pct(&self) -> f64 {
        if self.data_bytes == 0 {
            0.0
        } else {
            self.baseline_bytes as f64 / self.data_bytes as f64 * 100.0
        }
    }
}

/// A sequence of engine-memory snapshots.
#[derive(Debug)]
pub struct Timeline {
    started: Instant,
    points: Vec<TimelinePoint>,
}

impl Default for Timeline {
    fn default() -> Self {
        Self::new()
    }
}

impl Timeline {
    /// Starts a timeline now.
    pub fn new() -> Self {
        Timeline {
            started: Instant::now(),
            points: Vec::new(),
        }
    }

    /// Samples an [`EngineMemory`] snapshot.
    pub fn sample(&mut self, memory: &EngineMemory) -> TimelinePoint {
        let point = TimelinePoint {
            elapsed: self.started.elapsed(),
            rows: memory.rows,
            data_bytes: memory.data_bytes as u64,
            aosi_bytes: memory.aosi_bytes as u64,
            baseline_bytes: memory.mvcc_baseline_bytes,
        };
        self.points.push(point);
        point
    }

    /// All points so far.
    pub fn points(&self) -> &[TimelinePoint] {
        &self.points
    }

    /// Renders the series as the figure binaries print it.
    pub fn render_table(&self) -> String {
        let mut out = String::from(
            "elapsed_s  rows          dataset      aosi_overhead  (pct)    mvcc_baseline  (pct)\n",
        );
        for p in &self.points {
            out.push_str(&format!(
                "{:<10.1}{:<14}{:<13}{:<15}{:<9.3}{:<15}{:.1}\n",
                p.elapsed.as_secs_f64(),
                p.rows,
                human_bytes(p.data_bytes),
                human_bytes(p.aosi_bytes),
                p.aosi_pct(),
                human_bytes(p.baseline_bytes),
                p.baseline_pct(),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn memory(rows: u64, data: usize, aosi: usize) -> EngineMemory {
        EngineMemory {
            data_bytes: data,
            aosi_bytes: aosi,
            dictionary_bytes: 0,
            rows,
            bricks: 1,
            mvcc_baseline_bytes: rows * 16,
        }
    }

    #[test]
    fn sample_captures_memory_state() {
        let mut tl = Timeline::new();
        let p = tl.sample(&memory(1000, 8000, 32));
        assert_eq!(p.rows, 1000);
        assert_eq!(p.baseline_bytes, 16_000);
        assert_eq!(tl.points().len(), 1);
    }

    #[test]
    fn percentages_are_relative_to_dataset() {
        let p = TimelinePoint {
            elapsed: Duration::ZERO,
            rows: 100,
            data_bytes: 1000,
            aosi_bytes: 50,
            baseline_bytes: 1600,
        };
        assert_eq!(p.aosi_pct(), 5.0);
        assert_eq!(p.baseline_pct(), 160.0);
    }

    #[test]
    fn empty_dataset_has_zero_pct() {
        let p = TimelinePoint {
            elapsed: Duration::ZERO,
            rows: 0,
            data_bytes: 0,
            aosi_bytes: 0,
            baseline_bytes: 0,
        };
        assert_eq!(p.aosi_pct(), 0.0);
    }

    #[test]
    fn render_table_has_one_line_per_point() {
        let mut tl = Timeline::new();
        tl.sample(&memory(10, 100, 16));
        tl.sample(&memory(20, 200, 16));
        let table = tl.render_table();
        assert_eq!(table.lines().count(), 3, "header + 2 points");
        assert!(table.contains("aosi_overhead"));
    }
}
