//! Query mixes for the latency experiments.
//!
//! Section VI-B runs "a single thread of execution running the same
//! query successively, alternating between SI and RU": (a) full-scan
//! aggregations over the entire dataset and (b) queries with
//! dimension filters. [`QueryMix`] builds both shapes against the
//! standard datasets.

use columnar::Value;
use cubrick::{AggFn, Aggregation, DimFilter, Query};

/// Builders for the benchmark query shapes.
#[derive(Clone, Copy, Debug)]
pub struct QueryMix;

impl QueryMix {
    /// A full-scan `count(*)`-style aggregation for the
    /// single-column dataset (it has no metrics, so count the
    /// dimension rows via group-less count).
    pub fn single_column_full_scan() -> Query {
        Query::default()
    }

    /// Full-scan aggregation over the wide dataset: sum a few metrics
    /// over every visible row.
    pub fn wide_full_scan() -> Query {
        Query::aggregate(vec![
            Aggregation::new(AggFn::Sum, "m0"),
            Aggregation::new(AggFn::Sum, "m1"),
            Aggregation::new(AggFn::Avg, "f0"),
        ])
    }

    /// Filtered aggregation (Figure 9's shape): restrict two
    /// dimensions, then aggregate.
    pub fn wide_filtered(regions: &[&str], days: std::ops::Range<i64>) -> Query {
        Query::aggregate(vec![
            Aggregation::new(AggFn::Sum, "m0"),
            Aggregation::new(AggFn::Count, "m0"),
        ])
        .filter(DimFilter::new(
            "region",
            regions.iter().map(|&r| Value::from(r)).collect(),
        ))
        .filter(DimFilter::new("day", days.map(Value::from).collect()))
    }

    /// Grouped roll-up (used by the examples): per-region sums.
    pub fn wide_grouped() -> Query {
        Query::aggregate(vec![
            Aggregation::new(AggFn::Sum, "m0"),
            Aggregation::new(AggFn::Count, "m0"),
        ])
        .grouped_by("region")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{Dataset, WideDataset};
    use cubrick::{Engine, IsolationMode};

    #[test]
    fn query_shapes_run_against_the_wide_dataset() {
        let dataset = WideDataset::default();
        let engine = Engine::new(2);
        engine.create_cube(dataset.schema()).unwrap();
        engine.load("wide", &dataset.batch(5, 0, 500), 0).unwrap();

        let full = engine
            .query("wide", &QueryMix::wide_full_scan(), IsolationMode::Snapshot)
            .unwrap();
        assert_eq!(full.stats.rows_visible, 500);

        let filtered = engine
            .query(
                "wide",
                &QueryMix::wide_filtered(&["us", "br"], 0..8),
                IsolationMode::Snapshot,
            )
            .unwrap();
        assert!(filtered.stats.rows_visible < 500);
        assert!(filtered.stats.bricks_pruned > 0, "range pruning kicks in");

        let grouped = engine
            .query("wide", &QueryMix::wide_grouped(), IsolationMode::Snapshot)
            .unwrap();
        assert!(!grouped.rows.is_empty());
        let count_sum: f64 = grouped.rows.iter().map(|(_, v)| v[1]).sum();
        assert_eq!(count_sum, 500.0);
    }

    #[test]
    fn single_column_full_scan_counts_rows() {
        use crate::datasets::SingleColumnDataset;
        let dataset = SingleColumnDataset::default();
        let engine = Engine::new(2);
        engine.create_cube(dataset.schema()).unwrap();
        engine
            .load("single_column", &dataset.batch(5, 0, 200), 0)
            .unwrap();
        let result = engine
            .query(
                "single_column",
                &QueryMix::single_column_full_scan(),
                IsolationMode::Snapshot,
            )
            .unwrap();
        assert_eq!(result.stats.rows_visible, 200);
    }
}
