//! Latency/throughput measurement helpers shared by the figure
//! binaries.

use std::time::Duration;

/// Collects latency samples and reports percentiles.
#[derive(Clone, Debug, Default)]
pub struct LatencyRecorder {
    samples: Vec<Duration>,
}

/// Summary of a latency distribution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Percentiles {
    /// Median.
    pub p50: Duration,
    /// 90th percentile.
    pub p90: Duration,
    /// 99th percentile.
    pub p99: Duration,
    /// Maximum observed.
    pub max: Duration,
    /// Arithmetic mean.
    pub mean: Duration,
    /// Sample count.
    pub count: usize,
}

impl LatencyRecorder {
    /// Empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample.
    pub fn record(&mut self, sample: Duration) {
        self.samples.push(sample);
    }

    /// Merges another recorder's samples.
    pub fn merge(&mut self, other: LatencyRecorder) {
        self.samples.extend(other.samples);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The value at quantile `q` in `[0, 1]` (nearest-rank).
    pub fn quantile(&self, q: f64) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// Full percentile summary.
    pub fn percentiles(&self) -> Percentiles {
        if self.samples.is_empty() {
            return Percentiles {
                p50: Duration::ZERO,
                p90: Duration::ZERO,
                p99: Duration::ZERO,
                max: Duration::ZERO,
                mean: Duration::ZERO,
                count: 0,
            };
        }
        let total: Duration = self.samples.iter().sum();
        Percentiles {
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            max: *self.samples.iter().max().expect("non-empty"),
            mean: total / self.samples.len() as u32,
            count: self.samples.len(),
        }
    }
}

/// Formats a byte count with a binary-unit suffix.
pub fn human_bytes(bytes: u64) -> String {
    const UNITS: [&str; 6] = ["B", "KiB", "MiB", "GiB", "TiB", "PiB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit < UNITS.len() - 1 {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{value:.2} {}", UNITS[unit])
    }
}

/// Formats a rate (per second) with an SI suffix.
pub fn human_rate(per_second: f64) -> String {
    const UNITS: [&str; 4] = ["", "K", "M", "G"];
    let mut value = per_second;
    let mut unit = 0;
    while value >= 1000.0 && unit < UNITS.len() - 1 {
        value /= 1000.0;
        unit += 1;
    }
    format!("{value:.2}{}", UNITS[unit])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_of_known_distribution() {
        let mut rec = LatencyRecorder::new();
        for ms in 1..=100 {
            rec.record(Duration::from_millis(ms));
        }
        let p = rec.percentiles();
        assert_eq!(p.p50, Duration::from_millis(50));
        assert_eq!(p.p90, Duration::from_millis(90));
        assert_eq!(p.p99, Duration::from_millis(99));
        assert_eq!(p.max, Duration::from_millis(100));
        assert_eq!(p.count, 100);
        assert_eq!(p.mean, Duration::from_micros(50_500));
    }

    #[test]
    fn empty_recorder_reports_zeroes() {
        let rec = LatencyRecorder::new();
        assert!(rec.is_empty());
        let p = rec.percentiles();
        assert_eq!(p.count, 0);
        assert_eq!(p.p99, Duration::ZERO);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let mut rec = LatencyRecorder::new();
        rec.record(Duration::from_millis(7));
        let p = rec.percentiles();
        assert_eq!(p.p50, Duration::from_millis(7));
        assert_eq!(p.p99, Duration::from_millis(7));
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = LatencyRecorder::new();
        a.record(Duration::from_millis(1));
        let mut b = LatencyRecorder::new();
        b.record(Duration::from_millis(3));
        a.merge(b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.percentiles().max, Duration::from_millis(3));
    }

    #[test]
    fn human_bytes_scales() {
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(2048), "2.00 KiB");
        assert_eq!(human_bytes(3 * 1024 * 1024), "3.00 MiB");
        assert_eq!(human_bytes(5 * 1024 * 1024 * 1024), "5.00 GiB");
    }

    #[test]
    fn human_rate_scales() {
        assert_eq!(human_rate(950.0), "950.00");
        assert_eq!(human_rate(1_500.0), "1.50K");
        assert_eq!(human_rate(390_000_000.0), "390.00M");
    }
}
