//! Concurrent load clients.
//!
//! The paper's memory-overhead experiments ingest "using 4 clients in
//! parallel issuing batches of 5000 rows at a time and creating one
//! implicit transaction per request" (Section VI-A). This module
//! reproduces that driver against a single-node [`Engine`].

use std::sync::atomic::{AtomicU64, Ordering};

use cubrick::{Engine, LoadStageTimings};

use crate::datasets::Dataset;
use crate::stats::LatencyRecorder;

/// Aggregate outcome of a client run.
#[derive(Debug, Default)]
pub struct LoadClientReport {
    /// Rows accepted across all clients.
    pub rows_loaded: u64,
    /// Requests issued.
    pub requests: u64,
    /// End-to-end request latencies.
    pub total_latency: LatencyRecorder,
    /// Parse-stage latencies.
    pub parse_latency: LatencyRecorder,
    /// Flush-stage latencies.
    pub flush_latency: LatencyRecorder,
}

impl LoadClientReport {
    fn record(&mut self, accepted: usize, timings: LoadStageTimings) {
        self.rows_loaded += accepted as u64;
        self.requests += 1;
        self.total_latency.record(timings.total);
        self.parse_latency.record(timings.parse);
        self.flush_latency.record(timings.flush);
    }

    fn merge(&mut self, other: LoadClientReport) {
        self.rows_loaded += other.rows_loaded;
        self.requests += other.requests;
        self.total_latency.merge(other.total_latency);
        self.parse_latency.merge(other.parse_latency);
        self.flush_latency.merge(other.flush_latency);
    }
}

/// Runs `clients` parallel loaders, each issuing
/// `batches_per_client` requests of `batch_size` rows generated from
/// `dataset`, one implicit transaction per request.
///
/// `on_batch` is invoked after every completed request (from the
/// issuing client's thread) with the running total of rows loaded —
/// the figure binaries use it to trigger timeline samples and purge
/// cycles.
pub fn run_load_clients(
    engine: &Engine,
    dataset: &dyn Dataset,
    seed: u64,
    clients: usize,
    batches_per_client: u64,
    batch_size: usize,
    on_batch: &(dyn Fn(u64) + Sync),
) -> LoadClientReport {
    let cube = dataset.schema().name;
    let rows_total = AtomicU64::new(0);
    let reports: Vec<LoadClientReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|client| {
                let cube = cube.clone();
                let rows_total = &rows_total;
                scope.spawn(move || {
                    let mut report = LoadClientReport::default();
                    for batch_idx in 0..batches_per_client {
                        let batch_id = client as u64 * batches_per_client + batch_idx;
                        let rows = dataset.batch(seed, batch_id, batch_size);
                        let outcome = engine
                            .load(&cube, &rows, 0)
                            .expect("generated rows always parse");
                        report.record(outcome.accepted, outcome.timings);
                        let total = rows_total
                            .fetch_add(outcome.accepted as u64, Ordering::Relaxed)
                            + outcome.accepted as u64;
                        on_batch(total);
                    }
                    report
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut merged = LoadClientReport::default();
    for report in reports {
        merged.merge(report);
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::SingleColumnDataset;

    #[test]
    fn clients_load_all_batches() {
        let dataset = SingleColumnDataset::default();
        let engine = Engine::new(2);
        engine.create_cube(dataset.schema()).unwrap();
        let report = run_load_clients(&engine, &dataset, 1, 4, 5, 100, &|_| {});
        assert_eq!(report.requests, 20);
        assert_eq!(report.rows_loaded, 2000);
        assert_eq!(report.total_latency.len(), 20);
        assert_eq!(engine.memory().rows, 2000);
        // One implicit transaction per request.
        assert_eq!(engine.manager().stats().committed, 20);
    }

    #[test]
    fn on_batch_sees_monotone_totals() {
        let dataset = SingleColumnDataset::default();
        let engine = Engine::new(2);
        engine.create_cube(dataset.schema()).unwrap();
        let seen = std::sync::Mutex::new(Vec::new());
        run_load_clients(&engine, &dataset, 2, 2, 3, 50, &|total| {
            seen.lock().unwrap().push(total);
        });
        let seen = seen.into_inner().unwrap();
        assert_eq!(seen.len(), 6);
        assert!(seen.iter().all(|&t| t % 50 == 0 && t <= 300));
        assert!(seen.contains(&300));
    }
}
