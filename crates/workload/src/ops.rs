//! Seeded multi-transaction op schedules for the differential oracle.
//!
//! One RNG seed deterministically produces one [`Schedule`]: a flat
//! list of [`LogicalOp`]s mixing implicit loads, explicit
//! begin/append/commit/rollback transaction slots, partition deletes,
//! flush/purge maintenance, and equivalence checkpoints. The oracle
//! crate executes the same schedule against the AOSI engine and the
//! MVCC baseline and compares results; keeping generation here makes
//! the op model reusable by other harnesses (and keeps the oracle
//! crate free of generation policy).
//!
//! Schedules serialize to a line-oriented text form
//! ([`Schedule::to_text`] / [`Schedule::from_text`]) so a minimized
//! failing schedule can be dumped as a replayable `.seed` artifact.
//!
//! Two generation invariants matter for differential soundness (see
//! the oracle crate docs for the full argument):
//!
//! * **Deletes target whole day range-buckets.** `delete_where` marks
//!   a brick only when its entire coordinate range is contained in
//!   the predicate, so predicates are unions of complete `day`
//!   buckets — brick containment then equals row-value membership and
//!   the MVCC side can model the delete as plain row deletion.
//! * **Deletes never overlap open transaction slots** (in generation
//!   order). An AOSI partition delete at epoch `k` hides *straggler*
//!   appends of epochs `< k` only in bricks that existed when the
//!   delete ran, which no row-level reference model can reproduce
//!   without tracking physical brick creation order. With no open
//!   slots at delete time, every row of an epoch `< k` is already in
//!   place and the semantics collapse to "delete kills all committed
//!   matching rows with a smaller epoch".

use columnar::{Row, Value};
use cubrick::{CubeSchema, Dimension, Metric};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Cube name the oracle schedules run against.
pub const ORACLE_CUBE: &str = "oracle";
/// `region` dimension cardinality (string dimension).
pub const REGION_CARD: u32 = 8;
/// `region` range size (dictionary ids per brick range).
pub const REGION_RANGE: u32 = 2;
/// `day` dimension cardinality (integer dimension).
pub const DAY_CARD: u32 = 16;
/// `day` range size — deletes target whole buckets of this width.
pub const DAY_RANGE: u32 = 4;
/// Number of whole day buckets (`DAY_CARD / DAY_RANGE`).
pub const DAY_BUCKETS: u32 = DAY_CARD / DAY_RANGE;

/// The fixed cube schema oracle schedules are generated for.
pub fn oracle_schema() -> CubeSchema {
    CubeSchema::new(
        ORACLE_CUBE,
        vec![
            Dimension::string("region", REGION_CARD, REGION_RANGE),
            Dimension::int("day", DAY_CARD, DAY_RANGE),
        ],
        vec![Metric::int("likes"), Metric::float("score")],
    )
    .expect("oracle schema is statically valid")
}

/// The day values covered by bucket `b` (`[b*DAY_RANGE, (b+1)*DAY_RANGE)`).
pub fn bucket_days(bucket: u32) -> Vec<i64> {
    let lo = (bucket * DAY_RANGE) as i64;
    (lo..lo + DAY_RANGE as i64).collect()
}

/// One step of a logical schedule. Slot-addressed ops refer to
/// explicit transaction slots; executors treat references to slots
/// that are not open as no-ops, so arbitrary subsequences of a
/// schedule (as produced by the shrinking minimizer) stay executable.
#[derive(Clone, Debug, PartialEq)]
pub enum LogicalOp {
    /// Open explicit transaction slot `slot`.
    Begin {
        /// Target slot.
        slot: usize,
    },
    /// Append `rows` inside the open transaction in `slot`.
    Append {
        /// Target slot.
        slot: usize,
        /// Rows to append (`[region, day, likes, score]`).
        rows: Vec<Row>,
    },
    /// Commit the open transaction in `slot`.
    Commit {
        /// Target slot.
        slot: usize,
    },
    /// Roll back the open transaction in `slot` (its rows are
    /// physically reclaimed).
    Rollback {
        /// Target slot.
        slot: usize,
    },
    /// One implicit-transaction batch load.
    Load {
        /// Rows to load.
        rows: Vec<Row>,
    },
    /// Partition delete of whole `day` buckets.
    DeleteDays {
        /// Bucket indexes in `0..DAY_BUCKETS`.
        buckets: Vec<u32>,
    },
    /// Advance LSE to LCE and purge reclaimable history.
    Purge,
    /// Run a durability flush round (crash-recovery mode); other
    /// modes treat this like [`LogicalOp::Purge`].
    Flush,
    /// Compare both engines at the latest committed snapshot.
    CheckNow,
    /// Compare both engines at a historical epoch inside the
    /// readable window, chosen as `lse + frac * (lce - lse + 1) / 256`
    /// so the choice replays deterministically from engine state.
    CheckAsOf {
        /// Window fraction in `0..=255`.
        frac: u8,
    },
    /// Compare an in-transaction read (sees its own uncommitted
    /// appends) against the reference model.
    CheckTxn {
        /// Target slot.
        slot: usize,
    },
}

/// Generation knobs.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Approximate number of ops to generate (closing commits and a
    /// final check are appended on top).
    pub ops: usize,
    /// Number of explicit transaction slots.
    pub slots: usize,
    /// Maximum rows per append/load batch.
    pub max_batch: usize,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            ops: 60,
            slots: 3,
            max_batch: 6,
        }
    }
}

/// A seeded schedule of logical ops.
#[derive(Clone, Debug, PartialEq)]
pub struct Schedule {
    /// The generating seed (0 for hand-written schedules).
    pub seed: u64,
    /// The ops, in logical order.
    pub ops: Vec<LogicalOp>,
}

fn gen_row(rng: &mut StdRng) -> Row {
    vec![
        Value::Str(format!("r{}", rng.gen_range(0..REGION_CARD))),
        Value::I64(rng.gen_range(0..DAY_CARD as i64)),
        Value::I64(rng.gen_range(0..=100i64)),
        // Integer-valued floats keep f64 sums exact and therefore
        // order-independent across shard scheduling.
        Value::F64(rng.gen_range(0..=50i64) as f64),
    ]
}

fn gen_rows(rng: &mut StdRng, cfg: &GenConfig) -> Vec<Row> {
    let n = rng.gen_range(1..=cfg.max_batch.max(1));
    (0..n).map(|_| gen_row(rng)).collect()
}

impl Schedule {
    /// Deterministically generates a schedule from `seed`.
    pub fn generate(seed: u64, cfg: &GenConfig) -> Schedule {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xa05e_0c1e_5eed_0001);
        let mut ops = Vec::with_capacity(cfg.ops + cfg.slots + 1);
        let mut open = vec![false; cfg.slots.max(1)];
        while ops.len() < cfg.ops {
            let any_open = open.iter().any(|&o| o);
            let open_slots: Vec<usize> = (0..open.len()).filter(|&s| open[s]).collect();
            let pick_open = |rng: &mut StdRng| open_slots[rng.gen_range(0..open_slots.len())];
            let roll = rng.gen_range(0..100u32);
            let op = match roll {
                0..=21 => LogicalOp::Load {
                    rows: gen_rows(&mut rng, cfg),
                },
                22..=33 => match open.iter().position(|&o| !o) {
                    Some(slot) => {
                        open[slot] = true;
                        LogicalOp::Begin { slot }
                    }
                    None => LogicalOp::Append {
                        slot: pick_open(&mut rng),
                        rows: gen_rows(&mut rng, cfg),
                    },
                },
                34..=51 if any_open => LogicalOp::Append {
                    slot: pick_open(&mut rng),
                    rows: gen_rows(&mut rng, cfg),
                },
                34..=51 => LogicalOp::Load {
                    rows: gen_rows(&mut rng, cfg),
                },
                52..=61 if any_open => {
                    let slot = pick_open(&mut rng);
                    open[slot] = false;
                    LogicalOp::Commit { slot }
                }
                52..=61 => LogicalOp::CheckNow,
                62..=67 if any_open => {
                    let slot = pick_open(&mut rng);
                    open[slot] = false;
                    LogicalOp::Rollback { slot }
                }
                62..=67 => LogicalOp::Purge,
                // Deletes only with every slot closed — see module docs.
                68..=73 if !any_open => {
                    let first = rng.gen_range(0..DAY_BUCKETS);
                    let mut buckets = vec![first];
                    if rng.gen_bool(0.4) {
                        let second = rng.gen_range(0..DAY_BUCKETS);
                        if second != first {
                            buckets.push(second);
                        }
                    }
                    LogicalOp::DeleteDays { buckets }
                }
                68..=73 => LogicalOp::CheckTxn {
                    slot: pick_open(&mut rng),
                },
                74..=77 => LogicalOp::Purge,
                78..=83 => LogicalOp::Flush,
                84..=91 => LogicalOp::CheckNow,
                92..=96 => LogicalOp::CheckAsOf {
                    frac: rng.gen_range(0..=255u32) as u8,
                },
                _ if any_open => LogicalOp::CheckTxn {
                    slot: pick_open(&mut rng),
                },
                _ => LogicalOp::CheckNow,
            };
            ops.push(op);
        }
        // Quiesce: close every open slot, then one final checkpoint
        // (the executor adds a full-window historical sweep on top).
        for (slot, is_open) in open.iter().enumerate() {
            if *is_open {
                ops.push(LogicalOp::Commit { slot });
            }
        }
        ops.push(LogicalOp::CheckNow);
        Schedule { seed, ops }
    }

    /// Serializes the schedule to the replayable text form. Lines
    /// starting with `#` and blank lines are ignored by
    /// [`Schedule::from_text`], so callers may prepend commentary.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("seed {}\n", self.seed));
        for op in &self.ops {
            out.push_str(&render_op(op));
            out.push('\n');
        }
        out
    }

    /// Parses the text form produced by [`Schedule::to_text`].
    pub fn from_text(text: &str) -> Result<Schedule, String> {
        let mut seed = 0u64;
        let mut ops = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(rest) = line.strip_prefix("seed ") {
                seed = rest
                    .trim()
                    .parse()
                    .map_err(|e| format!("line {}: bad seed: {e}", lineno + 1))?;
                continue;
            }
            ops.push(parse_op(line).map_err(|e| format!("line {}: {e}", lineno + 1))?);
        }
        Ok(Schedule { seed, ops })
    }
}

fn render_rows(rows: &[Row]) -> String {
    rows.iter()
        .map(|r| {
            let region = match &r[0] {
                Value::Str(s) => s.clone(),
                other => other.to_string(),
            };
            let day = r[1].as_i64().unwrap_or(0);
            let likes = r[2].as_i64().unwrap_or(0);
            let score = r[3].as_f64().unwrap_or(0.0) as i64;
            format!("{region} {day} {likes} {score}")
        })
        .collect::<Vec<_>>()
        .join(" ; ")
}

fn render_op(op: &LogicalOp) -> String {
    match op {
        LogicalOp::Begin { slot } => format!("begin {slot}"),
        LogicalOp::Append { slot, rows } => format!("append {slot} | {}", render_rows(rows)),
        LogicalOp::Commit { slot } => format!("commit {slot}"),
        LogicalOp::Rollback { slot } => format!("rollback {slot}"),
        LogicalOp::Load { rows } => format!("load | {}", render_rows(rows)),
        LogicalOp::DeleteDays { buckets } => format!(
            "delete {}",
            buckets
                .iter()
                .map(u32::to_string)
                .collect::<Vec<_>>()
                .join(" ")
        ),
        LogicalOp::Purge => "purge".into(),
        LogicalOp::Flush => "flush".into(),
        LogicalOp::CheckNow => "check".into(),
        LogicalOp::CheckAsOf { frac } => format!("checkasof {frac}"),
        LogicalOp::CheckTxn { slot } => format!("checktxn {slot}"),
    }
}

fn parse_rows(text: &str) -> Result<Vec<Row>, String> {
    let mut rows = Vec::new();
    for part in text.split(';') {
        let fields: Vec<&str> = part.split_whitespace().collect();
        if fields.len() != 4 {
            return Err(format!("row needs 4 fields, got {part:?}"));
        }
        let day: i64 = fields[1].parse().map_err(|e| format!("bad day: {e}"))?;
        let likes: i64 = fields[2].parse().map_err(|e| format!("bad likes: {e}"))?;
        let score: i64 = fields[3].parse().map_err(|e| format!("bad score: {e}"))?;
        rows.push(vec![
            Value::Str(fields[0].to_owned()),
            Value::I64(day),
            Value::I64(likes),
            Value::F64(score as f64),
        ]);
    }
    Ok(rows)
}

fn parse_op(line: &str) -> Result<LogicalOp, String> {
    let (head, tail) = match line.split_once(' ') {
        Some((h, t)) => (h, t.trim()),
        None => (line, ""),
    };
    let slot = |t: &str| -> Result<usize, String> {
        t.parse().map_err(|e| format!("bad slot {t:?}: {e}"))
    };
    match head {
        "begin" => Ok(LogicalOp::Begin { slot: slot(tail)? }),
        "commit" => Ok(LogicalOp::Commit { slot: slot(tail)? }),
        "rollback" => Ok(LogicalOp::Rollback { slot: slot(tail)? }),
        "checktxn" => Ok(LogicalOp::CheckTxn { slot: slot(tail)? }),
        "append" => {
            let (s, rows) = tail
                .split_once('|')
                .ok_or_else(|| format!("append needs '|': {line:?}"))?;
            Ok(LogicalOp::Append {
                slot: slot(s.trim())?,
                rows: parse_rows(rows)?,
            })
        }
        "load" => {
            let rows = tail
                .strip_prefix('|')
                .ok_or_else(|| format!("load needs '|': {line:?}"))?;
            Ok(LogicalOp::Load {
                rows: parse_rows(rows)?,
            })
        }
        "delete" => {
            let buckets = tail
                .split_whitespace()
                .map(|b| b.parse().map_err(|e| format!("bad bucket {b:?}: {e}")))
                .collect::<Result<Vec<u32>, String>>()?;
            Ok(LogicalOp::DeleteDays { buckets })
        }
        "purge" => Ok(LogicalOp::Purge),
        "flush" => Ok(LogicalOp::Flush),
        "check" => Ok(LogicalOp::CheckNow),
        "checkasof" => Ok(LogicalOp::CheckAsOf {
            frac: tail.parse().map_err(|e| format!("bad frac: {e}"))?,
        }),
        other => Err(format!("unknown op {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = GenConfig::default();
        let a = Schedule::generate(42, &cfg);
        let b = Schedule::generate(42, &cfg);
        assert_eq!(a, b);
        let c = Schedule::generate(43, &cfg);
        assert_ne!(a.ops, c.ops, "different seeds, different schedules");
        assert!(a.ops.len() >= cfg.ops);
    }

    #[test]
    fn schedules_end_quiesced() {
        for seed in 0..20 {
            let s = Schedule::generate(seed, &GenConfig::default());
            let mut open = [false; 8];
            for op in &s.ops {
                match op {
                    LogicalOp::Begin { slot } => open[*slot] = true,
                    LogicalOp::Commit { slot } | LogicalOp::Rollback { slot } => {
                        open[*slot] = false
                    }
                    LogicalOp::DeleteDays { .. } => {
                        assert!(
                            open.iter().all(|&o| !o),
                            "seed {seed}: delete with an open slot"
                        );
                    }
                    _ => {}
                }
            }
            assert!(open.iter().all(|&o| !o), "seed {seed}: unclosed slot");
            assert_eq!(s.ops.last(), Some(&LogicalOp::CheckNow));
        }
    }

    #[test]
    fn text_roundtrip_preserves_every_op() {
        for seed in [1u64, 7, 99] {
            let s = Schedule::generate(seed, &GenConfig::default());
            let text = s.to_text();
            let parsed = Schedule::from_text(&text).unwrap();
            assert_eq!(parsed, s, "seed {seed} round-trips");
        }
        // Comments and blank lines are tolerated.
        let with_comments = "# artifact\n\nseed 5\nload | r1 3 10 4\ncheck\n";
        let s = Schedule::from_text(with_comments).unwrap();
        assert_eq!(s.seed, 5);
        assert_eq!(s.ops.len(), 2);
    }

    #[test]
    fn malformed_text_is_rejected() {
        assert!(Schedule::from_text("frobnicate 3").is_err());
        assert!(Schedule::from_text("append 0 | r1 3").is_err());
        assert!(Schedule::from_text("delete x").is_err());
    }

    #[test]
    fn bucket_days_cover_whole_ranges() {
        assert_eq!(bucket_days(0), vec![0, 1, 2, 3]);
        assert_eq!(bucket_days(3), vec![12, 13, 14, 15]);
        let schema = oracle_schema();
        assert_eq!(schema.dimensions[1].range_size, DAY_RANGE);
    }
}
