//! Dataset generators.
//!
//! Both generators are deterministic given a seed, so figure runs are
//! reproducible. Row values are uniform over the dimension
//! cardinalities; metric values are small integers/floats — the
//! experiments measure concurrency-control structures, not value
//! distributions.

use columnar::{Row, Value};
use cubrick::{CubeSchema, Dimension, Metric};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::zipf::Zipf;

/// A reproducible stream of rows matching a cube schema.
pub trait Dataset: Send + Sync {
    /// The cube schema rows conform to.
    fn schema(&self) -> CubeSchema;

    /// Generates one row from `rng`.
    fn row(&self, rng: &mut StdRng) -> Row;

    /// Generates a batch of `size` rows seeded by `(seed, batch_id)`
    /// — distinct batches never share an RNG stream.
    fn batch(&self, seed: u64, batch_id: u64, size: usize) -> Vec<Row> {
        let mut rng = StdRng::seed_from_u64(seed ^ batch_id.wrapping_mul(0x9E37_79B9));
        (0..size).map(|_| self.row(&mut rng)).collect()
    }

    /// Approximate payload bytes of one stored row (for GB/s style
    /// reporting).
    fn row_bytes(&self) -> usize {
        let schema = self.schema();
        schema.dimensions.len() * 4 + schema.metrics.len() * 8
    }
}

/// The paper's single-column dataset (Figures 6 and 10): one integer
/// dimension, no metrics — every byte of concurrency-control metadata
/// is maximally visible.
#[derive(Clone, Debug)]
pub struct SingleColumnDataset {
    /// Dimension cardinality.
    pub cardinality: u32,
    /// Coordinates per partition range.
    pub range_size: u32,
}

impl Default for SingleColumnDataset {
    fn default() -> Self {
        // 16 partition ranges over a million-value key space.
        SingleColumnDataset {
            cardinality: 1 << 20,
            range_size: 1 << 16,
        }
    }
}

impl Dataset for SingleColumnDataset {
    fn schema(&self) -> CubeSchema {
        CubeSchema::new(
            "single_column",
            vec![Dimension::int("k", self.cardinality, self.range_size)],
            vec![],
        )
        .expect("valid schema")
    }

    fn row(&self, rng: &mut StdRng) -> Row {
        vec![Value::I64(rng.gen_range(0..self.cardinality as i64))]
    }
}

/// The paper's "typical 40 column dataset" (Figure 7): a handful of
/// dimensions plus a wide tail of metrics.
#[derive(Clone, Debug)]
pub struct WideDataset {
    /// Integer metrics beyond the dimensions (default tuned so the
    /// total column count is 40).
    pub int_metrics: usize,
    /// Float metrics.
    pub float_metrics: usize,
}

impl Default for WideDataset {
    fn default() -> Self {
        // 5 dimensions + 30 int metrics + 5 float metrics = 40 cols.
        WideDataset {
            int_metrics: 30,
            float_metrics: 5,
        }
    }
}

impl WideDataset {
    const REGIONS: [&'static str; 8] = ["us", "br", "mx", "in", "de", "jp", "gb", "fr"];
    const PLATFORMS: [&'static str; 4] = ["web", "ios", "android", "api"];
}

impl Dataset for WideDataset {
    fn schema(&self) -> CubeSchema {
        let mut metrics = Vec::with_capacity(self.int_metrics + self.float_metrics);
        for i in 0..self.int_metrics {
            metrics.push(Metric::int(format!("m{i}")));
        }
        for i in 0..self.float_metrics {
            metrics.push(Metric::float(format!("f{i}")));
        }
        CubeSchema::new(
            "wide",
            vec![
                Dimension::string("region", 8, 2),
                Dimension::string("platform", 4, 1),
                Dimension::int("day", 64, 8),
                Dimension::int("hour", 24, 24),
                Dimension::int("bucket", 256, 64),
            ],
            metrics,
        )
        .expect("valid schema")
    }

    fn row(&self, rng: &mut StdRng) -> Row {
        let mut row = Vec::with_capacity(5 + self.int_metrics + self.float_metrics);
        row.push(Value::Str(
            Self::REGIONS[rng.gen_range(0..Self::REGIONS.len())].to_owned(),
        ));
        row.push(Value::Str(
            Self::PLATFORMS[rng.gen_range(0..Self::PLATFORMS.len())].to_owned(),
        ));
        row.push(Value::I64(rng.gen_range(0..64)));
        row.push(Value::I64(rng.gen_range(0..24)));
        row.push(Value::I64(rng.gen_range(0..256)));
        for _ in 0..self.int_metrics {
            row.push(Value::I64(rng.gen_range(0..1000)));
        }
        for _ in 0..self.float_metrics {
            row.push(Value::F64(rng.gen_range(0.0..1.0)));
        }
        row
    }
}

/// A skewed single-dimension dataset: coordinates drawn Zipf(s), so a
/// handful of bricks take most of the writes — the adversarial case
/// for the bid-sharded single-writer design (hot bricks serialize on
/// one shard thread).
#[derive(Clone, Debug)]
pub struct SkewedDataset {
    base: SingleColumnDataset,
    zipf: Zipf,
}

impl SkewedDataset {
    /// Zipf(s)-skewed keys over the default single-column layout.
    pub fn new(s: f64) -> Self {
        let base = SingleColumnDataset::default();
        let zipf = Zipf::new(base.cardinality, s);
        SkewedDataset { base, zipf }
    }
}

impl Dataset for SkewedDataset {
    fn schema(&self) -> CubeSchema {
        let mut schema = self.base.schema();
        schema.name = "skewed".into();
        schema
    }

    fn row(&self, rng: &mut StdRng) -> Row {
        vec![Value::I64(self.zipf.sample(rng) as i64)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubrick::Engine;

    #[test]
    fn single_column_rows_validate() {
        let ds = SingleColumnDataset::default();
        let engine = Engine::new(2);
        engine.create_cube(ds.schema()).unwrap();
        let batch = ds.batch(7, 0, 1000);
        let outcome = engine.load("single_column", &batch, 0).unwrap();
        assert_eq!(outcome.accepted, 1000);
        assert_eq!(outcome.rejected, 0);
    }

    #[test]
    fn wide_rows_validate_and_have_40_columns() {
        let ds = WideDataset::default();
        assert_eq!(ds.schema().arity(), 40);
        let engine = Engine::new(2);
        engine.create_cube(ds.schema()).unwrap();
        let batch = ds.batch(7, 1, 500);
        assert_eq!(batch[0].len(), 40);
        let outcome = engine.load("wide", &batch, 0).unwrap();
        assert_eq!(outcome.accepted, 500);
    }

    #[test]
    fn batches_are_deterministic_and_distinct() {
        let ds = SingleColumnDataset::default();
        assert_eq!(ds.batch(1, 0, 50), ds.batch(1, 0, 50));
        assert_ne!(ds.batch(1, 0, 50), ds.batch(1, 1, 50));
        assert_ne!(ds.batch(1, 0, 50), ds.batch(2, 0, 50));
    }

    #[test]
    fn skewed_dataset_loads_and_concentrates() {
        let ds = SkewedDataset::new(1.2);
        let engine = Engine::new(2);
        engine.create_cube(ds.schema()).unwrap();
        let outcome = engine.load("skewed", &ds.batch(9, 0, 2000), 0).unwrap();
        assert_eq!(outcome.accepted, 2000);
        // Heavy skew: far fewer bricks touched than the uniform case
        // would touch.
        assert!(outcome.bricks_touched <= 16);
        let uniform = SingleColumnDataset::default();
        let values: Vec<i64> = ds
            .batch(9, 1, 5000)
            .into_iter()
            .map(|r| r[0].as_i64().unwrap())
            .collect();
        let low = values.iter().filter(|&&v| v < 1024).count();
        assert!(
            low > 2500,
            "zipf(1.2) should put most mass on small keys: {low}/5000"
        );
        let _ = uniform;
    }

    #[test]
    fn row_bytes_reflect_schema_width() {
        assert_eq!(SingleColumnDataset::default().row_bytes(), 4);
        assert_eq!(WideDataset::default().row_bytes(), 5 * 4 + 35 * 8);
    }
}
