//! Scan-path differential oracle: the parallel, visibility-cached
//! scan executor against the sequential uncached reference — same
//! engine, same snapshot, byte-identical answers.
//!
//! The AOSI-vs-MVCC oracle ([`crate::harness`]) establishes that the
//! engine's *answers* are right. This layer establishes that the
//! engine's *fast path* computes the same answers as its slow path:
//! [`Engine::query_at`] (per-brick parallel fan-out plus the
//! snapshot-keyed visibility cache) is diffed against
//! [`Engine::query_at_reference`] (sequential shard walk, cache
//! bypassed) at every committed checkpoint of a generated schedule,
//! at every open transaction's snapshot, and — at quiescence — at
//! every epoch in the readable window `[LSE, LCE]`, twice, so the
//! second pass is served from a warm cache and must still agree.
//!
//! Comparison is bitwise: group keys must match exactly and every
//! aggregate is compared through `f64::to_bits`, so a NaN/−0.0 or a
//! single flipped visibility bit cannot hide. Generated metric values
//! are integer-valued, which makes float sums exact and independent
//! of merge order (see `crate::checks`); any byte difference is
//! therefore a real visibility or merge bug, not float noise.
//!
//! The `tests/scan_oracle.rs` meta-test proves the oracle's teeth:
//! it corrupts the cache through
//! [`Engine::corrupt_visibility_cache_for_test`] and asserts
//! [`compare_paths`] reports the divergence.

use aosi::Snapshot;
use cubrick::{AggFn, Aggregation, DimStorage, Engine, OrderBy, Query, QueryResult, ScanConfig};
use workload::ops::{oracle_schema, LogicalOp, Schedule, DAY_CARD};

use crate::checks::{build_query, NUM_QUERIES};
use crate::harness::Divergence;
use columnar::Value;
use cubrick::DimFilter;
use std::collections::BTreeSet;
use workload::ops::{bucket_days, ORACLE_CUBE};

/// Visibility-cache capacity for oracle engines: large enough that
/// eviction never masks a staleness bug during a schedule.
const CACHE_CAPACITY: usize = 4096;

/// Counters from a clean scan-oracle run.
#[derive(Clone, Copy, Debug, Default)]
pub struct ScanReport {
    /// Schedule ops executed.
    pub ops_executed: usize,
    /// Fast-vs-reference query comparisons performed.
    pub comparisons: u64,
    /// Visibility-cache hits observed across the run (> 0 proves the
    /// warm path was actually exercised, not just the cold path
    /// twice).
    pub cache_hits: u64,
    /// Per-brick parallel scan tasks dispatched by the fast path.
    pub parallel_tasks: u64,
}

/// Builds the engine the scan oracle drives: oracle cube, parallel
/// threshold 1 (every multi-brick query fans out), warm cache, plain
/// dimension storage.
pub fn scan_engine() -> Engine {
    scan_engine_with(DimStorage::Plain)
}

/// [`scan_engine`] with a chosen brick dimension layout — bess-packed
/// bricks route the kernels through the gather fallback instead of
/// per-dimension slices.
pub fn scan_engine_with(storage: DimStorage) -> Engine {
    let engine = Engine::new(2)
        .with_scan_config(ScanConfig::parallel_cached(CACHE_CAPACITY))
        .with_dim_storage(storage);
    engine
        .create_cube(oracle_schema())
        .expect("oracle schema registers");
    engine
}

/// Size of the scan-only differential battery: the shared AOSI-vs-MVCC
/// check queries plus scan-specific shapes (ORDER BY + LIMIT, an
/// exhaustive filter the resolver drops, an empty coordinate set, and
/// a multi-filter Min/Max) that only need kernel-vs-kernel agreement
/// and therefore don't burden the MVCC model in `crate::checks`.
pub const NUM_SCAN_QUERIES: usize = NUM_QUERIES + 5;

/// Builds scan-battery query `idx`; indexes below [`NUM_QUERIES`] are
/// the shared [`build_query`] battery.
pub fn build_scan_query(idx: usize) -> Query {
    if idx < NUM_QUERIES {
        return build_query(idx);
    }
    match idx - NUM_QUERIES {
        // Top-k groups by aggregate, descending: ORDER BY + LIMIT
        // over multi-dimension group keys.
        0 => Query::aggregate(vec![
            Aggregation::new(AggFn::Sum, "likes"),
            Aggregation::new(AggFn::Count, ""),
        ])
        .grouped_by("region")
        .grouped_by("day")
        .ordered_by(OrderBy::Aggregation(0), true)
        .limited(5),
        // Filtered Avg with a dimension-ordered, limited result.
        1 => Query::aggregate(vec![
            Aggregation::new(AggFn::Avg, "score"),
            Aggregation::new(AggFn::Max, "likes"),
        ])
        .filter(DimFilter::new(
            "day",
            vec![Value::I64(1), Value::I64(6), Value::I64(11)],
        ))
        .grouped_by("region")
        .ordered_by(OrderBy::Dimension("region".into()), false)
        .limited(6),
        // Exhaustive day filter: accepts every storable coordinate,
        // so the resolver drops it and the scan must take the
        // unfiltered ranges path with identical answers.
        2 => Query::aggregate(vec![
            Aggregation::new(AggFn::Sum, "likes"),
            Aggregation::new(AggFn::Min, "score"),
            Aggregation::new(AggFn::Max, "score"),
        ])
        .filter(DimFilter::new(
            "day",
            (0..DAY_CARD as i64).map(Value::I64).collect(),
        ))
        .grouped_by("region"),
        // Strings with no dictionary id: an empty coordinate set that
        // must match nothing on every path.
        3 => Query::aggregate(vec![
            Aggregation::new(AggFn::Count, ""),
            Aggregation::new(AggFn::Sum, "likes"),
        ])
        .filter(DimFilter::new(
            "region",
            vec![Value::Str("zz".into()), Value::Str("yy".into())],
        )),
        // Two filters at once, Min/Max only: the conjunctive
        // selection-vector compaction.
        4 => Query::aggregate(vec![
            Aggregation::new(AggFn::Min, "likes"),
            Aggregation::new(AggFn::Max, "likes"),
            Aggregation::new(AggFn::Min, "score"),
        ])
        .filter(DimFilter::new(
            "region",
            vec![
                Value::Str("r0".into()),
                Value::Str("r2".into()),
                Value::Str("r4".into()),
            ],
        ))
        .filter(DimFilter::new(
            "day",
            vec![Value::I64(2), Value::I64(5), Value::I64(9), Value::I64(11)],
        ))
        .grouped_by("day")
        .ordered_by(OrderBy::Aggregation(1), true),
        other => unreachable!("no scan check query {other}"),
    }
}

fn fail(op_index: Option<usize>, detail: impl Into<String>) -> Divergence {
    Divergence {
        op_index,
        detail: detail.into(),
    }
}

/// Byte-level diff of two query results; `None` means identical.
/// Group-key order is already deterministic (finalize sorts by packed
/// key), so rows are compared positionally.
pub fn diff_bits(fast: &QueryResult, reference: &QueryResult) -> Option<String> {
    if fast.rows.len() != reference.rows.len() {
        return Some(format!(
            "row count: fast {} vs reference {}",
            fast.rows.len(),
            reference.rows.len()
        ));
    }
    for (row, ((fk, fv), (rk, rv))) in fast.rows.iter().zip(&reference.rows).enumerate() {
        if fk != rk {
            return Some(format!(
                "row {row} group key: fast {fk:?} vs reference {rk:?}"
            ));
        }
        if fv.len() != rv.len() || fv.iter().zip(rv).any(|(a, b)| a.to_bits() != b.to_bits()) {
            return Some(format!(
                "row {row} ({fk:?}) aggregates: fast {fv:?} vs reference {rv:?}"
            ));
        }
    }
    None
}

/// Runs the whole check battery at `snapshot` down both scan paths
/// and diffs the results bitwise. Returns the comparison count on
/// agreement. This is the primitive the meta-test points at a
/// deliberately corrupted cache.
pub fn compare_paths(
    engine: &Engine,
    snapshot: &Snapshot,
    op_index: Option<usize>,
    label: &str,
) -> Result<u64, Divergence> {
    let mut comparisons = 0;
    for idx in 0..NUM_SCAN_QUERIES {
        let query = build_scan_query(idx);
        let fast = engine
            .query_at(ORACLE_CUBE, &query, snapshot)
            .map_err(|e| fail(op_index, format!("{label} q{idx} fast path failed: {e}")))?;
        let reference = engine
            .query_at_reference(ORACLE_CUBE, &query, snapshot)
            .map_err(|e| fail(op_index, format!("{label} q{idx} reference failed: {e}")))?;
        comparisons += 1;
        if let Some(d) = diff_bits(&fast, &reference) {
            return Err(fail(
                op_index,
                format!(
                    "{label} q{idx} at epoch {}: parallel+cached differs from \
                     sequential reference: {d}",
                    snapshot.epoch()
                ),
            ));
        }
    }
    Ok(comparisons)
}

struct ScanState {
    engine: Engine,
    slots: Vec<Option<aosi::Txn>>,
    comparisons: u64,
    parallel_tasks: u64,
}

impl ScanState {
    fn check_at(&mut self, i: usize, label: &str, snapshot: &Snapshot) -> Result<(), Divergence> {
        self.comparisons += compare_paths(&self.engine, snapshot, Some(i), label)?;
        Ok(())
    }

    fn apply(&mut self, i: usize, op: &LogicalOp) -> Result<(), Divergence> {
        match op {
            LogicalOp::Begin { slot } => {
                if *slot < self.slots.len() && self.slots[*slot].is_none() {
                    self.slots[*slot] = Some(self.engine.begin());
                }
            }
            LogicalOp::Append { slot, rows } => {
                if let Some(txn) = self.slots.get(*slot).and_then(Option::as_ref) {
                    let (accepted, rejected) = self
                        .engine
                        .append(ORACLE_CUBE, rows, txn)
                        .map_err(|e| fail(Some(i), format!("append failed: {e}")))?;
                    if rejected != 0 || accepted != rows.len() {
                        return Err(fail(Some(i), "generated rows rejected"));
                    }
                }
            }
            LogicalOp::Commit { slot } => {
                if let Some(txn) = self.slots.get_mut(*slot).and_then(Option::take) {
                    self.engine
                        .commit(&txn)
                        .map_err(|e| fail(Some(i), format!("commit failed: {e}")))?;
                }
            }
            LogicalOp::Rollback { slot } => {
                if let Some(txn) = self.slots.get_mut(*slot).and_then(Option::take) {
                    self.engine
                        .rollback(&txn)
                        .map_err(|e| fail(Some(i), format!("rollback failed: {e}")))?;
                }
            }
            LogicalOp::Load { rows } => {
                self.engine
                    .load(ORACLE_CUBE, rows, 0)
                    .map_err(|e| fail(Some(i), format!("load failed: {e}")))?;
            }
            LogicalOp::DeleteDays { buckets } => {
                let days: BTreeSet<i64> = buckets.iter().flat_map(|b| bucket_days(*b)).collect();
                let filter =
                    DimFilter::new("day", days.into_iter().map(Value::I64).collect::<Vec<_>>());
                self.engine
                    .delete_where(ORACLE_CUBE, &[filter])
                    .map_err(|e| fail(Some(i), format!("delete failed: {e}")))?;
            }
            LogicalOp::Purge | LogicalOp::Flush => {
                self.engine.advance_lse_and_purge();
            }
            LogicalOp::CheckNow => {
                // Single-threaded executor: nothing purges while the
                // guard is live, so the epoch it yields stays valid.
                let snapshot = self.engine.manager().begin_read().snapshot().clone();
                self.check_at(i, "check", &snapshot)?;
            }
            LogicalOp::CheckAsOf { frac } => {
                let (lse, lce) = (self.engine.manager().lse(), self.engine.manager().lce());
                if lce > 0 {
                    let window = lce - lse + 1;
                    let epoch = (lse + (u64::from(*frac) * window) / 256).min(lce);
                    let snapshot = Snapshot::committed(epoch);
                    self.check_at(i, "as-of", &snapshot)?;
                }
            }
            LogicalOp::CheckTxn { slot } => {
                // An open transaction's snapshot (its own epoch plus
                // the deps exclusion set) is just another snapshot to
                // the scan paths — and the one that exercises cache
                // keys with non-empty dependency sets.
                if let Some(txn) = self.slots.get(*slot).and_then(Option::as_ref) {
                    let snapshot = txn.snapshot().clone();
                    self.check_at(i, "in-txn", &snapshot)?;
                }
            }
        }
        Ok(())
    }
}

/// Executes `schedule` against a parallel+cached engine, comparing
/// the fast and reference scan paths at every checkpoint, then
/// sweeps the full readable window twice (cold, then warm cache).
/// Returns counters on agreement or the first [`Divergence`].
pub fn run_scan_schedule(schedule: &Schedule) -> Result<ScanReport, Divergence> {
    run_scan_schedule_with(schedule, DimStorage::Plain)
}

/// [`run_scan_schedule`] with a chosen brick dimension layout.
pub fn run_scan_schedule_with(
    schedule: &Schedule,
    storage: DimStorage,
) -> Result<ScanReport, Divergence> {
    let max_slot = schedule
        .ops
        .iter()
        .filter_map(|op| match op {
            LogicalOp::Begin { slot }
            | LogicalOp::Append { slot, .. }
            | LogicalOp::Commit { slot }
            | LogicalOp::Rollback { slot }
            | LogicalOp::CheckTxn { slot } => Some(*slot),
            _ => None,
        })
        .max()
        .unwrap_or(0);
    let mut state = ScanState {
        engine: scan_engine_with(storage),
        slots: (0..=max_slot).map(|_| None).collect(),
        comparisons: 0,
        parallel_tasks: 0,
    };
    for (i, op) in schedule.ops.iter().enumerate() {
        state.apply(i, op)?;
    }
    // Quiesce: leftover transactions commit so the window is final.
    for slot in 0..state.slots.len() {
        if let Some(txn) = state.slots[slot].take() {
            state
                .engine
                .commit(&txn)
                .map_err(|e| fail(None, format!("quiescence commit failed: {e}")))?;
        }
    }
    // Full-window sweep, twice: pass 0 populates the cache at every
    // epoch, pass 1 must be answered from it — and still agree with
    // the uncached reference bit-for-bit.
    let (lse, lce) = (state.engine.manager().lse(), state.engine.manager().lce());
    for pass in 0..2 {
        for epoch in lse..=lce {
            let snapshot = Snapshot::committed(epoch);
            state.comparisons +=
                compare_paths(&state.engine, &snapshot, None, &format!("sweep#{pass}"))?;
        }
    }
    // Sample parallel-task usage so the report can prove the fast
    // path actually fanned out (brick counts vary by schedule, so
    // this is observed, not asserted, per run).
    let probe = state
        .engine
        .query_at(ORACLE_CUBE, &build_query(0), &Snapshot::committed(lce))
        .map_err(|e| fail(None, format!("probe query failed: {e}")))?;
    state.parallel_tasks = probe.stats.parallel_tasks;
    let cache_hits = state
        .engine
        .visibility_cache_stats()
        .map(|s| s.hits)
        .unwrap_or(0);
    Ok(ScanReport {
        ops_executed: schedule.ops.len(),
        comparisons: state.comparisons,
        cache_hits,
        parallel_tasks: state.parallel_tasks,
    })
}
