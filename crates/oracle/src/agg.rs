//! Merge-algebra differential oracle: any partition of a brick set,
//! merged in any order and association, must finalize bit-identically
//! to the single-pass sequential reference.
//!
//! The shard-merge executor's correctness argument is algebraic: a
//! brick partial is a grouped table of [`cubrick::AggState`] values,
//! `PartialResult::default()` is the merge identity, and `merge` is
//! associative and commutative on the workload's exact arithmetic
//! (integer-valued metrics make float sums exact, so reassociation
//! cannot change a single bit). The scan oracle pins the *default*
//! association — per-shard folds merged in shard order — against the
//! reference; this layer pins **every other** association: for each
//! checkpoint of a generated schedule it pulls the raw per-brick
//! partials via [`Engine::query_brick_partials`], then re-merges them
//! through seeded random partitions into chunks, shuffled chunk
//! orders, random binary merge trees, and interleaved identity
//! states, and demands each finalization agree with
//! [`Engine::query_at_reference`] through `f64::to_bits`.
//!
//! Failures shrink exactly like the other oracles: prefix bisection
//! plus greedy op removal against [`run_agg_schedule`], dumped as a
//! replayable `.seed` artifact (`AOSI_AGG_REPLAY` in the test suite
//! re-runs one; `AOSI_AGG_SEEDS` runs extra generator seeds).
//!
//! The meta-tests in `tests/agg_oracle.rs` prove the teeth: a
//! two-chunk AVG workload that a mean-of-means merge would get wrong,
//! and a deliberately corrupted aggregate cache
//! ([`Engine::corrupt_agg_cache_for_test`]) that the differential
//! compare must catch and the next mutation must heal.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

use aosi::Snapshot;
use columnar::Value;
use cubrick::{DimFilter, Engine, PartialResult};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use workload::ops::{bucket_days, LogicalOp, Schedule, ORACLE_CUBE};

use crate::harness::Divergence;
use crate::minimize::artifact_dir;
use crate::scan::{build_scan_query, diff_bits, scan_engine, NUM_SCAN_QUERIES};

/// Re-merge plans tried per (checkpoint, query): each plan is one
/// seeded partition + shuffle + association draw. Small, because the
/// count multiplies the whole corpus.
const PLANS_PER_QUERY: usize = 3;

/// Counters from a clean merge-oracle run.
#[derive(Clone, Copy, Debug, Default)]
pub struct AggReport {
    /// Schedule ops executed.
    pub ops_executed: usize,
    /// Re-merged finalizations compared against the reference.
    pub comparisons: u64,
    /// Brick partials pulled and folded across the run.
    pub partials_folded: u64,
}

fn fail(op_index: Option<usize>, detail: impl Into<String>) -> Divergence {
    Divergence {
        op_index,
        detail: detail.into(),
    }
}

/// Folds `partials` through one seeded re-merge plan: partition into
/// `1..=n` chunks by random assignment, fold each chunk locally
/// (seeded from the identity, so the identity-state no-op is part of
/// every plan), then collapse the chunk partials through a random
/// binary merge tree — a different association and order every draw.
fn remerge(partials: &[PartialResult], rng: &mut StdRng) -> PartialResult {
    if partials.is_empty() {
        return PartialResult::default();
    }
    let k = rng.gen_range(1..=partials.len());
    let mut chunks: Vec<PartialResult> = (0..k).map(|_| PartialResult::default()).collect();
    for partial in partials {
        let slot = rng.gen_range(0..k);
        chunks[slot].merge(partial.clone());
    }
    // Random association: repeatedly merge one random chunk into
    // another until one remains. Empty chunks stay in the pool — they
    // are identity states and must be no-ops wherever they land.
    while chunks.len() > 1 {
        let j = rng.gen_range(1..chunks.len());
        let victim = chunks.swap_remove(j);
        let i = rng.gen_range(0..chunks.len());
        chunks[i].merge(victim);
    }
    chunks.pop().expect("one chunk remains")
}

/// Runs the whole scan battery at `snapshot`, and for each query
/// checks that the per-brick partials finalize to the reference
/// answer under: the documented forward fold, the reversed fold
/// (commutativity), and [`PLANS_PER_QUERY`] seeded
/// partition/shuffle/association draws. Returns (comparisons,
/// partials folded) on agreement.
pub fn compare_merges(
    engine: &Engine,
    snapshot: &Snapshot,
    op_index: Option<usize>,
    label: &str,
    rng: &mut StdRng,
) -> Result<(u64, u64), Divergence> {
    let mut comparisons = 0u64;
    let mut folded = 0u64;
    for idx in 0..NUM_SCAN_QUERIES {
        let query = build_scan_query(idx);
        let reference = engine
            .query_at_reference(ORACLE_CUBE, &query, snapshot)
            .map_err(|e| fail(op_index, format!("{label} q{idx} reference failed: {e}")))?;
        let partials = engine
            .query_brick_partials(ORACLE_CUBE, &query, snapshot)
            .map_err(|e| fail(op_index, format!("{label} q{idx} partials failed: {e}")))?;
        folded += partials.len() as u64;
        let mut check = |plan: &str, merged: PartialResult| -> Result<(), Divergence> {
            let finalized = engine
                .finalize_partials(ORACLE_CUBE, &query, std::iter::once(merged))
                .map_err(|e| fail(op_index, format!("{label} q{idx} finalize failed: {e}")))?;
            comparisons += 1;
            if let Some(d) = diff_bits(&finalized, &reference) {
                return Err(fail(
                    op_index,
                    format!(
                        "{label} q{idx} at epoch {}: {plan} re-merge differs from \
                         single-pass reference: {d}",
                        snapshot.epoch()
                    ),
                ));
            }
            Ok(())
        };
        // Forward fold from the identity — the documented contract.
        let mut forward = PartialResult::default();
        for partial in &partials {
            forward.merge(partial.clone());
        }
        check("forward", forward)?;
        // Reversed fold — commutativity's cheapest witness.
        let mut backward = PartialResult::default();
        for partial in partials.iter().rev() {
            backward.merge(partial.clone());
        }
        check("reversed", backward)?;
        for plan in 0..PLANS_PER_QUERY {
            check(&format!("plan#{plan}"), remerge(&partials, rng))?;
        }
    }
    Ok((comparisons, folded))
}

struct AggState {
    engine: Engine,
    slots: Vec<Option<aosi::Txn>>,
    rng: StdRng,
    comparisons: u64,
    partials_folded: u64,
}

impl AggState {
    fn check_at(&mut self, i: usize, label: &str, snapshot: &Snapshot) -> Result<(), Divergence> {
        let (comparisons, folded) =
            compare_merges(&self.engine, snapshot, Some(i), label, &mut self.rng)?;
        self.comparisons += comparisons;
        self.partials_folded += folded;
        Ok(())
    }

    fn apply(&mut self, i: usize, op: &LogicalOp) -> Result<(), Divergence> {
        match op {
            LogicalOp::Begin { slot } => {
                if *slot < self.slots.len() && self.slots[*slot].is_none() {
                    self.slots[*slot] = Some(self.engine.begin());
                }
            }
            LogicalOp::Append { slot, rows } => {
                if let Some(txn) = self.slots.get(*slot).and_then(Option::as_ref) {
                    let (accepted, rejected) = self
                        .engine
                        .append(ORACLE_CUBE, rows, txn)
                        .map_err(|e| fail(Some(i), format!("append failed: {e}")))?;
                    if rejected != 0 || accepted != rows.len() {
                        return Err(fail(Some(i), "generated rows rejected"));
                    }
                }
            }
            LogicalOp::Commit { slot } => {
                if let Some(txn) = self.slots.get_mut(*slot).and_then(Option::take) {
                    self.engine
                        .commit(&txn)
                        .map_err(|e| fail(Some(i), format!("commit failed: {e}")))?;
                }
            }
            LogicalOp::Rollback { slot } => {
                if let Some(txn) = self.slots.get_mut(*slot).and_then(Option::take) {
                    self.engine
                        .rollback(&txn)
                        .map_err(|e| fail(Some(i), format!("rollback failed: {e}")))?;
                }
            }
            LogicalOp::Load { rows } => {
                self.engine
                    .load(ORACLE_CUBE, rows, 0)
                    .map_err(|e| fail(Some(i), format!("load failed: {e}")))?;
            }
            LogicalOp::DeleteDays { buckets } => {
                let days: BTreeSet<i64> = buckets.iter().flat_map(|b| bucket_days(*b)).collect();
                let filter =
                    DimFilter::new("day", days.into_iter().map(Value::I64).collect::<Vec<_>>());
                self.engine
                    .delete_where(ORACLE_CUBE, &[filter])
                    .map_err(|e| fail(Some(i), format!("delete failed: {e}")))?;
            }
            LogicalOp::Purge | LogicalOp::Flush => {
                self.engine.advance_lse_and_purge();
            }
            LogicalOp::CheckNow => {
                let snapshot = self.engine.manager().begin_read().snapshot().clone();
                self.check_at(i, "check", &snapshot)?;
            }
            LogicalOp::CheckAsOf { frac } => {
                let (lse, lce) = (self.engine.manager().lse(), self.engine.manager().lce());
                if lce > 0 {
                    let window = lce - lse + 1;
                    let epoch = (lse + (u64::from(*frac) * window) / 256).min(lce);
                    self.check_at(i, "as-of", &Snapshot::committed(epoch))?;
                }
            }
            LogicalOp::CheckTxn { slot } => {
                // An open transaction's snapshot: brick partials keyed
                // on a non-empty deps set, and uncommitted rows that
                // every re-merge must keep excluded.
                if let Some(txn) = self.slots.get(*slot).and_then(Option::as_ref) {
                    let snapshot = txn.snapshot().clone();
                    self.check_at(i, "in-txn", &snapshot)?;
                }
            }
        }
        Ok(())
    }
}

/// Executes `schedule` against a parallel+cached engine, checking the
/// merge algebra at every checkpoint, then sweeps the full readable
/// window twice (the second pass re-merges partials the aggregate
/// cache replays, so cached and freshly scanned partials prove
/// interchangeable). Returns counters on agreement or the first
/// [`Divergence`].
pub fn run_agg_schedule(schedule: &Schedule) -> Result<AggReport, Divergence> {
    let max_slot = schedule
        .ops
        .iter()
        .filter_map(|op| match op {
            LogicalOp::Begin { slot }
            | LogicalOp::Append { slot, .. }
            | LogicalOp::Commit { slot }
            | LogicalOp::Rollback { slot }
            | LogicalOp::CheckTxn { slot } => Some(*slot),
            _ => None,
        })
        .max()
        .unwrap_or(0);
    let mut state = AggState {
        engine: scan_engine(),
        slots: (0..=max_slot).map(|_| None).collect(),
        rng: StdRng::seed_from_u64(schedule.seed ^ 0xa66_0c1e_5eed_0002),
        comparisons: 0,
        partials_folded: 0,
    };
    for (i, op) in schedule.ops.iter().enumerate() {
        state.apply(i, op)?;
    }
    for slot in 0..state.slots.len() {
        if let Some(txn) = state.slots[slot].take() {
            state
                .engine
                .commit(&txn)
                .map_err(|e| fail(None, format!("quiescence commit failed: {e}")))?;
        }
    }
    let (lse, lce) = (state.engine.manager().lse(), state.engine.manager().lce());
    for pass in 0..2 {
        for epoch in lse..=lce {
            let snapshot = Snapshot::committed(epoch);
            let (comparisons, folded) = compare_merges(
                &state.engine,
                &snapshot,
                None,
                &format!("sweep#{pass}"),
                &mut state.rng,
            )?;
            state.comparisons += comparisons;
            state.partials_folded += folded;
        }
    }
    Ok(AggReport {
        ops_executed: schedule.ops.len(),
        comparisons: state.comparisons,
        partials_folded: state.partials_folded,
    })
}

/// Shrinks a failing schedule against [`run_agg_schedule`] — prefix
/// bisection, then greedy op removal, both valid because the agg
/// executor is deterministic and treats dangling slot references as
/// no-ops — and dumps a replayable `.seed` artifact. `None` when the
/// schedule does not fail.
pub fn minimize_agg(schedule: &Schedule) -> Option<(Schedule, Divergence, PathBuf)> {
    let original = run_agg_schedule(schedule).err()?;
    let sub = |ops: Vec<LogicalOp>| Schedule {
        seed: schedule.seed,
        ops,
    };
    let mut lo = 0usize;
    let mut hi = schedule.ops.len();
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if run_agg_schedule(&sub(schedule.ops[..mid].to_vec())).is_err() {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let mut ops = schedule.ops[..hi].to_vec();
    loop {
        let mut changed = false;
        let mut i = ops.len();
        while i > 0 {
            i -= 1;
            let mut candidate = ops.clone();
            candidate.remove(i);
            if run_agg_schedule(&sub(candidate.clone())).is_err() {
                ops = candidate;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let minimized = sub(ops);
    let divergence = run_agg_schedule(&minimized).err().unwrap_or(original);
    let dir = artifact_dir();
    fs::create_dir_all(&dir).expect("artifact dir is writable");
    let path = dir.join(format!("agg-min-seed{}.seed", minimized.seed));
    let mut text = String::new();
    text.push_str("# aosi-agg-oracle minimized failing schedule\n");
    text.push_str(&format!("# divergence: {divergence}\n"));
    text.push_str("# replay: AOSI_AGG_REPLAY=<this file> cargo test -p oracle --test agg_oracle\n");
    text.push_str(&minimized.to_text());
    fs::write(&path, text).expect("artifact file is writable");
    Some((minimized, divergence, path))
}

/// Re-runs an agg-oracle `.seed` artifact (or any schedule text;
/// comment lines are ignored by the schedule parser's caller here).
pub fn replay_agg_artifact(path: &Path) -> Result<AggReport, Divergence> {
    let text = fs::read_to_string(path).map_err(|e| {
        fail(
            None,
            format!("cannot read artifact {}: {e}", path.display()),
        )
    })?;
    let body: String = text
        .lines()
        .filter(|line| {
            let t = line.trim();
            !t.starts_with('#') && !t.starts_with("mode ") && !t.starts_with("inject ")
        })
        .map(|line| format!("{line}\n"))
        .collect();
    let schedule = Schedule::from_text(&body).map_err(|detail| fail(None, detail))?;
    run_agg_schedule(&schedule)
}

/// Generates the schedule for `seed`, runs the merge oracle over it,
/// and — on divergence — minimizes, dumps an artifact, and panics
/// with reproduction instructions. The corpus test is a loop over
/// this.
pub fn check_agg_seed(seed: u64, cfg: &workload::ops::GenConfig) -> AggReport {
    let schedule = Schedule::generate(seed, cfg);
    match run_agg_schedule(&schedule) {
        Ok(report) => report,
        Err(divergence) => {
            let where_to = match minimize_agg(&schedule) {
                Some((min, min_divergence, artifact)) => format!(
                    "minimized to {} ops, artifact: {} ({min_divergence})",
                    min.ops.len(),
                    artifact.display()
                ),
                None => "failure did not reproduce under minimization".to_string(),
            };
            panic!(
                "merge oracle divergence: seed {seed}: {divergence}\n{where_to}\n\
                 replay: AOSI_AGG_SEEDS={seed} cargo test -p oracle --test agg_oracle"
            );
        }
    }
}
