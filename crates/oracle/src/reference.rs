//! The MVCC reference model: replay a committed schedule, read any
//! epoch.
//!
//! The harness records every *committed* logical operation as a
//! [`CommittedOp`] tagged with its AOSI epoch. [`Replay::build`]
//! replays those ops in epoch order into a fresh `MvccStore` — each
//! op is one serial MVCC transaction — and records the resulting
//! `epoch -> commit_ts` mapping, so any committed AOSI snapshot epoch
//! `E` translates to "the MVCC timestamp of the last committed op
//! with epoch <= E".
//!
//! Why epoch-order replay is sound here (and would not be in
//! general): a committed AOSI snapshot (empty deps) sees exactly the
//! epochs `<= E`, and the schedule generator guarantees partition
//! deletes never overlap open append transactions (deterministic
//! mode orders them apart at generation time; stress mode holds a
//! begin-to-commit lock — see the `workload::ops` docs). Under that
//! constraint a delete at epoch `k` kills precisely the committed
//! matching rows with epoch `< k`, which is what replaying it as a
//! row-wise MVCC delete at its epoch position computes. Without it,
//! AOSI's brick-existence semantics (a delete marks only bricks
//! present at delete time) would diverge from any row-value model.
//!
//! The store is rebuilt from the log on every checkpoint rather than
//! maintained incrementally: schedules are small and an immutable
//! derivation from the log cannot drift out of sync with it.

use std::collections::BTreeSet;

use columnar::{ColumnType, Field, Row, Schema};
use mvcc_baseline::{MvccStore, MvccTxnManager};

/// A committed logical operation, tagged with its AOSI epoch.
#[derive(Clone, Debug)]
pub enum CommittedOp {
    /// Rows committed at `epoch` (one load or one explicit txn).
    Rows {
        /// The committing epoch.
        epoch: u64,
        /// The rows, in append order.
        rows: Vec<Row>,
    },
    /// A partition delete committed at `epoch` covering `days`.
    Delete {
        /// The committing epoch.
        epoch: u64,
        /// Exact day values deleted (whole buckets).
        days: Vec<i64>,
    },
}

impl CommittedOp {
    /// The op's committing epoch.
    pub fn epoch(&self) -> u64 {
        match self {
            CommittedOp::Rows { epoch, .. } | CommittedOp::Delete { epoch, .. } => *epoch,
        }
    }
}

fn reference_schema() -> Schema {
    Schema::new(vec![
        Field::new("region", ColumnType::Str),
        Field::new("day", ColumnType::I64),
        Field::new("likes", ColumnType::I64),
        Field::new("score", ColumnType::F64),
    ])
}

/// A replayed reference store plus the epoch -> commit_ts mapping.
pub struct Replay {
    store: MvccStore,
    /// `(epoch, commit_ts)` sorted by epoch.
    ts_by_epoch: Vec<(u64, u64)>,
}

impl Replay {
    /// Replays `log` (any order; sorted by epoch internally) into a
    /// fresh MVCC store.
    pub fn build(log: &[CommittedOp]) -> Replay {
        let mut sorted: Vec<&CommittedOp> = log.iter().collect();
        sorted.sort_by_key(|op| op.epoch());
        let mut store = MvccStore::new(reference_schema(), MvccTxnManager::new());
        let mut ts_by_epoch = Vec::with_capacity(sorted.len());
        for op in sorted {
            let mut txn = store.manager().begin();
            match op {
                CommittedOp::Rows { rows, .. } => {
                    for row in rows {
                        store.insert(&mut txn, row);
                    }
                }
                CommittedOp::Delete { days, .. } => {
                    let (visible, _) = store.scan(&txn);
                    for row in visible.iter_ones() {
                        let day = store
                            .get(row, 1)
                            .and_then(|v| v.as_i64())
                            .expect("day column is I64");
                        if days.contains(&day) {
                            store
                                .delete(&mut txn, row)
                                .expect("serial replay cannot conflict");
                        }
                    }
                }
            }
            let ts = store
                .commit(&mut txn)
                .expect("serial replay cannot conflict");
            ts_by_epoch.push((op.epoch(), ts));
        }
        Replay { store, ts_by_epoch }
    }

    /// MVCC timestamp equivalent to committed AOSI epoch `epoch`:
    /// the commit_ts of the last committed op at or below it (0 — the
    /// empty store — when nothing that early committed).
    pub fn ts_for_epoch(&self, epoch: u64) -> u64 {
        match self.ts_by_epoch.partition_point(|(e, _)| *e <= epoch) {
            0 => 0,
            n => self.ts_by_epoch[n - 1].1,
        }
    }

    /// Decoded rows visible at committed AOSI epoch `epoch`.
    pub fn rows_at_epoch(&self, epoch: u64) -> Vec<Row> {
        self.store.rows_at(self.ts_for_epoch(epoch))
    }
}

fn sees(snapshot_epoch: u64, deps: &BTreeSet<u64>, j: u64) -> bool {
    j <= snapshot_epoch && (j == snapshot_epoch || !deps.contains(&j))
}

/// Direct model of an *in-transaction* read: the rows a RW
/// transaction at `epoch` with dependency set `deps` sees, given the
/// committed log plus its `own` uncommitted appends so far. The MVCC
/// timestamp store cannot express a deps-bearing snapshot (it has no
/// notion of "skip this one earlier transaction"), so in-txn reads
/// diff against this log-level model instead.
///
/// A committed delete `D` kills a visible row iff the snapshot sees
/// `D` and the row's epoch is below `D`'s; `deps`-excluded epochs
/// contribute no rows at all. Own rows carry the reader's epoch, so
/// no visible delete can outrank them (a delete with a higher epoch
/// is never in the snapshot; see the straggler discussion in
/// `workload::ops`).
///
/// Committed log entries at the reader's *own* epoch are ignored:
/// `own` is the authoritative record of what the transaction had
/// appended at read time. The stress executor validates in-txn reads
/// post-hoc against the final log, where the reader's transaction has
/// itself committed — trusting the log there would double-count `own`
/// and credit the read with rows appended after it happened.
pub fn model_txn_rows(
    log: &[CommittedOp],
    snapshot_epoch: u64,
    deps: &BTreeSet<u64>,
    own: &[Row],
) -> Vec<Row> {
    let mut tagged: Vec<(u64, &Row)> = Vec::new();
    let mut sorted: Vec<&CommittedOp> = log.iter().collect();
    sorted.sort_by_key(|op| op.epoch());
    for op in &sorted {
        if let CommittedOp::Rows { epoch, rows } = op {
            if *epoch != snapshot_epoch && sees(snapshot_epoch, deps, *epoch) {
                tagged.extend(rows.iter().map(|r| (*epoch, r)));
            }
        }
    }
    tagged.extend(own.iter().map(|r| (snapshot_epoch, r)));
    for op in &sorted {
        if let CommittedOp::Delete { epoch, days } = op {
            if sees(snapshot_epoch, deps, *epoch) {
                tagged.retain(|(row_epoch, row)| {
                    let day = row[1].as_i64().unwrap_or(i64::MIN);
                    !(*row_epoch < *epoch && days.contains(&day))
                });
            }
        }
    }
    tagged.into_iter().map(|(_, r)| r.clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use columnar::Value;

    fn r(region: &str, day: i64, likes: i64) -> Row {
        vec![
            Value::Str(region.into()),
            Value::I64(day),
            Value::I64(likes),
            Value::F64(0.0),
        ]
    }

    #[test]
    fn replay_maps_epochs_to_snapshots() {
        let log = vec![
            CommittedOp::Rows {
                epoch: 1,
                rows: vec![r("r0", 1, 10), r("r1", 5, 20)],
            },
            CommittedOp::Delete {
                epoch: 3,
                days: vec![4, 5, 6, 7],
            },
            CommittedOp::Rows {
                epoch: 5,
                rows: vec![r("r2", 5, 30)],
            },
        ];
        let replay = Replay::build(&log);
        assert_eq!(replay.ts_for_epoch(0), 0);
        assert_eq!(replay.rows_at_epoch(0).len(), 0);
        assert_eq!(replay.rows_at_epoch(1).len(), 2);
        // Epoch 2 has no committed op: same snapshot as epoch 1.
        assert_eq!(replay.ts_for_epoch(2), replay.ts_for_epoch(1));
        // The delete at 3 kills the day-5 row from epoch 1.
        assert_eq!(replay.rows_at_epoch(3), vec![r("r0", 1, 10)]);
        assert_eq!(replay.rows_at_epoch(4), vec![r("r0", 1, 10)]);
        // The day-5 row appended at epoch 5 postdates the delete.
        assert_eq!(replay.rows_at_epoch(5).len(), 2);
    }

    #[test]
    fn txn_model_applies_deps_and_own_rows() {
        let log = vec![
            CommittedOp::Rows {
                epoch: 1,
                rows: vec![r("r0", 1, 10)],
            },
            CommittedOp::Rows {
                epoch: 2,
                rows: vec![r("r1", 2, 20)],
            },
            CommittedOp::Delete {
                epoch: 3,
                days: vec![0, 1, 2, 3],
            },
        ];
        // Snapshot at 4 depending on (i.e. excluding) 2: sees epoch 1
        // and the delete at 3 (which kills everything matching), plus
        // its own day-9 row.
        let deps: BTreeSet<u64> = [2u64].into_iter().collect();
        let own = vec![r("r5", 9, 50)];
        let rows = model_txn_rows(&log, 4, &deps, &own);
        assert_eq!(rows, vec![r("r5", 9, 50)]);
        // Without the delete in view (snapshot at 2, no deps): epoch 1
        // visible from the log; the log's epoch-2 entry is the
        // reader's *own* commit and is sourced from `own` instead —
        // with `own` empty it models a read before the append.
        let rows = model_txn_rows(&log, 2, &BTreeSet::new(), &[]);
        assert_eq!(rows, vec![r("r0", 1, 10)]);
        let rows = model_txn_rows(&log, 2, &BTreeSet::new(), &[r("r1", 2, 20)]);
        assert_eq!(rows.len(), 2);
    }
}
