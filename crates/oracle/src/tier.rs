//! Tiered-storage torture: the crash harness re-run with a cold tier
//! under a tiny memory budget, so every boundary sweep also cuts
//! power in the middle of spills, evictions, and reloads.
//!
//! The cold tier's durability story rests on one claim: spill
//! snapshots are a *redundant* copy of history the WAL already
//! retains, so no crash point during spill/evict/reload can lose
//! acknowledged data — recovery replays the round chain and never
//! reads a snapshot. This module checks that claim the same way
//! [`crate::crash`] checks the flush path: route *all* durability
//! syscalls — flush rounds in `/sim/wal` and brick snapshots in the
//! sibling `/sim/tier` — through one [`wal::SimFs`], enumerate its
//! mutating syscalls, and re-run the schedule once per boundary with
//! a power cut at exactly that syscall.
//!
//! One seeded run ([`run_tier_torture`]) executes three phases:
//!
//! 1. **Census** — the schedule runs on a tiered engine (budget
//!    `TierTortureConfig::budget_bytes`, small enough that clean
//!    bricks are constantly evicted), differentially checked against
//!    the epoch-replay reference at every `CheckNow` — those queries
//!    fault evicted bricks back in, so bit-identity *across the
//!    evict/reload cycle* is what is being compared. An epilogue
//!    forces the cycle even on schedules that never flushed mid-run:
//!    terminal flush → eviction sweep → full query check (reloads) →
//!    second sweep. The census then asserts bounded residency (the
//!    sweep got under budget, or evicted every clean-cold byte) and
//!    runs the clean-shutdown and power-cut-fork recoveries into
//!    engines *without* a tier: recovery must never depend on
//!    snapshot files.
//! 2. **Boundary sweep** — one fresh run per census syscall: cut,
//!    reboot, recover into a fresh *tiered* engine whose store wipes
//!    the stale snapshot dir on open, assert nothing acknowledged was
//!    lost and the chain is clean, re-query every epoch against the
//!    reference, then resume the controller on the same disk, finish
//!    the schedule + epilogue, and recover once more — into a plain
//!    engine, proving the tier never became load-bearing. Spill
//!    syscall counts can drift a little between runs (eviction
//!    ranking ties break on scan-recency clocks fed by parallel scan
//!    tasks), so a boundary whose cut never fires is treated as a
//!    clean run, not an enumeration error.
//! 3. **Media probes** — seeded single-bit corruption of one durable
//!    snapshot, then deletion of another: queries that need those
//!    bricks must fail with the typed reload error — never panic,
//!    never return rows from damaged bytes — and the failure must be
//!    counted in [`cubrick::TierStats::reload_failures`].
//!
//! [`check_tier_seed`] mirrors [`crate::crash::check_crash_seed`]:
//! failures are minimized and dumped as `.seed` artifacts replayable
//! via `AOSI_TIER_REPLAY`; the test-suite entry points honor
//! `AOSI_TIER_SEEDS`.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use aosi::{Snapshot, Txn};
use cluster::ReplicationTracker;
use columnar::Row;
use cubrick::{Engine, ScanConfig};
use wal::{is_power_cut, recover_into_with, FlushController, RecoverOptions, SimFs, WalBrickStore,
    WalError, WalFs};
use workload::ops::{GenConfig, LogicalOp, Schedule, ORACLE_CUBE};

use crate::checks::{build_query, diff, eval_rows, normalize, NUM_QUERIES};
use crate::crash::{failure, sim_dir, splitmix64, stop_failure, sweep_recovered, Stop,
    TortureFailure};
use crate::harness::{day_filter, days_of, engine_with_cube};
use crate::minimize::artifact_dir;
use crate::reference::{CommittedOp, Replay};

/// Node id of the single simulated node.
const NODE: u64 = 1;
/// Salt mixed into the schedule seed for filesystem randomness —
/// distinct from the crash harness's salt so the two tortures explore
/// different torn-write prefixes for the same seed.
const TIER_SEED_SALT: u64 = 0x71e2_c01d_b41c_5a17;

/// The snapshot directory: a *sibling* of the WAL chain dir. The
/// flush controller deletes unknown files in its own directory, so
/// snapshots must never live there.
fn tier_dir() -> PathBuf {
    PathBuf::from("/sim/tier")
}

/// Knobs for one tier-torture run.
#[derive(Clone, Debug)]
pub struct TierTortureConfig {
    /// Workload shape (re-executed once per crash boundary).
    pub gen: GenConfig,
    /// The cold-tier memory budget. Small relative to the workload's
    /// brick bytes, so eviction sweeps always have work.
    pub budget_bytes: usize,
    /// Whether to run the snapshot corruption/deletion probes.
    pub media_probes: bool,
}

impl Default for TierTortureConfig {
    fn default() -> Self {
        TierTortureConfig {
            gen: GenConfig {
                ops: 24,
                slots: 2,
                max_batch: 4,
            },
            budget_bytes: 1024,
            media_probes: true,
        }
    }
}

/// Counters from a clean tier-torture run.
#[derive(Clone, Copy, Debug, Default)]
pub struct TierTortureReport {
    /// Crash boundaries enumerated (mutating syscalls of the census
    /// run — WAL rounds and snapshot spills alike).
    pub crash_points: u64,
    /// Boundaries whose cut never fired on the replay run (spill
    /// ordering drift); they still ran the clean-recovery checks.
    pub boundaries_not_fired: u64,
    /// Round files the census run flushed.
    pub rounds_flushed: u64,
    /// Successful spills across the census run (epilogue included).
    pub spills: u64,
    /// Successful reloads across the census run (epilogue included).
    pub reloads: u64,
    /// Recoveries performed across all phases.
    pub recoveries: u64,
    /// Individual query comparisons against the reference.
    pub comparisons: u64,
    /// Media probes executed (0..=2).
    pub media_probes: usize,
}

// ---------------------------------------------------------------
// Executor
// ---------------------------------------------------------------

struct Slot {
    txn: Txn,
    rows: Vec<Row>,
}

/// Builds a fresh engine with tiered storage over `fs`: snapshot
/// store in [`tier_dir`] (wiping stale snapshots), a single shard so
/// spill ordering stays deterministic enough for boundary replay.
/// The aggregate cache is disabled — it can (correctly) answer for a
/// spilled brick without touching its snapshot, which would let the
/// media probes pass without ever exercising the reload path; the
/// cache-serve path has its own unit coverage in `cubrick::tier`.
fn tiered_engine(fs: &Arc<SimFs>, budget_bytes: usize) -> Result<Engine, Stop> {
    let walfs: Arc<dyn WalFs> = fs.clone();
    let store = match WalBrickStore::open_with(walfs, tier_dir()) {
        Ok(store) => store,
        Err(e) if is_power_cut(&e) => return Err(Stop::PowerCut),
        Err(e) => return Err(Stop::Fail(format!("tier store open failed: {e}"))),
    };
    let engine = Engine::new(1)
        .with_scan_config(ScanConfig {
            agg_cache_capacity: 0,
            ..ScanConfig::default()
        })
        .with_tiered_storage(Box::new(store), budget_bytes);
    engine
        .create_cube(workload::ops::oracle_schema())
        .map_err(|e| Stop::Fail(format!("oracle schema registers: {e}")))?;
    Ok(engine)
}

/// Drives a schedule against one tiered engine + flush controller on
/// a simulated filesystem. The same shape as the crash harness's
/// executor, with one difference: a power cut can fire inside an
/// eviction sweep, where the engine deliberately swallows the spill
/// failure (a failed spill leaves the brick resident). The executor
/// therefore checks `fs.crashed()` after every op instead of relying
/// on the op's own error to carry the cut.
struct TierTorture {
    fs: Arc<SimFs>,
    engine: Engine,
    tracker: ReplicationTracker,
    ctl: FlushController,
    slots: Vec<Option<Slot>>,
    log: Vec<CommittedOp>,
    /// Highest epoch a *successful* flush acknowledged as durable.
    acked: u64,
    comparisons: u64,
    rounds_flushed: u64,
}

impl TierTorture {
    fn open(
        fs: &Arc<SimFs>,
        engine: Engine,
        log: Vec<CommittedOp>,
        acked: u64,
        num_slots: usize,
    ) -> Result<TierTorture, Stop> {
        let walfs: Arc<dyn WalFs> = fs.clone();
        let ctl = match FlushController::with_fs(walfs, sim_dir(), NODE) {
            Ok(ctl) => ctl,
            Err(e) if is_power_cut(&e) => return Err(Stop::PowerCut),
            Err(e) => return Err(Stop::Fail(format!("controller open failed: {e}"))),
        };
        Ok(TierTorture {
            fs: fs.clone(),
            engine,
            tracker: ReplicationTracker::new(1),
            ctl,
            slots: (0..num_slots).map(|_| None).collect(),
            log,
            acked,
            comparisons: 0,
            rounds_flushed: 0,
        })
    }

    fn apply(&mut self, i: usize, op: &LogicalOp) -> Result<(), Stop> {
        match op {
            LogicalOp::Begin { slot } => {
                if *slot < self.slots.len() && self.slots[*slot].is_none() {
                    self.slots[*slot] = Some(Slot {
                        txn: self.engine.begin(),
                        rows: Vec::new(),
                    });
                }
                Ok(())
            }
            LogicalOp::Append { slot, rows } => self.append(i, *slot, rows),
            LogicalOp::Commit { slot } => self.commit_slot(i, *slot),
            LogicalOp::Rollback { slot } => self.rollback_slot(i, *slot),
            LogicalOp::Load { rows } => self.load(i, rows),
            LogicalOp::DeleteDays { buckets } => self.delete(i, buckets),
            LogicalOp::Purge => {
                self.engine.purge();
                Ok(())
            }
            LogicalOp::Flush => self.flush(i),
            LogicalOp::CheckNow => self.check_now(i),
            LogicalOp::CheckAsOf { .. } | LogicalOp::CheckTxn { .. } => Ok(()),
        }
    }

    fn append(&mut self, i: usize, slot: usize, rows: &[Row]) -> Result<(), Stop> {
        let Some(open) = self.slots.get_mut(slot).and_then(Option::as_mut) else {
            return Ok(());
        };
        match self.engine.append(ORACLE_CUBE, rows, &open.txn) {
            Ok((accepted, 0)) if accepted == rows.len() => {
                open.rows.extend_from_slice(rows);
                Ok(())
            }
            Ok((accepted, rejected)) => Err(Stop::Fail(format!(
                "op #{i}: generated rows rejected: accepted {accepted}, rejected {rejected}"
            ))),
            Err(e) => Err(Stop::Fail(format!("op #{i}: append failed: {e}"))),
        }
    }

    fn commit_slot(&mut self, i: usize, slot: usize) -> Result<(), Stop> {
        let Some(open) = self.slots.get_mut(slot).and_then(Option::take) else {
            return Ok(());
        };
        self.engine
            .commit(&open.txn)
            .map_err(|e| Stop::Fail(format!("op #{i}: commit failed: {e}")))?;
        self.log.push(CommittedOp::Rows {
            epoch: open.txn.epoch(),
            rows: open.rows,
        });
        Ok(())
    }

    fn rollback_slot(&mut self, i: usize, slot: usize) -> Result<(), Stop> {
        let Some(open) = self.slots.get_mut(slot).and_then(Option::take) else {
            return Ok(());
        };
        let removed = self
            .engine
            .rollback(&open.txn)
            .map_err(|e| Stop::Fail(format!("op #{i}: rollback failed: {e}")))?;
        if removed != open.rows.len() as u64 {
            return Err(Stop::Fail(format!(
                "op #{i}: rollback reclaimed {removed} rows of {}",
                open.rows.len()
            )));
        }
        Ok(())
    }

    fn load(&mut self, i: usize, rows: &[Row]) -> Result<(), Stop> {
        let txn = self.engine.begin();
        match self.engine.append(ORACLE_CUBE, rows, &txn) {
            Ok((_, 0)) => {}
            Ok((_, rejected)) => {
                return Err(Stop::Fail(format!(
                    "op #{i}: load rejected {rejected} generated rows"
                )))
            }
            Err(e) => return Err(Stop::Fail(format!("op #{i}: load failed: {e}"))),
        }
        self.engine
            .commit(&txn)
            .map_err(|e| Stop::Fail(format!("op #{i}: load commit failed: {e}")))?;
        self.log.push(CommittedOp::Rows {
            epoch: txn.epoch(),
            rows: rows.to_vec(),
        });
        Ok(())
    }

    fn delete(&mut self, i: usize, buckets: &[u32]) -> Result<(), Stop> {
        for slot in 0..self.slots.len() {
            self.commit_slot(i, slot)?;
        }
        let days = days_of(buckets);
        let (epoch, _marked) = self
            .engine
            .delete_where(ORACLE_CUBE, &[day_filter(&days)])
            .map_err(|e| Stop::Fail(format!("op #{i}: delete_where failed: {e}")))?;
        self.log.push(CommittedOp::Delete { epoch, days });
        Ok(())
    }

    fn flush(&mut self, i: usize) -> Result<(), Stop> {
        match self.ctl.flush_round(&self.engine, &self.tracker) {
            Ok(outcome) => {
                if outcome.bytes_written > 0 {
                    self.rounds_flushed += 1;
                }
                self.acked = self.acked.max(self.ctl.flushed_through());
                Ok(())
            }
            Err(WalError::Io(e)) if is_power_cut(&e) => Err(Stop::PowerCut),
            Err(e) => Err(Stop::Fail(format!("op #{i}: flush round failed: {e}"))),
        }
    }

    /// Live differential check at the current committed snapshot —
    /// these queries fault evicted bricks back in, so each comparison
    /// covers the full evict/reload round trip.
    fn check_now(&mut self, i: usize) -> Result<(), Stop> {
        let claimed = self.engine.manager().begin_read().snapshot().epoch();
        let snap = Snapshot::committed(claimed);
        let replay = Replay::build(&self.log);
        for idx in 0..NUM_QUERIES {
            let result = self
                .engine
                .query_at(ORACLE_CUBE, &build_query(idx), &snap)
                .map_err(|e| Stop::Fail(format!("op #{i}: check q{idx} failed: {e}")))?;
            let aosi = normalize(&result);
            let reference = eval_rows(&replay.rows_at_epoch(claimed), idx);
            self.comparisons += 1;
            if let Some(d) = diff(&aosi, &reference) {
                return Err(Stop::Fail(format!(
                    "op #{i}: check q{idx} at epoch {claimed}: {d}"
                )));
            }
        }
        Ok(())
    }

    /// Runs `ops[resume_at..]`, the terminal flush, and the tier
    /// epilogue (evict → query-reload check → evict again), so even a
    /// schedule with no mid-run flush exercises the spill/reload
    /// cycle — and so the boundary enumeration covers cuts *inside*
    /// eviction sweeps. Returns the op index just past the cut when
    /// the power cut fires ("op index" extends past the schedule for
    /// the terminal flush and epilogue steps).
    fn run(&mut self, ops: &[LogicalOp], resume_at: usize) -> Result<Option<usize>, Stop> {
        for (i, op) in ops.iter().enumerate().skip(resume_at) {
            match self.step(|t| t.apply(i, op)) {
                Ok(()) => {}
                Err(Stop::PowerCut) => return Ok(Some(i + 1)),
                Err(stop) => return Err(stop),
            }
        }
        let mut mark = ops.len();
        for part in [0, 1, 2, 3] {
            let r = match part {
                0 => self.step(|t| t.flush(mark)),
                1 | 3 => self.step(|t| {
                    // The sweep itself reports spill failures through
                    // counters, not errors; the crashed() check in
                    // step() is what notices a cut in here.
                    t.engine.enforce_tier_budget();
                    Ok(())
                }),
                _ => self.step(|t| t.check_now(mark)),
            };
            mark += 1;
            match r {
                Ok(()) => {}
                Err(Stop::PowerCut) => return Ok(Some(mark)),
                Err(stop) => return Err(stop),
            }
        }
        Ok(None)
    }

    /// Runs one op and folds "the power died somewhere inside it"
    /// into [`Stop::PowerCut`]: after the cut every syscall fails, so
    /// an op's own error (a reload that could not read its snapshot,
    /// a swallowed spill failure followed by a failing check) is the
    /// cut's shadow, not a bug.
    fn step(&mut self, f: impl FnOnce(&mut Self) -> Result<(), Stop>) -> Result<(), Stop> {
        let r = f(self);
        if self.fs.crashed() {
            return Err(Stop::PowerCut);
        }
        r
    }
}

// ---------------------------------------------------------------
// The torture run
// ---------------------------------------------------------------

/// Runs the full tier torture for one schedule. `Ok` means every
/// crash boundary recovered to a complete flushed prefix with no help
/// from snapshot files, residency stayed bounded, and damaged
/// snapshots degraded to typed errors.
pub fn run_tier_torture(
    schedule: &Schedule,
    cfg: &TierTortureConfig,
) -> Result<TierTortureReport, TortureFailure> {
    let fs_seed = schedule.seed ^ TIER_SEED_SALT;
    let opts = RecoverOptions::default();
    let num_slots = schedule
        .ops
        .iter()
        .filter_map(|op| match op {
            LogicalOp::Begin { slot }
            | LogicalOp::Append { slot, .. }
            | LogicalOp::Commit { slot }
            | LogicalOp::Rollback { slot }
            | LogicalOp::CheckTxn { slot } => Some(*slot + 1),
            _ => None,
        })
        .max()
        .unwrap_or(1);
    let mut report = TierTortureReport::default();

    // ----- Phase 1: census ------------------------------------
    let census_fs = Arc::new(SimFs::new(fs_seed));
    let engine = tiered_engine(&census_fs, cfg.budget_bytes).map_err(|s| stop_failure(s, None))?;
    let mut census = TierTorture::open(&census_fs, engine, Vec::new(), 0, num_slots)
        .map_err(|s| stop_failure(s, None))?;
    if let Some(i) = census
        .run(&schedule.ops, 0)
        .map_err(|s| stop_failure(s, None))?
    {
        return Err(failure(
            None,
            format!("census run hit a power cut at op {i} with no cut configured"),
        ));
    }
    report.crash_points = census_fs.mutating_ops();
    report.rounds_flushed = census.rounds_flushed;
    report.comparisons += census.comparisons;
    if let Some(stats) = census.engine.tier_stats() {
        report.spills = stats.spills;
        report.reloads = stats.reloads;
        if stats.spill_failures != 0 || stats.reload_failures != 0 {
            return Err(failure(
                None,
                format!(
                    "census on a healthy filesystem had {} spill and {} reload failure(s)",
                    stats.spill_failures, stats.reload_failures
                ),
            ));
        }
    }
    // Bounded residency: with everything flushed (clean-cold), one
    // more sweep must either reach the budget or have evicted every
    // eligible byte trying.
    let sweep = census.engine.enforce_tier_budget();
    if sweep.failed != 0 {
        return Err(failure(
            None,
            format!("{} spill(s) failed on a healthy filesystem", sweep.failed),
        ));
    }
    if sweep.resident_bytes_after > cfg.budget_bytes as u64
        && sweep.resident_bytes_after > sweep.resident_bytes_before - sweep.eligible_bytes
    {
        return Err(failure(
            None,
            format!(
                "residency is unbounded: {} bytes resident against a budget of {} with \
                 {} clean-cold bytes still eligible",
                sweep.resident_bytes_after, cfg.budget_bytes, sweep.eligible_bytes
            ),
        ));
    }
    let census_acked = census.acked;
    let census_log = census.log;

    // Clean-shutdown recovery into an engine *without* a tier: the
    // WAL alone must restore exactly what was acknowledged — spill
    // snapshots are a redundant copy, never a dependency.
    let live = engine_with_cube();
    let rep = recover_into_with(census_fs.as_ref(), &sim_dir(), &live, &opts)
        .map_err(|e| failure(None, format!("clean-shutdown recovery failed: {e}")))?;
    report.recoveries += 1;
    if rep.recovered_epoch != census_acked {
        return Err(failure(
            None,
            format!(
                "clean-shutdown recovery restored through epoch {} but the controller \
                 acknowledged {census_acked}",
                rep.recovered_epoch
            ),
        ));
    }
    if rep.gaps_detected != 0 || rep.rounds_skipped != 0 {
        return Err(failure(
            None,
            format!(
                "clean shutdown left a dirty chain: {} gap(s), {} skipped round(s)",
                rep.gaps_detected, rep.rounds_skipped
            ),
        ));
    }
    report.comparisons += sweep_recovered(
        &live,
        &census_log,
        rep.recovered_epoch,
        "clean-shutdown recovery (no tier)",
        None,
    )?;

    // Power-safety: if power died right now — mid-workload state,
    // bricks spilled — everything acknowledged must still recover
    // from the WAL of the dead image.
    let dead = census_fs.fork();
    dead.crash_now();
    let durable = engine_with_cube();
    let rep = recover_into_with(&dead, &sim_dir(), &durable, &opts)
        .map_err(|e| failure(None, format!("power-safe recovery failed: {e}")))?;
    report.recoveries += 1;
    if rep.recovered_epoch < census_acked {
        return Err(failure(
            None,
            format!(
                "acknowledged rounds are not power-safe under tiering: recovered through \
                 epoch {} but {census_acked} was acknowledged durable",
                rep.recovered_epoch
            ),
        ));
    }
    report.comparisons += sweep_recovered(
        &durable,
        &census_log,
        rep.recovered_epoch,
        "power-safe recovery (no tier)",
        None,
    )?;

    // ----- Phase 2: one power cut per boundary ----------------
    for cut in 0..report.crash_points {
        let fs = Arc::new(SimFs::with_cut(fs_seed, cut));
        let mut acked = 0u64;
        let mut log: Vec<CommittedOp> = Vec::new();
        let mut resume_at = 0usize;
        let mut fired = true;
        let opened = tiered_engine(&fs, cfg.budget_bytes)
            .and_then(|engine| TierTorture::open(&fs, engine, Vec::new(), 0, num_slots));
        match opened {
            // The earliest boundaries are the store/controller setup:
            // nothing ran.
            Err(Stop::PowerCut) => {}
            Err(stop) => return Err(stop_failure(stop, Some(cut))),
            Ok(mut t) => {
                match t.run(&schedule.ops, 0) {
                    Ok(Some(i)) => resume_at = i,
                    // Spill-count drift between runs: this replay
                    // needed fewer syscalls than the census, so the
                    // cut never fired. Still a valid (clean) history
                    // — run the recovery checks and move on.
                    Ok(None) => {
                        fired = false;
                        report.boundaries_not_fired += 1;
                    }
                    Err(stop) => return Err(stop_failure(stop, Some(cut))),
                }
                report.comparisons += t.comparisons;
                acked = t.acked;
                log = t.log;
            }
        }
        fs.reboot();

        // First recovery, into a fresh *tiered* engine: opening the
        // store wipes the dead run's stale snapshots, then the WAL
        // replays — recovered history must not be short of anything
        // acknowledged, cuts-during-spill included.
        let engine = match tiered_engine(&fs, cfg.budget_bytes) {
            Ok(engine) => engine,
            Err(stop) => return Err(stop_failure(stop, Some(cut))),
        };
        let rep = recover_into_with(fs.as_ref(), &sim_dir(), &engine, &opts)
            .map_err(|e| failure(Some(cut), format!("recovery after the cut failed: {e}")))?;
        report.recoveries += 1;
        if rep.recovered_epoch < acked {
            return Err(failure(
                Some(cut),
                format!(
                    "lost acknowledged history: recovered through epoch {} but the \
                     controller had acknowledged {acked}",
                    rep.recovered_epoch
                ),
            ));
        }
        if rep.gaps_detected != 0 || rep.rounds_skipped != 0 {
            return Err(failure(
                Some(cut),
                format!(
                    "a power cut alone must not dirty the chain: {} gap(s), {} \
                     skipped round(s)",
                    rep.gaps_detected, rep.rounds_skipped
                ),
            ));
        }
        let log: Vec<CommittedOp> = log
            .into_iter()
            .filter(|op| op.epoch() <= rep.recovered_epoch)
            .collect();
        report.comparisons += sweep_recovered(
            &engine,
            &log,
            rep.recovered_epoch,
            "post-cut recovery (tiered)",
            Some(cut),
        )?;
        if !fired {
            continue;
        }

        // Restart on the same disk and finish the workload on the
        // recovered tiered engine.
        let mut t = match TierTorture::open(&fs, engine, log, acked, num_slots) {
            Ok(t) => t,
            Err(stop) => return Err(stop_failure(stop, Some(cut))),
        };
        if t.ctl.flushed_through() != rep.recovered_epoch {
            return Err(failure(
                Some(cut),
                format!(
                    "controller resume disagrees with recovery: resumed at epoch {} \
                     but recovery restored through {}",
                    t.ctl.flushed_through(),
                    rep.recovered_epoch
                ),
            ));
        }
        match t.run(&schedule.ops, resume_at.min(schedule.ops.len())) {
            Ok(None) => {}
            Ok(Some(i)) => {
                return Err(failure(
                    Some(cut),
                    format!("a second power cut fired at op {i} after reboot"),
                ))
            }
            Err(stop) => return Err(stop_failure(stop, Some(cut))),
        }
        report.comparisons += t.comparisons;

        // Second recovery — into a plain engine again: the
        // crash-then-continue history must read back as one seamless
        // chain with the tier out of the picture entirely.
        let after = engine_with_cube();
        let rep2 = recover_into_with(fs.as_ref(), &sim_dir(), &after, &opts)
            .map_err(|e| failure(Some(cut), format!("post-continuation recovery failed: {e}")))?;
        report.recoveries += 1;
        if rep2.recovered_epoch < t.acked {
            return Err(failure(
                Some(cut),
                format!(
                    "continuation lost acknowledged history: recovered through {} \
                     but {} was acknowledged",
                    rep2.recovered_epoch, t.acked
                ),
            ));
        }
        if rep2.gaps_detected != 0 || rep2.rounds_skipped != 0 {
            return Err(failure(
                Some(cut),
                format!(
                    "crash-and-continue under tiering left {} gap(s) and {} \
                     unreachable round(s) on disk",
                    rep2.gaps_detected, rep2.rounds_skipped
                ),
            ));
        }
        let log: Vec<CommittedOp> = t
            .log
            .into_iter()
            .filter(|op| op.epoch() <= rep2.recovered_epoch)
            .collect();
        report.comparisons += sweep_recovered(
            &after,
            &log,
            rep2.recovered_epoch,
            "post-continuation recovery (no tier)",
            Some(cut),
        )?;
    }

    // ----- Phase 3: media probes ------------------------------
    // Damage durable snapshots on the census image and require typed,
    // counted failures from the queries that need them. Runs last:
    // it poisons the census filesystem.
    if cfg.media_probes {
        let engine = census.engine;
        let reload_failures_before = engine
            .tier_stats()
            .map(|s| s.reload_failures)
            .unwrap_or(0);
        // A flipped bit inside one snapshot.
        let files = census_fs.durable_files(&tier_dir());
        if let Some(victim) = files.first() {
            let h = splitmix64(fs_seed);
            if census_fs.flip_durable_bit(victim, h) {
                report.media_probes += 1;
                probe_queries_fail(&engine, "bit-flipped snapshot")?;
            }
        }
        // A deleted snapshot. Re-evict first — the failed probe
        // queries above reloaded every healthy brick.
        engine.enforce_tier_budget();
        let corrupt = files.first().cloned();
        let gone = census_fs
            .durable_files(&tier_dir())
            .into_iter()
            .find(|f| Some(f) != corrupt.as_ref());
        if let Some(victim) = gone {
            if census_fs.remove_everywhere(&victim) {
                report.media_probes += 1;
                probe_queries_fail(&engine, "deleted snapshot")?;
            }
        }
        if report.media_probes > 0 {
            let failures = engine
                .tier_stats()
                .map(|s| s.reload_failures)
                .unwrap_or(0);
            if failures <= reload_failures_before {
                return Err(failure(
                    None,
                    "media damage was not counted in tier reload_failures".to_string(),
                ));
            }
        }
    }

    Ok(report)
}

/// Runs the full query battery against damaged media and requires at
/// least one *typed* reload failure — and no panic, which would abort
/// the test process long before this check.
fn probe_queries_fail(engine: &Engine, what: &str) -> Result<(), TortureFailure> {
    let claimed = engine.manager().begin_read().snapshot().epoch();
    let snap = Snapshot::committed(claimed);
    let mut saw_reload_error = false;
    for idx in 0..NUM_QUERIES {
        if let Err(e) = engine.query_at(ORACLE_CUBE, &build_query(idx), &snap) {
            let msg = e.to_string();
            if msg.contains("reload of spilled") {
                saw_reload_error = true;
            } else {
                return Err(failure(
                    None,
                    format!("{what}: expected a tier reload error, got: {msg}"),
                ));
            }
        }
    }
    if !saw_reload_error {
        return Err(failure(
            None,
            format!("{what}: every query succeeded — damaged bytes were served or skipped"),
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------
// check_tier_seed + minimizer + artifacts
// ---------------------------------------------------------------

/// Generates the schedule for `seed`, runs the full tier torture, and
/// — on failure — minimizes the schedule, dumps a `.seed` artifact,
/// and panics with reproduction instructions.
pub fn check_tier_seed(seed: u64, cfg: &TierTortureConfig) -> TierTortureReport {
    let schedule = Schedule::generate(seed, &cfg.gen);
    match run_tier_torture(&schedule, cfg) {
        Ok(report) => report,
        Err(fail) => {
            let where_to = match minimize_tier(&schedule, cfg) {
                Some((min, min_fail, artifact)) => format!(
                    "minimized to {} ops, artifact: {} ({min_fail})",
                    min.ops.len(),
                    artifact.display()
                ),
                None => "failure did not reproduce under minimization".to_string(),
            };
            panic!(
                "tier-torture failure: seed {seed}: {fail}\n{where_to}\n\
                 replay: AOSI_TIER_SEEDS={seed} cargo test -p oracle --test tier_torture"
            );
        }
    }
}

fn tier_fails(schedule: &Schedule, cfg: &TierTortureConfig) -> Option<TortureFailure> {
    run_tier_torture(schedule, cfg).err()
}

/// Shrinks a failing schedule exactly like the crash minimizer:
/// prefix bisection, then greedy per-op removal, every candidate
/// re-running the entire boundary enumeration.
fn minimize_tier(
    schedule: &Schedule,
    cfg: &TierTortureConfig,
) -> Option<(Schedule, TortureFailure, PathBuf)> {
    let original = tier_fails(schedule, cfg)?;
    let sub = |ops: Vec<LogicalOp>| Schedule {
        seed: schedule.seed,
        ops,
    };

    let mut lo = 0usize;
    let mut hi = schedule.ops.len();
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if tier_fails(&sub(schedule.ops[..mid].to_vec()), cfg).is_some() {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let mut ops = schedule.ops[..hi].to_vec();

    loop {
        let mut changed = false;
        let mut i = ops.len();
        while i > 0 {
            i -= 1;
            let mut candidate = ops.clone();
            candidate.remove(i);
            if tier_fails(&sub(candidate.clone()), cfg).is_some() {
                ops = candidate;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let minimized = sub(ops);
    let fail = tier_fails(&minimized, cfg).unwrap_or(original);
    let artifact = write_tier_artifact(&minimized, cfg, &fail);
    Some((minimized, fail, artifact))
}

fn write_tier_artifact(
    schedule: &Schedule,
    cfg: &TierTortureConfig,
    fail: &TortureFailure,
) -> PathBuf {
    let dir = artifact_dir();
    fs::create_dir_all(&dir).expect("artifact dir is writable");
    let path = dir.join(format!("tier-seed{}.seed", schedule.seed));
    let mut text = String::new();
    text.push_str("# aosi tier-torture minimized failing schedule\n");
    text.push_str(&format!("# failure: {fail}\n"));
    text.push_str(
        "# replay: AOSI_TIER_REPLAY=<this file> cargo test -p oracle --test tier_torture\n",
    );
    text.push_str("mode tier-torture\n");
    text.push_str(&format!("budget {}\n", cfg.budget_bytes));
    text.push_str(&schedule.to_text());
    fs::write(&path, text).expect("artifact file is writable");
    path
}

/// Re-runs a tier-torture `.seed` artifact (schedule text with a
/// `mode tier-torture` header and an optional `budget <bytes>` line).
pub fn replay_tier_artifact(path: &Path) -> Result<TierTortureReport, TortureFailure> {
    let text = fs::read_to_string(path).map_err(|e| {
        failure(
            None,
            format!("cannot read artifact {}: {e}", path.display()),
        )
    })?;
    let mut cfg = TierTortureConfig::default();
    let mut rest = String::new();
    for line in text.lines() {
        let trimmed = line.trim();
        if let Some(mode) = trimmed.strip_prefix("mode ") {
            if mode.trim() != "tier-torture" {
                return Err(failure(
                    None,
                    format!(
                        "artifact {} is a {mode:?} schedule — replay it with the \
                         harness it names, not the tier torture",
                        path.display()
                    ),
                ));
            }
        } else if let Some(budget) = trimmed.strip_prefix("budget ") {
            cfg.budget_bytes = budget
                .trim()
                .parse()
                .map_err(|e| failure(None, format!("bad budget line: {e}")))?;
        } else {
            rest.push_str(line);
            rest.push('\n');
        }
    }
    let schedule = Schedule::from_text(&rest).map_err(|e| failure(None, e))?;
    run_tier_torture(&schedule, &cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TierTortureConfig {
        TierTortureConfig {
            gen: GenConfig {
                ops: 12,
                slots: 2,
                max_batch: 3,
            },
            budget_bytes: 256,
            media_probes: true,
        }
    }

    #[test]
    fn tiny_seed_survives_every_boundary() {
        let schedule = Schedule::generate(3, &tiny().gen);
        let report = run_tier_torture(&schedule, &tiny()).unwrap();
        assert!(
            report.crash_points >= 8,
            "tier syscalls should add boundaries, got {}",
            report.crash_points
        );
        assert!(report.rounds_flushed >= 1, "the terminal flush writes");
        assert!(
            report.spills >= 1 && report.reloads >= 1,
            "the epilogue forces at least one evict/reload cycle \
             (spills {}, reloads {})",
            report.spills,
            report.reloads
        );
        assert!(report.recoveries >= 2 + report.crash_points);
        assert!(report.comparisons > 0);
        assert!(
            report.media_probes >= 1,
            "a spilled snapshot should exist to damage"
        );
    }

    #[test]
    fn artifact_roundtrip_replays_clean_schedules() {
        let schedule = Schedule::generate(5, &tiny().gen);
        let dir = std::env::temp_dir().join(format!("aosi-tier-artifact-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.seed");
        let mut text = String::from("# comment\nmode tier-torture\nbudget 256\n");
        text.push_str(&schedule.to_text());
        fs::write(&path, text).unwrap();
        let report = replay_tier_artifact(&path).unwrap();
        assert!(report.crash_points > 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_artifacts_are_rejected() {
        let dir = std::env::temp_dir().join(format!("aosi-tier-reject-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wrong-mode.seed");
        fs::write(&path, "mode torture\nseed 1\n").unwrap();
        let err = replay_tier_artifact(&path).unwrap_err();
        assert!(err.detail.contains("harness it names"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }
}
