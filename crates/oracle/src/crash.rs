//! Crash-consistency torture harness: every write-syscall boundary
//! of every flush round is a simulated power cut.
//!
//! The paper's durability rule — "recover up to the last complete
//! flush execution, ignoring any subsequent partial flush" — is a
//! statement about *every possible crash point*, not just the ones a
//! test author thought of. This module checks it mechanically, in the
//! style of ALICE/CrashMonkey-type crash-consistency checkers: the
//! WAL's syscalls are routed through [`wal::SimFs`], a deterministic
//! in-memory filesystem with POSIX power-loss semantics (unsynced
//! content is lost, a rename is volatile until the directory is
//! fsynced, the write in flight leaves a seeded torn prefix).
//!
//! One seeded run ([`run_torture`]) executes four phases:
//!
//! 1. **Census** — the full schedule (plus a final flush) runs with
//!    no cut, counting the mutating syscalls: that count *is* the
//!    crash-boundary enumeration. The run itself is differentially
//!    checked against the epoch-replay reference, then recovery is
//!    exercised twice: once on the live image (clean shutdown must
//!    recover exactly what the controller acknowledged) and once on a
//!    power-cut fork (acknowledged rounds must be power-safe — this
//!    is the probe that catches a missing directory fsync even for a
//!    single-round workload).
//! 2. **Boundary sweep** — one fresh run per crash boundary `k`:
//!    execute until the cut fires, reboot, recover into a fresh
//!    engine, and assert the recovered state is *exactly* a complete
//!    flushed prefix — never less than what a successful flush
//!    acknowledged, never a phantom row beyond the pruned committed
//!    log, never a hole (every epoch up to the recovered one is
//!    re-queried against the reference). The flush controller is then
//!    reopened on the same disk (resume must agree with recovery —
//!    the restart-clobber detector), the remaining schedule runs, and
//!    a second recovery must find a chain with zero gaps and zero
//!    skipped rounds.
//! 3. **Hole probe** — a middle round file is deleted from a fork of
//!    the census image; recovery must detect the gap and stop at the
//!    consistent prefix instead of replaying stranded history.
//! 4. **Bit-flip probes** — seeded single-bit media corruption in a
//!    round file; recovery must degrade gracefully (skip, never
//!    panic, never apply damaged bytes) and stay prefix-consistent.
//!
//! [`BugHooks`] re-introduces each of the four fixed durability bugs
//! behind `#[doc(hidden)]` test hooks so the meta-tests can prove the
//! harness actually catches what it claims to catch.
//!
//! [`check_crash_seed`] mirrors [`crate::check_seed`]: on failure the
//! schedule is shrunk (prefix bisection + greedy op removal, re-run
//! through the *entire* torture including its boundary enumeration)
//! and dumped as a replayable `.seed` artifact. The test-suite entry
//! points honor `AOSI_CRASH_SEEDS` and `AOSI_CRASH_REPLAY`.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use aosi::{Snapshot, Txn};
use cluster::ReplicationTracker;
use columnar::Row;
use cubrick::Engine;
use wal::{
    is_power_cut, recover_into_with, FlushController, RecoverOptions, SimFs, WalError, WalFs,
};
use workload::ops::{GenConfig, LogicalOp, Schedule, ORACLE_CUBE};

use crate::checks::{build_query, diff, eval_rows, normalize, NUM_QUERIES};
use crate::harness::{day_filter, days_of, engine_with_cube};
use crate::minimize::artifact_dir;
use crate::reference::{CommittedOp, Replay};

/// Node id of the single simulated node.
const NODE: u64 = 1;
/// Salt mixed into the schedule seed to derive torn-write prefixes,
/// so filesystem randomness is decoupled from workload randomness.
const FS_SEED_SALT: u64 = 0x70f7_0a7e_c417_b011;

/// The WAL directory inside the simulated filesystem.
pub(crate) fn sim_dir() -> PathBuf {
    PathBuf::from("/sim/wal")
}

pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Re-introductions of the four fixed durability bugs, for the
/// meta-tests that prove the harness catches them. All default to
/// `false` (the fixed, production behavior).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BugHooks {
    /// Bug 1: the reopened flush controller forgets the chain on disk
    /// and restarts at sequence 0, clobbering `round-00000000.cbk`.
    pub restart_clobber: bool,
    /// Bug 2: recovery does not validate the round chain and replays
    /// straight across a hole.
    pub skip_chain_validation: bool,
    /// Bug 3: the recovery marker commit fails (exercises the typed
    /// error path that used to be a panic).
    pub fail_marker: bool,
    /// Bug 4: the flush controller skips the directory fsync after
    /// rename, so a completed round's directory entry is volatile.
    pub skip_dir_sync: bool,
}

impl BugHooks {
    /// `true` when any hook is enabled.
    pub fn any(&self) -> bool {
        self.restart_clobber || self.skip_chain_validation || self.fail_marker || self.skip_dir_sync
    }

    fn tags(&self) -> Vec<&'static str> {
        let mut tags = Vec::new();
        if self.restart_clobber {
            tags.push("restart-clobber");
        }
        if self.skip_chain_validation {
            tags.push("skip-chain-validation");
        }
        if self.fail_marker {
            tags.push("fail-marker");
        }
        if self.skip_dir_sync {
            tags.push("skip-dir-sync");
        }
        tags
    }

    fn parse_tags(text: &str) -> Result<BugHooks, String> {
        let mut bugs = BugHooks::default();
        for tag in text.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            match tag {
                "restart-clobber" => bugs.restart_clobber = true,
                "skip-chain-validation" => bugs.skip_chain_validation = true,
                "fail-marker" => bugs.fail_marker = true,
                "skip-dir-sync" => bugs.skip_dir_sync = true,
                other => return Err(format!("unknown bug hook {other:?}")),
            }
        }
        Ok(bugs)
    }

    fn recover_options(&self) -> RecoverOptions {
        RecoverOptions {
            validate_chain: !self.skip_chain_validation,
            fail_marker_commit_for_test: self.fail_marker,
        }
    }
}

/// Knobs for one torture run.
#[derive(Clone, Debug)]
pub struct TortureConfig {
    /// Workload shape. Smaller than the oracle default: the schedule
    /// is re-executed once per crash boundary, so op count multiplies
    /// into total work.
    pub gen: GenConfig,
    /// Seeded single-bit corruption probes against the census image.
    pub bitflip_probes: usize,
    /// Whether to delete a middle round from the census image and
    /// require the gap to be detected (needs >= 3 flushed rounds to
    /// have a middle).
    pub hole_probe: bool,
    /// Bug re-introductions (meta-tests only).
    pub bugs: BugHooks,
}

impl Default for TortureConfig {
    fn default() -> Self {
        TortureConfig {
            gen: GenConfig {
                ops: 36,
                slots: 2,
                max_batch: 4,
            },
            bitflip_probes: 4,
            hole_probe: true,
            bugs: BugHooks::default(),
        }
    }
}

/// Counters from a clean torture run.
#[derive(Clone, Copy, Debug, Default)]
pub struct TortureReport {
    /// Crash boundaries enumerated (mutating syscalls of the census
    /// run); the boundary sweep ran one power cut at each.
    pub crash_points: u64,
    /// Round files the census run flushed.
    pub rounds_flushed: u64,
    /// Recoveries performed across all phases.
    pub recoveries: u64,
    /// Individual query comparisons against the reference.
    pub comparisons: u64,
    /// Hole probes executed (0 or 1).
    pub hole_probes: usize,
    /// Bit-flip probes executed.
    pub bitflip_probes: usize,
}

/// A durability violation the harness detected.
#[derive(Clone, Debug)]
pub struct TortureFailure {
    /// The crash boundary whose cut exposed it; `None` for failures
    /// in the census, hole, or bit-flip phases.
    pub crash_point: Option<u64>,
    /// Human-readable description.
    pub detail: String,
}

impl fmt::Display for TortureFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.crash_point {
            Some(k) => write!(f, "crash boundary {k}: {}", self.detail),
            None => write!(f, "{}", self.detail),
        }
    }
}

pub(crate) fn failure(crash_point: Option<u64>, detail: impl Into<String>) -> TortureFailure {
    TortureFailure {
        crash_point,
        detail: detail.into(),
    }
}

// ---------------------------------------------------------------
// Executor
// ---------------------------------------------------------------

/// Why execution stopped early.
pub(crate) enum Stop {
    /// The simulated power cut fired; disk now holds the durable
    /// image and every further syscall fails.
    PowerCut,
    /// A genuine divergence or engine error.
    Fail(String),
}

struct Slot {
    txn: Txn,
    rows: Vec<Row>,
}

/// Drives a schedule against one engine + flush controller on a
/// simulated filesystem, recording committed operations for the
/// reference replay. Deliberately checker-free and single-threaded:
/// this executor's job is durability, not isolation (the oracle's
/// other modes cover that).
struct Torture {
    engine: Engine,
    tracker: ReplicationTracker,
    ctl: FlushController,
    slots: Vec<Option<Slot>>,
    log: Vec<CommittedOp>,
    /// Highest epoch a *successful* flush acknowledged as durable.
    /// Never reset — a restart does not un-promise durability.
    acked: u64,
    comparisons: u64,
    rounds_flushed: u64,
}

impl Torture {
    fn open(
        fs: &Arc<SimFs>,
        engine: Engine,
        log: Vec<CommittedOp>,
        acked: u64,
        num_slots: usize,
        bugs: &BugHooks,
    ) -> Result<Torture, Stop> {
        let walfs: Arc<dyn WalFs> = fs.clone();
        let mut ctl = match FlushController::with_fs(walfs, sim_dir(), NODE) {
            Ok(ctl) => ctl,
            Err(e) if is_power_cut(&e) => return Err(Stop::PowerCut),
            Err(e) => return Err(Stop::Fail(format!("controller open failed: {e}"))),
        };
        if bugs.skip_dir_sync {
            ctl.skip_dir_sync_for_test();
        }
        Ok(Torture {
            engine,
            tracker: ReplicationTracker::new(1),
            ctl,
            slots: (0..num_slots).map(|_| None).collect(),
            log,
            acked,
            comparisons: 0,
            rounds_flushed: 0,
        })
    }

    fn apply(&mut self, i: usize, op: &LogicalOp) -> Result<(), Stop> {
        match op {
            LogicalOp::Begin { slot } => {
                if *slot < self.slots.len() && self.slots[*slot].is_none() {
                    self.slots[*slot] = Some(Slot {
                        txn: self.engine.begin(),
                        rows: Vec::new(),
                    });
                }
                Ok(())
            }
            LogicalOp::Append { slot, rows } => self.append(i, *slot, rows),
            LogicalOp::Commit { slot } => self.commit_slot(i, *slot),
            LogicalOp::Rollback { slot } => self.rollback_slot(i, *slot),
            LogicalOp::Load { rows } => self.load(i, rows),
            LogicalOp::DeleteDays { buckets } => self.delete(i, buckets),
            LogicalOp::Purge => {
                // Purge at the durable LSE only (the controller's
                // flush rounds are what advance it): reclaimed
                // history must already be on disk.
                self.engine.purge();
                Ok(())
            }
            LogicalOp::Flush => self.flush(i),
            LogicalOp::CheckNow => self.check_now(i),
            // Point-in-time and in-txn reads are the differential
            // oracle's domain; the torture harness checks committed
            // state only.
            LogicalOp::CheckAsOf { .. } | LogicalOp::CheckTxn { .. } => Ok(()),
        }
    }

    fn append(&mut self, i: usize, slot: usize, rows: &[Row]) -> Result<(), Stop> {
        let Some(open) = self.slots.get_mut(slot).and_then(Option::as_mut) else {
            return Ok(()); // dangling slot ref on a minimized schedule
        };
        match self.engine.append(ORACLE_CUBE, rows, &open.txn) {
            Ok((accepted, 0)) if accepted == rows.len() => {
                open.rows.extend_from_slice(rows);
                Ok(())
            }
            Ok((accepted, rejected)) => Err(Stop::Fail(format!(
                "op #{i}: generated rows rejected: accepted {accepted}, rejected {rejected}"
            ))),
            Err(e) => Err(Stop::Fail(format!("op #{i}: append failed: {e}"))),
        }
    }

    fn commit_slot(&mut self, i: usize, slot: usize) -> Result<(), Stop> {
        let Some(open) = self.slots.get_mut(slot).and_then(Option::take) else {
            return Ok(());
        };
        self.engine
            .commit(&open.txn)
            .map_err(|e| Stop::Fail(format!("op #{i}: commit failed: {e}")))?;
        self.log.push(CommittedOp::Rows {
            epoch: open.txn.epoch(),
            rows: open.rows,
        });
        Ok(())
    }

    fn rollback_slot(&mut self, i: usize, slot: usize) -> Result<(), Stop> {
        let Some(open) = self.slots.get_mut(slot).and_then(Option::take) else {
            return Ok(());
        };
        let removed = self
            .engine
            .rollback(&open.txn)
            .map_err(|e| Stop::Fail(format!("op #{i}: rollback failed: {e}")))?;
        if removed != open.rows.len() as u64 {
            return Err(Stop::Fail(format!(
                "op #{i}: rollback reclaimed {removed} rows of {}",
                open.rows.len()
            )));
        }
        Ok(())
    }

    fn load(&mut self, i: usize, rows: &[Row]) -> Result<(), Stop> {
        let txn = self.engine.begin();
        match self.engine.append(ORACLE_CUBE, rows, &txn) {
            Ok((_, 0)) => {}
            Ok((_, rejected)) => {
                return Err(Stop::Fail(format!(
                    "op #{i}: load rejected {rejected} generated rows"
                )))
            }
            Err(e) => return Err(Stop::Fail(format!("op #{i}: load failed: {e}"))),
        }
        self.engine
            .commit(&txn)
            .map_err(|e| Stop::Fail(format!("op #{i}: load commit failed: {e}")))?;
        self.log.push(CommittedOp::Rows {
            epoch: txn.epoch(),
            rows: rows.to_vec(),
        });
        Ok(())
    }

    fn delete(&mut self, i: usize, buckets: &[u32]) -> Result<(), Stop> {
        // Same straggler guard as the oracle executor: close open
        // slots so epoch order equals physical order and the
        // row-level reference stays sound.
        for slot in 0..self.slots.len() {
            self.commit_slot(i, slot)?;
        }
        let days = days_of(buckets);
        let (epoch, _marked) = self
            .engine
            .delete_where(ORACLE_CUBE, &[day_filter(&days)])
            .map_err(|e| Stop::Fail(format!("op #{i}: delete_where failed: {e}")))?;
        self.log.push(CommittedOp::Delete { epoch, days });
        Ok(())
    }

    fn flush(&mut self, i: usize) -> Result<(), Stop> {
        match self.ctl.flush_round(&self.engine, &self.tracker) {
            Ok(outcome) => {
                if outcome.bytes_written > 0 {
                    self.rounds_flushed += 1;
                }
                self.acked = self.acked.max(self.ctl.flushed_through());
                Ok(())
            }
            Err(WalError::Io(e)) if is_power_cut(&e) => Err(Stop::PowerCut),
            Err(e) => Err(Stop::Fail(format!("op #{i}: flush round failed: {e}"))),
        }
    }

    /// Live differential check at the current committed snapshot.
    fn check_now(&mut self, i: usize) -> Result<(), Stop> {
        let claimed = self.engine.manager().begin_read().snapshot().epoch();
        let snap = Snapshot::committed(claimed);
        let replay = Replay::build(&self.log);
        for idx in 0..NUM_QUERIES {
            let result = self
                .engine
                .query_at(ORACLE_CUBE, &build_query(idx), &snap)
                .map_err(|e| Stop::Fail(format!("op #{i}: check q{idx} failed: {e}")))?;
            let aosi = normalize(&result);
            let reference = eval_rows(&replay.rows_at_epoch(claimed), idx);
            self.comparisons += 1;
            if let Some(d) = diff(&aosi, &reference) {
                return Err(Stop::Fail(format!(
                    "op #{i}: check q{idx} at epoch {claimed}: {d}"
                )));
            }
        }
        Ok(())
    }

    /// Runs `ops[resume_at..]` and the terminal flush. Returns the
    /// op index just past the cut when the power cut fires.
    fn run(&mut self, ops: &[LogicalOp], resume_at: usize) -> Result<Option<usize>, Stop> {
        for (i, op) in ops.iter().enumerate().skip(resume_at) {
            match self.apply(i, op) {
                Ok(()) => {}
                Err(Stop::PowerCut) => return Ok(Some(i + 1)),
                Err(stop) => return Err(stop),
            }
        }
        // The terminal flush: every run ends with an attempt to make
        // everything committed durable, so the last schedule ops are
        // inside the crash-boundary enumeration too.
        match self.flush(ops.len()) {
            Ok(()) => Ok(None),
            Err(Stop::PowerCut) => Ok(Some(ops.len())),
            Err(stop) => Err(stop),
        }
    }
}

// ---------------------------------------------------------------
// Recovery checks
// ---------------------------------------------------------------

/// Queries the recovered engine at every epoch up to `through` and
/// diffs each against the reference replay of `log` (pruned to
/// `through`): no lost acknowledged history below, no phantom rows
/// above, no hole in between. Returns comparisons performed.
pub(crate) fn sweep_recovered(
    engine: &Engine,
    log: &[CommittedOp],
    through: u64,
    what: &str,
    crash_point: Option<u64>,
) -> Result<u64, TortureFailure> {
    let pruned: Vec<CommittedOp> = log
        .iter()
        .filter(|op| op.epoch() <= through)
        .cloned()
        .collect();
    let replay = Replay::build(&pruned);
    let mut comparisons = 0;
    for epoch in engine.manager().lse()..=through {
        for idx in 0..NUM_QUERIES {
            let result = engine
                .query_as_of(ORACLE_CUBE, &build_query(idx), epoch)
                .map_err(|e| {
                    failure(
                        crash_point,
                        format!("{what}: q{idx} at {epoch} failed: {e}"),
                    )
                })?;
            let aosi = normalize(&result);
            let reference = eval_rows(&replay.rows_at_epoch(epoch), idx);
            comparisons += 1;
            if let Some(d) = diff(&aosi, &reference) {
                return Err(failure(
                    crash_point,
                    format!("{what}: q{idx} at epoch {epoch}: {d}"),
                ));
            }
        }
    }
    Ok(comparisons)
}

pub(crate) fn stop_failure(stop: Stop, crash_point: Option<u64>) -> TortureFailure {
    match stop {
        Stop::PowerCut => failure(
            crash_point,
            "power cut fired where none was scheduled — boundary accounting is broken",
        ),
        Stop::Fail(detail) => failure(crash_point, detail),
    }
}

// ---------------------------------------------------------------
// The torture run
// ---------------------------------------------------------------

/// Runs the full four-phase torture for one schedule. `Ok` means
/// every crash boundary, the hole probe, and every bit-flip probe
/// recovered to exactly a complete flushed prefix.
pub fn run_torture(
    schedule: &Schedule,
    cfg: &TortureConfig,
) -> Result<TortureReport, TortureFailure> {
    let fs_seed = schedule.seed ^ FS_SEED_SALT;
    let opts = cfg.bugs.recover_options();
    let num_slots = schedule
        .ops
        .iter()
        .filter_map(|op| match op {
            LogicalOp::Begin { slot }
            | LogicalOp::Append { slot, .. }
            | LogicalOp::Commit { slot }
            | LogicalOp::Rollback { slot }
            | LogicalOp::CheckTxn { slot } => Some(*slot + 1),
            _ => None,
        })
        .max()
        .unwrap_or(1);
    let mut report = TortureReport::default();

    // ----- Phase 1: census ------------------------------------
    let census_fs = Arc::new(SimFs::new(fs_seed));
    let mut census = Torture::open(
        &census_fs,
        engine_with_cube(),
        Vec::new(),
        0,
        num_slots,
        &cfg.bugs,
    )
    .map_err(|s| stop_failure(s, None))?;
    if let Some(i) = census
        .run(&schedule.ops, 0)
        .map_err(|s| stop_failure(s, None))?
    {
        return Err(failure(
            None,
            format!("census run hit a power cut at op {i} with no cut configured"),
        ));
    }
    report.crash_points = census_fs.mutating_ops();
    report.rounds_flushed = census.rounds_flushed;
    report.comparisons += census.comparisons;
    let census_acked = census.acked;
    let census_log = census.log;

    // Clean-shutdown recovery: the live image must restore exactly
    // what the controller acknowledged, with a pristine chain.
    let live = engine_with_cube();
    let rep = recover_into_with(census_fs.as_ref(), &sim_dir(), &live, &opts)
        .map_err(|e| failure(None, format!("clean-shutdown recovery failed: {e}")))?;
    report.recoveries += 1;
    if rep.recovered_epoch != census_acked {
        return Err(failure(
            None,
            format!(
                "clean-shutdown recovery restored through epoch {} but the controller \
                 acknowledged {census_acked}",
                rep.recovered_epoch
            ),
        ));
    }
    if rep.gaps_detected != 0 || rep.rounds_skipped != 0 {
        return Err(failure(
            None,
            format!(
                "clean shutdown left a dirty chain: {} gap(s), {} skipped round(s)",
                rep.gaps_detected, rep.rounds_skipped
            ),
        ));
    }
    report.comparisons += sweep_recovered(
        &live,
        &census_log,
        rep.recovered_epoch,
        "clean-shutdown recovery",
        None,
    )?;

    // Power-safety of acknowledged rounds: if power died right now,
    // everything a flush acknowledged must still be recoverable.
    // This is the single-round detector for a missing directory
    // fsync — the rename is visible but its entry never durable.
    let dead = census_fs.fork();
    dead.crash_now();
    let durable = engine_with_cube();
    let rep = recover_into_with(&dead, &sim_dir(), &durable, &opts)
        .map_err(|e| failure(None, format!("power-safe recovery failed: {e}")))?;
    report.recoveries += 1;
    if rep.recovered_epoch < census_acked {
        return Err(failure(
            None,
            format!(
                "acknowledged rounds are not power-safe: recovered through epoch {} \
                 but {census_acked} was acknowledged durable",
                rep.recovered_epoch
            ),
        ));
    }
    report.comparisons += sweep_recovered(
        &durable,
        &census_log,
        rep.recovered_epoch,
        "power-safe recovery",
        None,
    )?;

    // ----- Phase 2: one power cut per boundary ----------------
    for cut in 0..report.crash_points {
        let fs = Arc::new(SimFs::with_cut(fs_seed, cut));
        let mut acked = 0u64;
        let mut log: Vec<CommittedOp> = Vec::new();
        let mut resume_at = 0usize;
        match Torture::open(&fs, engine_with_cube(), Vec::new(), 0, num_slots, &cfg.bugs) {
            // Boundary 0 is the directory creation: the controller
            // never opened, nothing ran.
            Err(Stop::PowerCut) => {}
            Err(Stop::Fail(d)) => return Err(failure(Some(cut), d)),
            Ok(mut t) => {
                match t.run(&schedule.ops, 0) {
                    Ok(Some(i)) => resume_at = i,
                    Ok(None) => {
                        return Err(failure(
                            Some(cut),
                            format!(
                                "boundary {cut} of {} never fired — the enumeration \
                                 drifted between runs",
                                report.crash_points
                            ),
                        ))
                    }
                    Err(stop) => return Err(stop_failure(stop, Some(cut))),
                }
                report.comparisons += t.comparisons;
                acked = t.acked;
                log = t.log;
            }
        }
        debug_assert!(fs.crashed());
        fs.reboot();

        // First recovery: exactly a complete flushed prefix.
        let engine = engine_with_cube();
        let rep = recover_into_with(fs.as_ref(), &sim_dir(), &engine, &opts)
            .map_err(|e| failure(Some(cut), format!("recovery after the cut failed: {e}")))?;
        report.recoveries += 1;
        if rep.recovered_epoch < acked {
            return Err(failure(
                Some(cut),
                format!(
                    "lost acknowledged history: recovered through epoch {} but the \
                     controller had acknowledged {acked}",
                    rep.recovered_epoch
                ),
            ));
        }
        if rep.gaps_detected != 0 || rep.rounds_skipped != 0 {
            return Err(failure(
                Some(cut),
                format!(
                    "a power cut alone must not dirty the chain: {} gap(s), {} \
                     skipped round(s)",
                    rep.gaps_detected, rep.rounds_skipped
                ),
            ));
        }
        // Commits after the last complete flush died with the
        // process — the paper hands them to replication, which this
        // single-node harness models by pruning the reference log.
        let log: Vec<CommittedOp> = log
            .into_iter()
            .filter(|op| op.epoch() <= rep.recovered_epoch)
            .collect();
        report.comparisons += sweep_recovered(
            &engine,
            &log,
            rep.recovered_epoch,
            "post-cut recovery",
            Some(cut),
        )?;

        // Restart on the same disk: controller resume must agree
        // with recovery (the restart-clobber detector) ...
        let mut t = match Torture::open(&fs, engine, log, acked, num_slots, &cfg.bugs) {
            Ok(t) => t,
            Err(stop) => return Err(stop_failure(stop, Some(cut))),
        };
        if !cfg.bugs.skip_chain_validation && t.ctl.flushed_through() != rep.recovered_epoch {
            return Err(failure(
                Some(cut),
                format!(
                    "controller resume disagrees with recovery: resumed at epoch {} \
                     but recovery restored through {}",
                    t.ctl.flushed_through(),
                    rep.recovered_epoch
                ),
            ));
        }
        if cfg.bugs.restart_clobber {
            t.ctl.reset_state_for_test();
        }
        // ... and the survivor finishes the workload.
        match t.run(&schedule.ops, resume_at) {
            Ok(None) => {}
            Ok(Some(i)) => {
                return Err(failure(
                    Some(cut),
                    format!("a second power cut fired at op {i} after reboot"),
                ))
            }
            Err(stop) => return Err(stop_failure(stop, Some(cut))),
        }
        report.comparisons += t.comparisons;

        // Second recovery: the crash-then-continue history must read
        // back as one seamless chain.
        let after = engine_with_cube();
        let rep2 = recover_into_with(fs.as_ref(), &sim_dir(), &after, &opts)
            .map_err(|e| failure(Some(cut), format!("post-continuation recovery failed: {e}")))?;
        report.recoveries += 1;
        if rep2.recovered_epoch < t.acked {
            return Err(failure(
                Some(cut),
                format!(
                    "continuation lost acknowledged history: recovered through {} \
                     but {} was acknowledged",
                    rep2.recovered_epoch, t.acked
                ),
            ));
        }
        if rep2.gaps_detected != 0 || rep2.rounds_skipped != 0 {
            return Err(failure(
                Some(cut),
                format!(
                    "corruption-free crash-and-continue left {} gap(s) and {} \
                     unreachable round(s) on disk",
                    rep2.gaps_detected, rep2.rounds_skipped
                ),
            ));
        }
        let log: Vec<CommittedOp> = t
            .log
            .into_iter()
            .filter(|op| op.epoch() <= rep2.recovered_epoch)
            .collect();
        report.comparisons += sweep_recovered(
            &after,
            &log,
            rep2.recovered_epoch,
            "post-continuation recovery",
            Some(cut),
        )?;
    }

    // ----- Phase 3: hole probe --------------------------------
    if cfg.hole_probe && report.rounds_flushed >= 3 {
        let holed = census_fs.fork();
        let victim = sim_dir().join(format!("round-{:08}.cbk", report.rounds_flushed / 2));
        if holed.remove_everywhere(&victim) {
            report.hole_probes += 1;
            let engine = engine_with_cube();
            let rep = recover_into_with(&holed, &sim_dir(), &engine, &opts)
                .map_err(|e| failure(None, format!("hole-probe recovery failed: {e}")))?;
            report.recoveries += 1;
            if opts.validate_chain && rep.gaps_detected == 0 {
                return Err(failure(
                    None,
                    format!(
                        "a missing middle round ({}) went undetected",
                        victim.display()
                    ),
                ));
            }
            report.comparisons += sweep_recovered(
                &engine,
                &census_log,
                rep.recovered_epoch,
                "hole probe",
                None,
            )?;
        }
    }

    // ----- Phase 4: bit-flip probes ---------------------------
    for probe in 0..cfg.bitflip_probes {
        if report.rounds_flushed == 0 {
            break;
        }
        let flipped = census_fs.fork();
        let h = splitmix64(fs_seed ^ (probe as u64).wrapping_mul(0x5851_f42d_4c95_7f2d));
        let target = sim_dir().join(format!("round-{:08}.cbk", h % report.rounds_flushed));
        if !flipped.flip_durable_bit(&target, h >> 8) {
            continue;
        }
        report.bitflip_probes += 1;
        let engine = engine_with_cube();
        // Graceful degradation: corruption is skipped, never an
        // error, never a panic, never applied.
        let rep = recover_into_with(&flipped, &sim_dir(), &engine, &opts).map_err(|e| {
            failure(
                None,
                format!("recovery must degrade gracefully under media corruption: {e}"),
            )
        })?;
        report.recoveries += 1;
        if rep.rounds_skipped == 0 {
            return Err(failure(
                None,
                format!("a flipped bit in {} went undetected", target.display()),
            ));
        }
        report.comparisons += sweep_recovered(
            &engine,
            &census_log,
            rep.recovered_epoch,
            "bit-flip probe",
            None,
        )?;
    }

    Ok(report)
}

// ---------------------------------------------------------------
// check_crash_seed + minimizer + artifacts
// ---------------------------------------------------------------

/// Generates the schedule for `seed`, runs the full torture, and —
/// on failure — minimizes the schedule (each candidate re-runs the
/// entire boundary enumeration), dumps a `.seed` artifact, and panics
/// with the reproduction instructions. Mirrors [`crate::check_seed`].
pub fn check_crash_seed(seed: u64, cfg: &TortureConfig) -> TortureReport {
    let schedule = Schedule::generate(seed, &cfg.gen);
    match run_torture(&schedule, cfg) {
        Ok(report) => report,
        Err(fail) => {
            let where_to = match minimize_torture(&schedule, cfg) {
                Some((min, min_fail, artifact)) => format!(
                    "minimized to {} ops, artifact: {} ({min_fail})",
                    min.ops.len(),
                    artifact.display()
                ),
                None => "failure did not reproduce under minimization".to_string(),
            };
            panic!(
                "crash-torture failure: seed {seed}: {fail}\n{where_to}\n\
                 replay: AOSI_CRASH_SEEDS={seed} cargo test -p oracle --test crash_torture"
            );
        }
    }
}

fn torture_fails(schedule: &Schedule, cfg: &TortureConfig) -> Option<TortureFailure> {
    run_torture(schedule, cfg).err()
}

/// Shrinks a failing schedule: shortest failing prefix by bisection
/// (a heuristic here — truncation changes the boundary enumeration,
/// so failure is not strictly monotone in prefix length — but cheap
/// and effective), then greedy per-op removal to a fixpoint. Every
/// candidate runs the whole torture, cuts and all.
fn minimize_torture(
    schedule: &Schedule,
    cfg: &TortureConfig,
) -> Option<(Schedule, TortureFailure, PathBuf)> {
    let original = torture_fails(schedule, cfg)?;
    let sub = |ops: Vec<LogicalOp>| Schedule {
        seed: schedule.seed,
        ops,
    };

    let mut lo = 0usize;
    let mut hi = schedule.ops.len();
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if torture_fails(&sub(schedule.ops[..mid].to_vec()), cfg).is_some() {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let mut ops = schedule.ops[..hi].to_vec();

    loop {
        let mut changed = false;
        let mut i = ops.len();
        while i > 0 {
            i -= 1;
            let mut candidate = ops.clone();
            candidate.remove(i);
            if torture_fails(&sub(candidate.clone()), cfg).is_some() {
                ops = candidate;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let minimized = sub(ops);
    let fail = torture_fails(&minimized, cfg).unwrap_or(original);
    let artifact = write_crash_artifact(&minimized, &cfg.bugs, &fail);
    Some((minimized, fail, artifact))
}

fn write_crash_artifact(schedule: &Schedule, bugs: &BugHooks, fail: &TortureFailure) -> PathBuf {
    let dir = artifact_dir();
    fs::create_dir_all(&dir).expect("artifact dir is writable");
    // The bug tags are part of the name so a meta-test run can never
    // clobber a genuine failure's artifact for the same seed.
    let tag = if bugs.any() {
        format!("-{}", bugs.tags().join("+"))
    } else {
        String::new()
    };
    let path = dir.join(format!("torture-seed{}{tag}.seed", schedule.seed));
    let mut text = String::new();
    text.push_str("# aosi crash-torture minimized failing schedule\n");
    text.push_str(&format!("# failure: {fail}\n"));
    text.push_str(
        "# replay: AOSI_CRASH_REPLAY=<this file> cargo test -p oracle --test crash_torture\n",
    );
    text.push_str("mode torture\n");
    if bugs.any() {
        text.push_str(&format!("bugs {}\n", bugs.tags().join(",")));
    }
    text.push_str(&schedule.to_text());
    fs::write(&path, text).expect("artifact file is writable");
    path
}

/// Re-runs a crash-torture `.seed` artifact (or any schedule text
/// with optional `mode torture` / `bugs a,b` header lines).
pub fn replay_crash_artifact(path: &Path) -> Result<TortureReport, TortureFailure> {
    let text = fs::read_to_string(path).map_err(|e| {
        failure(
            None,
            format!("cannot read artifact {}: {e}", path.display()),
        )
    })?;
    let mut bugs = BugHooks::default();
    let mut rest = String::new();
    for line in text.lines() {
        let trimmed = line.trim();
        if let Some(mode) = trimmed.strip_prefix("mode ") {
            if mode.trim() != "torture" {
                return Err(failure(
                    None,
                    format!(
                        "artifact {} is a {mode:?} schedule — replay it with the \
                         oracle suite, not the torture harness",
                        path.display()
                    ),
                ));
            }
        } else if let Some(tags) = trimmed.strip_prefix("bugs ") {
            bugs = BugHooks::parse_tags(tags).map_err(|e| failure(None, e))?;
        } else {
            rest.push_str(line);
            rest.push('\n');
        }
    }
    let schedule = Schedule::from_text(&rest).map_err(|e| failure(None, e))?;
    let cfg = TortureConfig {
        bugs,
        ..TortureConfig::default()
    };
    run_torture(&schedule, &cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TortureConfig {
        TortureConfig {
            gen: GenConfig {
                ops: 14,
                slots: 2,
                max_batch: 3,
            },
            bitflip_probes: 2,
            hole_probe: true,
            bugs: BugHooks::default(),
        }
    }

    #[test]
    fn tiny_seed_survives_every_boundary() {
        let schedule = Schedule::generate(3, &tiny().gen);
        let report = run_torture(&schedule, &tiny()).unwrap();
        assert!(
            report.crash_points >= 5,
            "multi-syscall workload expected, got {} boundaries",
            report.crash_points
        );
        assert!(report.rounds_flushed >= 1, "the terminal flush writes");
        // Census (2) + two recoveries per boundary + probes.
        assert!(report.recoveries >= 2 + 2 * report.crash_points);
        assert!(report.comparisons > 0);
    }

    #[test]
    fn lost_dir_sync_is_caught_by_the_power_safety_probe() {
        let schedule = Schedule::generate(3, &tiny().gen);
        let cfg = TortureConfig {
            bugs: BugHooks {
                skip_dir_sync: true,
                ..Default::default()
            },
            ..tiny()
        };
        let fail = run_torture(&schedule, &cfg).unwrap_err();
        assert!(
            fail.detail.contains("acknowledged"),
            "expected a lost-acked-history failure, got: {fail}"
        );
    }

    #[test]
    fn bug_tags_roundtrip() {
        let bugs = BugHooks {
            restart_clobber: true,
            skip_dir_sync: true,
            ..Default::default()
        };
        let parsed = BugHooks::parse_tags(&bugs.tags().join(",")).unwrap();
        assert_eq!(parsed, bugs);
        assert!(BugHooks::parse_tags("made-up-tag").is_err());
    }

    #[test]
    fn artifact_roundtrip_replays_clean_schedules() {
        let schedule = Schedule::generate(5, &tiny().gen);
        let dir = std::env::temp_dir().join(format!("aosi-crash-artifact-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.seed");
        let mut text = String::from("# comment\nmode torture\n");
        text.push_str(&schedule.to_text());
        fs::write(&path, text).unwrap();
        let report = replay_crash_artifact(&path).unwrap();
        assert!(report.crash_points > 0);
        let _ = fs::remove_dir_all(&dir);
    }
}
