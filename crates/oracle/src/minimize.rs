//! Shrinking minimizer and replayable `.seed` artifacts.
//!
//! When a schedule diverges, [`minimize`] shrinks it in two phases:
//!
//! 1. **Prefix bisection** — find the shortest failing prefix. In
//!    deterministic and crash modes a prefix executes identically to
//!    the full schedule up to its cut point, so "prefix of length n
//!    fails" is monotone in `n` and binary search applies. (Stress
//!    runs are nondeterministic; each candidate is retried a few
//!    times and treated as failing if any attempt fails.)
//! 2. **Greedy op removal** — drop individual ops, keeping any
//!    removal that still fails, until a fixpoint. Executors treat
//!    dangling slot references as no-ops, so every subsequence is a
//!    valid schedule.
//!
//! The result is written as a `.seed` text artifact (mode + optional
//! injection + the `workload::ops` schedule serialization) that
//! [`replay_artifact`] — and the `AOSI_ORACLE_REPLAY` env hook in
//! the test suite — can re-run byte-for-byte.

use std::fs;
use std::path::{Path, PathBuf};

use workload::ops::Schedule;

use crate::harness::{run, Divergence, Inject, Mode, RunReport};

/// Where `.seed` artifacts are written: `AOSI_ORACLE_ARTIFACT_DIR`
/// if set (CI points this at its artifact upload path), else a
/// stable directory under the system temp dir.
pub fn artifact_dir() -> PathBuf {
    std::env::var_os("AOSI_ORACLE_ARTIFACT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("aosi-oracle-seeds"))
}

/// A minimized failing schedule plus its dumped artifact.
pub struct Minimized {
    /// The smallest still-failing schedule found.
    pub schedule: Schedule,
    /// The divergence the minimized schedule reproduces.
    pub divergence: Divergence,
    /// Path of the written `.seed` artifact.
    pub artifact: PathBuf,
}

fn first_failure(
    schedule: &Schedule,
    mode: Mode,
    inject: Option<Inject>,
    attempts: usize,
) -> Option<Divergence> {
    (0..attempts).find_map(|_| run(schedule, mode, inject).err())
}

/// Shrinks `schedule` to a minimal failing form and dumps a
/// replayable artifact. Returns `None` when the schedule does not
/// fail at all (nothing to minimize).
pub fn minimize(schedule: &Schedule, mode: Mode, inject: Option<Inject>) -> Option<Minimized> {
    let attempts = if mode == Mode::Stress { 3 } else { 1 };
    let original = first_failure(schedule, mode, inject, attempts)?;
    let sub = |ops: Vec<workload::ops::LogicalOp>| Schedule {
        seed: schedule.seed,
        ops,
    };

    // Phase 1: shortest failing prefix.
    let mut lo = 0usize;
    let mut hi = schedule.ops.len(); // invariant: prefix of hi fails
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if first_failure(&sub(schedule.ops[..mid].to_vec()), mode, inject, attempts).is_some() {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let mut ops = schedule.ops[..hi].to_vec();

    // Phase 2: greedy per-op removal to fixpoint.
    loop {
        let mut changed = false;
        let mut i = ops.len();
        while i > 0 {
            i -= 1;
            let mut candidate = ops.clone();
            candidate.remove(i);
            if first_failure(&sub(candidate.clone()), mode, inject, attempts).is_some() {
                ops = candidate;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let minimized = sub(ops);
    let divergence = first_failure(&minimized, mode, inject, attempts).unwrap_or(original);
    let artifact = write_artifact(&minimized, mode, inject, &divergence);
    Some(Minimized {
        schedule: minimized,
        divergence,
        artifact,
    })
}

fn inject_line(inject: Option<Inject>) -> Option<&'static str> {
    match inject {
        Some(Inject::SnapshotBehind) => Some("snapshot-behind"),
        None => None,
    }
}

fn parse_inject(text: &str) -> Result<Inject, String> {
    match text.trim() {
        "snapshot-behind" => Ok(Inject::SnapshotBehind),
        other => Err(format!("unknown injection {other:?}")),
    }
}

fn write_artifact(
    schedule: &Schedule,
    mode: Mode,
    inject: Option<Inject>,
    divergence: &Divergence,
) -> PathBuf {
    let dir = artifact_dir();
    fs::create_dir_all(&dir).expect("artifact dir is writable");
    // The injection tag is part of the name so an injected-bug run
    // (the meta-tests) can never clobber a genuine failure's artifact
    // for the same seed and mode.
    let inject_tag = inject_line(inject)
        .map(|tag| format!("-{tag}"))
        .unwrap_or_default();
    let path = dir.join(format!(
        "min-seed{}-{}{}.seed",
        schedule.seed,
        Mode::to_line(mode).replace(' ', "-"),
        inject_tag
    ));
    let mut text = String::new();
    text.push_str("# aosi-oracle minimized failing schedule\n");
    text.push_str(&format!("# divergence: {divergence}\n"));
    text.push_str("# replay: AOSI_ORACLE_REPLAY=<this file> cargo test -p oracle\n");
    text.push_str(&format!("mode {}\n", mode.to_line()));
    if let Some(tag) = inject_line(inject) {
        text.push_str(&format!("inject {tag}\n"));
    }
    text.push_str(&schedule.to_text());
    fs::write(&path, text).expect("artifact file is writable");
    path
}

/// Re-runs a `.seed` artifact (or any schedule text with optional
/// `mode` / `inject` header lines; both default to a plain
/// deterministic run).
pub fn replay_artifact(path: &Path) -> Result<RunReport, Divergence> {
    let text = fs::read_to_string(path).map_err(|e| Divergence {
        op_index: None,
        detail: format!("cannot read artifact {}: {e}", path.display()),
    })?;
    let bad = |detail: String| Divergence {
        op_index: None,
        detail,
    };
    let mut mode = Mode::Deterministic;
    let mut inject = None;
    let mut rest = String::new();
    for line in text.lines() {
        let trimmed = line.trim();
        if let Some(m) = trimmed.strip_prefix("mode ") {
            mode = Mode::parse(m).map_err(bad)?;
        } else if let Some(i) = trimmed.strip_prefix("inject ") {
            inject = Some(parse_inject(i).map_err(bad)?);
        } else {
            rest.push_str(line);
            rest.push('\n');
        }
    }
    let schedule = Schedule::from_text(&rest).map_err(bad)?;
    run(&schedule, mode, inject)
}
