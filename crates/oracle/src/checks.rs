//! The fixed battery of comparison queries and the two independent
//! evaluators the oracle diffs against each other.
//!
//! Each check query has an AOSI form ([`build_query`], executed by
//! the Cubrick engine over bricks + epochs vectors) and a reference
//! form ([`eval_rows`], a direct scan over decoded rows pulled out of
//! the MVCC baseline with `MvccStore::rows_at`). The two
//! implementations share only this *specification*; the execution
//! paths are disjoint, which is what makes agreement meaningful.
//!
//! Results are normalized to a `group-key strings -> aggregate values`
//! map ([`Norm`]) so group ordering is irrelevant. All generated
//! metric values are integer-valued, so `f64` sums are exact and
//! order-independent across shard scheduling; `Avg` is the same
//! `sum / count` division on both sides and compares bitwise, with
//! `NaN == NaN` for empty-group averages.

use std::collections::BTreeMap;

use columnar::{Row, Value};
use cubrick::{AggFn, Aggregation, DimFilter, Query, QueryResult};

/// Number of check queries in the battery.
pub const NUM_QUERIES: usize = 4;

/// Normalized query result: rendered group key -> aggregate values.
pub type Norm = BTreeMap<Vec<String>, Vec<f64>>;

/// Region values query 3 filters on. `"zz"` is never loaded, so it
/// has no dictionary id — pinning that unknown filter values narrow
/// the match identically on both engines (see the `delete_where`
/// narrow-match test in `tests/sql_and_ops.rs` for the same decision
/// on the delete path).
pub const Q3_REGIONS: [&str; 3] = ["r0", "r1", "zz"];

/// Day values below this bound match query 2's filter (the first two
/// whole day buckets).
pub const Q2_DAY_BOUND: i64 = 8;

/// Builds the AOSI-side form of check query `idx`.
pub fn build_query(idx: usize) -> Query {
    match idx {
        // Per-(region, day) count + sums: exercises multi-dim group
        // keys and both metric types.
        0 => Query::aggregate(vec![
            Aggregation::new(AggFn::Count, ""),
            Aggregation::new(AggFn::Sum, "likes"),
            Aggregation::new(AggFn::Sum, "score"),
        ])
        .grouped_by("region")
        .grouped_by("day"),
        // Global scalar battery: exercises Min/Max/Avg finalization.
        1 => Query::aggregate(vec![
            Aggregation::new(AggFn::Count, ""),
            Aggregation::new(AggFn::Sum, "likes"),
            Aggregation::new(AggFn::Min, "likes"),
            Aggregation::new(AggFn::Max, "likes"),
            Aggregation::new(AggFn::Avg, "likes"),
        ]),
        // Day-bucket filter + single group dim: exercises brick
        // pruning against the delete/filter bucket layout.
        2 => Query::aggregate(vec![
            Aggregation::new(AggFn::Sum, "likes"),
            Aggregation::new(AggFn::Count, ""),
        ])
        .filter(DimFilter::new(
            "day",
            (0..Q2_DAY_BOUND).map(Value::I64).collect(),
        ))
        .grouped_by("region"),
        // String-dim filter including a value with no dictionary id:
        // exercises filter narrowing on the query path.
        3 => Query::aggregate(vec![
            Aggregation::new(AggFn::Count, ""),
            Aggregation::new(AggFn::Sum, "score"),
        ])
        .filter(DimFilter::new(
            "region",
            Q3_REGIONS.iter().map(|r| Value::Str((*r).into())).collect(),
        ))
        .grouped_by("day"),
        other => unreachable!("no check query {other}"),
    }
}

/// Normalizes an engine [`QueryResult`] for comparison.
pub fn normalize(result: &QueryResult) -> Norm {
    result
        .rows
        .iter()
        .map(|(key, vals)| (key.iter().map(|v| v.to_string()).collect(), vals.clone()))
        .collect()
}

fn row_fields(row: &Row) -> (String, i64, i64, f64) {
    (
        row[0].as_str().unwrap_or_default().to_owned(),
        row[1].as_i64().unwrap_or(0),
        row[2].as_i64().unwrap_or(0),
        row[3].as_f64().unwrap_or(0.0),
    )
}

/// Reference evaluation of check query `idx` over decoded rows
/// (`[region, day, likes, score]`). Deliberately naive: one pass,
/// per-group accumulators, no bricks, no pruning.
pub fn eval_rows(rows: &[Row], idx: usize) -> Norm {
    let mut out = Norm::new();
    match idx {
        0 => {
            // key [region, day] -> [count, sum(likes), sum(score)]
            for row in rows {
                let (region, day, likes, score) = row_fields(row);
                let e = out
                    .entry(vec![region, day.to_string()])
                    .or_insert_with(|| vec![0.0; 3]);
                e[0] += 1.0;
                e[1] += likes as f64;
                e[2] += score;
            }
        }
        1 => {
            // key [] -> [count, sum, min, max, avg] over likes; no
            // row at all on an empty table (the engine materializes
            // groups only for visible rows).
            let mut count = 0.0f64;
            let mut sum = 0.0f64;
            let mut min = f64::INFINITY;
            let mut max = f64::NEG_INFINITY;
            for row in rows {
                let (_, _, likes, _) = row_fields(row);
                count += 1.0;
                sum += likes as f64;
                min = min.min(likes as f64);
                max = max.max(likes as f64);
            }
            if count > 0.0 {
                out.insert(vec![], vec![count, sum, min, max, sum / count]);
            }
        }
        2 => {
            // day < bound; key [region] -> [sum(likes), count]
            for row in rows {
                let (region, day, likes, _) = row_fields(row);
                if day < Q2_DAY_BOUND {
                    let e = out.entry(vec![region]).or_insert_with(|| vec![0.0; 2]);
                    e[0] += likes as f64;
                    e[1] += 1.0;
                }
            }
        }
        3 => {
            // region in Q3_REGIONS; key [day] -> [count, sum(score)]
            for row in rows {
                let (region, day, _, score) = row_fields(row);
                if Q3_REGIONS.contains(&region.as_str()) {
                    let e = out
                        .entry(vec![day.to_string()])
                        .or_insert_with(|| vec![0.0; 2]);
                    e[0] += 1.0;
                    e[1] += score;
                }
            }
        }
        other => unreachable!("no check query {other}"),
    }
    out
}

fn f64_eq(a: f64, b: f64) -> bool {
    a == b || (a.is_nan() && b.is_nan())
}

/// Compares two normalized results; `None` when equal, otherwise a
/// human-readable description of the first difference.
pub fn diff(aosi: &Norm, reference: &Norm) -> Option<String> {
    for (key, ref_vals) in reference {
        match aosi.get(key) {
            None => return Some(format!("group {key:?} missing from AOSI result")),
            Some(vals) => {
                if vals.len() != ref_vals.len()
                    || !vals.iter().zip(ref_vals).all(|(a, b)| f64_eq(*a, *b))
                {
                    return Some(format!(
                        "group {key:?}: AOSI {vals:?} != reference {ref_vals:?}"
                    ));
                }
            }
        }
    }
    for key in aosi.keys() {
        if !reference.contains_key(key) {
            return Some(format!("group {key:?} present only in AOSI result"));
        }
    }
    None
}

/// Commutative fingerprint of a normalized result, for the SI
/// checker's read-stability tracking.
pub fn fingerprint(norm: &Norm) -> u64 {
    checker::fingerprint_rows(norm.iter().map(|(key, vals)| {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for part in key {
            for byte in part.as_bytes() {
                h = (h ^ u64::from(*byte)).wrapping_mul(0x100_0000_01b3);
            }
            h = (h ^ 0x1f).wrapping_mul(0x100_0000_01b3);
        }
        for v in vals {
            let bits = if v.is_nan() { u64::MAX } else { v.to_bits() };
            h = (h ^ bits).wrapping_mul(0x100_0000_01b3);
        }
        h
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(region: &str, day: i64, likes: i64, score: f64) -> Row {
        vec![
            Value::Str(region.into()),
            Value::I64(day),
            Value::I64(likes),
            Value::F64(score),
        ]
    }

    #[test]
    fn reference_eval_grouping_and_filters() {
        let rows = vec![r("r0", 1, 10, 2.0), r("r0", 1, 5, 1.0), r("r7", 9, 3, 0.0)];
        let q0 = eval_rows(&rows, 0);
        assert_eq!(
            q0[&vec!["r0".to_string(), "1".to_string()]],
            vec![2.0, 15.0, 3.0]
        );
        let q1 = eval_rows(&rows, 1);
        assert_eq!(q1[&vec![]], vec![3.0, 18.0, 3.0, 10.0, 6.0]);
        let q2 = eval_rows(&rows, 2);
        assert_eq!(q2[&vec!["r0".to_string()]], vec![15.0, 2.0]);
        assert!(!q2.contains_key(&vec!["r7".to_string()]), "day 9 filtered");
        let q3 = eval_rows(&rows, 3);
        assert_eq!(q3[&vec!["1".to_string()]], vec![2.0, 3.0]);
        assert!(!q3.contains_key(&vec!["9".to_string()]), "r7 not in filter");
    }

    #[test]
    fn empty_table_yields_empty_norms() {
        for idx in 0..NUM_QUERIES {
            assert!(eval_rows(&[], idx).is_empty(), "query {idx}");
        }
    }

    #[test]
    fn diff_reports_each_direction() {
        let mut a = Norm::new();
        let mut b = Norm::new();
        a.insert(vec!["x".into()], vec![1.0]);
        assert!(diff(&a, &b).unwrap().contains("only in AOSI"));
        assert!(diff(&b, &a).unwrap().contains("missing from AOSI"));
        b.insert(vec!["x".into()], vec![2.0]);
        assert!(diff(&a, &b).unwrap().contains("!="));
        b.insert(vec!["x".into()], vec![1.0]);
        assert_eq!(diff(&a, &b), None);
        // NaN compares equal to NaN (empty-group averages).
        a.insert(vec!["n".into()], vec![f64::NAN]);
        b.insert(vec!["n".into()], vec![f64::NAN]);
        assert_eq!(diff(&a, &b), None);
    }

    #[test]
    fn fingerprint_is_order_blind_but_value_sensitive() {
        let mut a = Norm::new();
        a.insert(vec!["k1".into()], vec![1.0]);
        a.insert(vec!["k2".into()], vec![2.0]);
        let fa = fingerprint(&a);
        let mut b = Norm::new();
        b.insert(vec!["k2".into()], vec![2.0]);
        b.insert(vec!["k1".into()], vec![1.0]);
        assert_eq!(fa, fingerprint(&b));
        b.insert(vec!["k1".into()], vec![3.0]);
        assert_ne!(fa, fingerprint(&b));
    }
}
