//! Differential testing oracle: AOSI vs. MVCC, same schedule, same
//! answers.
//!
//! The paper's central claim is that AOSI provides Snapshot
//! Isolation semantics equivalent to an MVCC design while storing
//! one version per record and one epochs vector per partition. This
//! crate turns that claim into an executable check: a seeded
//! generator (`workload::ops`) produces a multi-transaction schedule
//! — loads, explicit append transactions, partition deletes,
//! rollbacks, flush/purge maintenance, and point-in-time reads — and
//! the harness drives the AOSI [`cubrick::Engine`] through it while
//! recording every committed operation. At each checkpoint the same
//! state is derived on a disjoint code path (an epoch-ordered replay
//! into `mvcc_baseline::MvccStore`) and a fixed battery of aggregate
//! queries must agree exactly. The online SI checker
//! (`checker::SiChecker`) rides along on the AOSI side throughout.
//!
//! Three execution modes (see [`harness`]): single-threaded
//! **deterministic**, thread-pooled **stress**, and WAL-replay
//! **crash-recovery**. A failing schedule is shrunk by the
//! [`minimize`] minimizer to a minimal reproduction and dumped as a
//! replayable `.seed` artifact.
//!
//! The [`crash`] module goes one layer below the crash-recovery
//! mode: a crash-consistency torture harness that simulates a power
//! cut at *every* write-syscall boundary of every flush round (via
//! [`wal::SimFs`]) and asserts recovery restores exactly a complete
//! flushed prefix — the paper's durability rule, checked mechanically.
//!
//! The test-suite entry points honor environment hooks, mirroring
//! the chaos suite's `AOSI_CHAOS_SEEDS`:
//!
//! * `AOSI_ORACLE_SEEDS=7,99` — run extra seeds through all modes.
//! * `AOSI_ORACLE_REPLAY=/path/a.seed,/path/b.seed` — replay dumped
//!   artifacts.
//! * `AOSI_ORACLE_ARTIFACT_DIR=dir` — where minimized artifacts are
//!   written (defaults to `$TMPDIR/aosi-oracle-seeds`).
//! * `AOSI_CRASH_SEEDS=7,99` — run extra seeds through the crash
//!   torture (`cargo test -p oracle --test crash_torture`).
//! * `AOSI_CRASH_REPLAY=/path/a.seed` — replay dumped crash-torture
//!   artifacts.
//! * `AOSI_AGG_SEEDS=7,99` — run extra seeds through the merge
//!   oracle (`cargo test -p oracle --test agg_oracle`).
//! * `AOSI_AGG_REPLAY=/path/a.seed` — replay dumped merge-oracle
//!   artifacts.
//! * `AOSI_TIER_SEEDS=7,99` — run extra seeds through the tiered-
//!   storage torture (`cargo test -p oracle --test tier_torture`).
//! * `AOSI_TIER_REPLAY=/path/a.seed` — replay dumped tier-torture
//!   artifacts.
//!
//! See `TESTING.md` at the repo root for the full workflow.

#![warn(missing_docs)]

pub mod agg;
pub mod checks;
pub mod crash;
pub mod harness;
pub mod minimize;
pub mod reference;
pub mod scan;
pub mod tier;

pub use agg::{check_agg_seed, compare_merges, run_agg_schedule, AggReport};
pub use crash::{
    check_crash_seed, replay_crash_artifact, run_torture, BugHooks, TortureConfig, TortureFailure,
    TortureReport,
};
pub use harness::{run, Divergence, Inject, Mode, RunReport};
pub use minimize::{artifact_dir, minimize, replay_artifact, Minimized};
pub use scan::{compare_paths, run_scan_schedule, ScanReport};
pub use tier::{
    check_tier_seed, replay_tier_artifact, run_tier_torture, TierTortureConfig, TierTortureReport,
};
use workload::ops::{GenConfig, Schedule};

/// Generates the schedule for `seed`, runs it under `mode`, and — on
/// divergence — minimizes, dumps a `.seed` artifact, and panics with
/// the reproduction instructions. The corpus tests and the root
/// smoke test are thin loops over this.
pub fn check_seed(seed: u64, mode: Mode, cfg: &GenConfig) -> RunReport {
    let schedule = Schedule::generate(seed, cfg);
    match run(&schedule, mode, None) {
        Ok(report) => report,
        Err(divergence) => {
            let where_to = match minimize(&schedule, mode, None) {
                Some(min) => format!(
                    "minimized to {} ops, artifact: {} ({})",
                    min.schedule.ops.len(),
                    min.artifact.display(),
                    min.divergence
                ),
                // A flaky failure that did not reproduce under the
                // minimizer still fails the run — report the original.
                None => "failure did not reproduce under minimization".to_string(),
            };
            panic!(
                "oracle divergence: seed {seed}, mode {}: {divergence}\n{where_to}\n\
                 replay: AOSI_ORACLE_SEEDS={seed} cargo test -p oracle",
                mode.to_line()
            );
        }
    }
}
