//! Schedule executors: deterministic, multi-threaded stress, and
//! crash-recovery.
//!
//! All three modes drive the AOSI [`Engine`] through a
//! [`Schedule`] while recording every committed operation into a
//! [`CommittedOp`] log. Equivalence checks rebuild the MVCC
//! reference from that log ([`Replay`]) and diff normalized query
//! results; the online SI [`SiChecker`] rides along on the AOSI side
//! (transaction lifecycle, read stability, clock sanity).
//!
//! * **Deterministic** — single thread, ops in schedule order,
//!   checks diffed inline at the op that runs them. This is the mode
//!   the minimizer shrinks in.
//! * **Stress** — ops are folded into self-contained units (one unit
//!   per explicit transaction, load, delete, maintenance step, or
//!   checkpoint) executed by a small thread pool. Append/load units
//!   hold a shared gate for their whole begin→commit span and delete
//!   units hold it exclusively, so epoch order equals physical order
//!   for delete-vs-append and the row-level reference model stays
//!   sound (see `workload::ops`). Committed-snapshot reads are
//!   recorded during the run and diffed post-hoc.
//! * **Crash** — deterministic execution plus a WAL
//!   [`FlushController`]; at the crash index the engine is dropped,
//!   a fresh engine recovers from the round files, the committed log
//!   is pruned to the recovered epoch, and the remaining schedule
//!   continues (dangling transaction slots become no-ops).
//!
//! Every mode ends with quiescence (leftover transactions are
//! committed) and a full-window sweep: `query_as_of` at every epoch
//! in `[LSE, LCE]` diffed against the reference, then a checker
//! violation scan.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, RwLock};

use aosi::{Snapshot, Txn};
use checker::{SiChecker, TxnEvent};
use cluster::ReplicationTracker;
use columnar::{Row, Value};
use cubrick::{DimFilter, Engine};
use wal::{recover_into, FlushController, TempWalDir};
use workload::ops::{bucket_days, oracle_schema, LogicalOp, Schedule, ORACLE_CUBE};

use crate::checks::{build_query, diff, eval_rows, fingerprint, normalize, Norm, NUM_QUERIES};
use crate::reference::{model_txn_rows, CommittedOp, Replay};

/// Checker node id for the single-node oracle engine.
const NODE: u64 = 1;
/// Worker threads in stress mode.
const STRESS_THREADS: usize = 4;

/// How a schedule is executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Single thread, schedule order, inline checks.
    Deterministic,
    /// Thread-pool execution of transaction-sized units.
    Stress,
    /// Deterministic execution with WAL flushes; the engine is
    /// killed before op `crash_at` and recovered from disk.
    Crash {
        /// Op index at which the engine dies (clamped to the
        /// schedule length; a past-the-end value crashes after the
        /// last op, before the final sweep).
        crash_at: usize,
    },
}

impl Mode {
    /// Artifact header form (`mode <this>`).
    pub fn to_line(self) -> String {
        match self {
            Mode::Deterministic => "deterministic".into(),
            Mode::Stress => "stress".into(),
            Mode::Crash { crash_at } => format!("crash {crash_at}"),
        }
    }

    /// Parses [`Mode::to_line`] output.
    pub fn parse(text: &str) -> Result<Mode, String> {
        let text = text.trim();
        match text {
            "deterministic" => Ok(Mode::Deterministic),
            "stress" => Ok(Mode::Stress),
            _ => match text.strip_prefix("crash ") {
                Some(idx) => idx
                    .trim()
                    .parse()
                    .map(|crash_at| Mode::Crash { crash_at })
                    .map_err(|e| format!("bad crash index: {e}")),
                None => Err(format!("unknown mode {text:?}")),
            },
        }
    }
}

/// Deliberate visibility bugs, used to prove the oracle catches what
/// it claims to catch (see the meta-test in `tests/corpus.rs`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Inject {
    /// Committed-snapshot checkpoints silently read one epoch behind
    /// the snapshot they claim — the classic stale-snapshot bug.
    SnapshotBehind,
}

/// A detected AOSI-vs-reference disagreement (or checker violation).
#[derive(Clone, Debug)]
pub struct Divergence {
    /// Index of the schedule op that detected it; `None` for the
    /// final sweep / post-hoc validation.
    pub op_index: Option<usize>,
    /// Human-readable description.
    pub detail: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.op_index {
            Some(i) => write!(f, "op #{i}: {}", self.detail),
            None => write!(f, "post-run: {}", self.detail),
        }
    }
}

/// Counters from a clean run.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunReport {
    /// Schedule ops executed.
    pub ops_executed: usize,
    /// Individual query comparisons performed.
    pub comparisons: u64,
    /// Events fed to the SI checker.
    pub checker_events: u64,
}

/// Executes `schedule` under `mode`, returning counters on agreement
/// or the first [`Divergence`] found.
pub fn run(
    schedule: &Schedule,
    mode: Mode,
    inject: Option<Inject>,
) -> Result<RunReport, Divergence> {
    match mode {
        Mode::Deterministic => run_serial(schedule, None, inject),
        Mode::Crash { crash_at } => run_serial(schedule, Some(crash_at), inject),
        Mode::Stress => run_stress(schedule, inject),
    }
}

pub(crate) fn engine_with_cube() -> Engine {
    let engine = Engine::new(2);
    engine
        .create_cube(oracle_schema())
        .expect("oracle schema registers");
    engine
}

pub(crate) fn days_of(buckets: &[u32]) -> Vec<i64> {
    let set: BTreeSet<i64> = buckets.iter().flat_map(|b| bucket_days(*b)).collect();
    set.into_iter().collect()
}

pub(crate) fn day_filter(days: &[i64]) -> DimFilter {
    DimFilter::new("day", days.iter().copied().map(Value::I64).collect())
}

struct OpenSlot {
    txn: Txn,
    rows: Vec<Row>,
}

// ---------------------------------------------------------------
// Deterministic / crash executor
// ---------------------------------------------------------------

struct Serial {
    engine: Engine,
    checker: SiChecker,
    slots: Vec<Option<OpenSlot>>,
    log: Vec<CommittedOp>,
    inject: Option<Inject>,
    comparisons: u64,
    // Crash mode only.
    wal: Option<WalState>,
}

struct WalState {
    dir: TempWalDir,
    tracker: ReplicationTracker,
    ctl: Option<FlushController>,
    crashed: bool,
}

fn fail(op_index: Option<usize>, detail: impl Into<String>) -> Divergence {
    Divergence {
        op_index,
        detail: detail.into(),
    }
}

impl Serial {
    fn begin(&mut self, i: usize, slot: usize) -> Result<(), Divergence> {
        if slot < self.slots.len() && self.slots[slot].is_none() {
            let txn = self.engine.begin();
            self.checker.record(TxnEvent::Begin {
                node: NODE,
                epoch: txn.epoch(),
                deps: txn.snapshot().deps().clone(),
            });
            self.slots[slot] = Some(OpenSlot {
                txn,
                rows: Vec::new(),
            });
        }
        let _ = i;
        Ok(())
    }

    fn append(&mut self, i: usize, slot: usize, rows: &[Row]) -> Result<(), Divergence> {
        let Some(open) = self.slots.get_mut(slot).and_then(Option::as_mut) else {
            return Ok(()); // dangling slot ref on a minimized schedule
        };
        let (accepted, rejected) = self
            .engine
            .append(ORACLE_CUBE, rows, &open.txn)
            .map_err(|e| fail(Some(i), format!("append failed: {e}")))?;
        if rejected != 0 || accepted != rows.len() {
            return Err(fail(
                Some(i),
                format!("generated rows rejected: accepted {accepted}, rejected {rejected}"),
            ));
        }
        open.rows.extend_from_slice(rows);
        Ok(())
    }

    fn commit_slot(&mut self, i: usize, slot: usize) -> Result<(), Divergence> {
        let Some(open) = self.slots.get_mut(slot).and_then(Option::take) else {
            return Ok(());
        };
        self.engine
            .commit(&open.txn)
            .map_err(|e| fail(Some(i), format!("commit failed: {e}")))?;
        self.checker.record(TxnEvent::Commit {
            node: NODE,
            epoch: open.txn.epoch(),
        });
        self.log.push(CommittedOp::Rows {
            epoch: open.txn.epoch(),
            rows: open.rows,
        });
        Ok(())
    }

    fn rollback_slot(&mut self, i: usize, slot: usize) -> Result<(), Divergence> {
        let Some(open) = self.slots.get_mut(slot).and_then(Option::take) else {
            return Ok(());
        };
        let removed = self
            .engine
            .rollback(&open.txn)
            .map_err(|e| fail(Some(i), format!("rollback failed: {e}")))?;
        if removed != open.rows.len() as u64 {
            return Err(fail(
                Some(i),
                format!(
                    "rollback reclaimed {removed} rows, transaction appended {}",
                    open.rows.len()
                ),
            ));
        }
        self.checker.record(TxnEvent::Rollback {
            node: NODE,
            epoch: open.txn.epoch(),
        });
        Ok(())
    }

    fn load(&mut self, i: usize, rows: &[Row]) -> Result<(), Divergence> {
        // Loads go through an explicit transaction so the checker
        // sees a full Begin/Commit lifecycle for every epoch.
        let txn = self.engine.begin();
        self.checker.record(TxnEvent::Begin {
            node: NODE,
            epoch: txn.epoch(),
            deps: txn.snapshot().deps().clone(),
        });
        let (accepted, rejected) = self
            .engine
            .append(ORACLE_CUBE, rows, &txn)
            .map_err(|e| fail(Some(i), format!("load failed: {e}")))?;
        if rejected != 0 || accepted != rows.len() {
            return Err(fail(Some(i), "generated load rows rejected"));
        }
        self.engine
            .commit(&txn)
            .map_err(|e| fail(Some(i), format!("load commit failed: {e}")))?;
        self.checker.record(TxnEvent::Commit {
            node: NODE,
            epoch: txn.epoch(),
        });
        self.log.push(CommittedOp::Rows {
            epoch: txn.epoch(),
            rows: rows.to_vec(),
        });
        Ok(())
    }

    fn delete(&mut self, i: usize, buckets: &[u32]) -> Result<(), Divergence> {
        // Straggler guard: a minimized schedule may have lost the
        // commits that closed slots before this delete; force them
        // closed so epoch order still equals physical order (see
        // workload::ops docs).
        for slot in 0..self.slots.len() {
            self.commit_slot(i, slot)?;
        }
        let days = days_of(buckets);
        let (epoch, _marked) = self
            .engine
            .delete_where(ORACLE_CUBE, &[day_filter(&days)])
            .map_err(|e| fail(Some(i), format!("delete_where failed: {e}")))?;
        // delete_where runs its own implicit transaction; with every
        // slot closed its dependency set is empty.
        self.checker.record(TxnEvent::Begin {
            node: NODE,
            epoch,
            deps: BTreeSet::new(),
        });
        self.checker.record(TxnEvent::Commit { node: NODE, epoch });
        self.log.push(CommittedOp::Delete { epoch, days });
        Ok(())
    }

    fn clock_sample(&self) {
        let clock = self.engine.manager().clock();
        self.checker.record(TxnEvent::ClockSample {
            node: NODE,
            ec: clock.current_ec(),
            lce: clock.lce(),
            lse: clock.lse(),
        });
    }

    fn maintain(&mut self, flush: bool) {
        match &mut self.wal {
            Some(w) => {
                if flush {
                    if let Some(ctl) = &mut w.ctl {
                        ctl.flush_round(&self.engine, &w.tracker)
                            .expect("flush round IO");
                    } else {
                        // Post-crash: the original WAL stream ended at
                        // the crash; durability is out of scope for
                        // the remainder, so just advance and purge.
                        self.engine.advance_lse_and_purge();
                    }
                } else {
                    // Purge at the current (durable) LSE only — the
                    // LSE must not outrun what the controller has
                    // flushed, or a crash would lose purged history.
                    self.engine.purge();
                }
            }
            None => {
                self.engine.advance_lse_and_purge();
            }
        }
        self.clock_sample();
    }

    /// Runs the check battery at a committed snapshot and feeds the
    /// checker. `claimed` is the epoch the read is reported at;
    /// `snap` is what is actually queried (they differ only under
    /// [`Inject::SnapshotBehind`]).
    fn check_committed(
        &mut self,
        i: Option<usize>,
        label: &str,
        claimed: u64,
        snap: &Snapshot,
    ) -> Result<(), Divergence> {
        let replay = Replay::build(&self.log);
        for idx in 0..NUM_QUERIES {
            let result = self
                .engine
                .query_at(ORACLE_CUBE, &build_query(idx), snap)
                .map_err(|e| fail(i, format!("{label} q{idx} failed: {e}")))?;
            let aosi = normalize(&result);
            let reference = eval_rows(&replay.rows_at_epoch(claimed), idx);
            self.comparisons += 1;
            if let Some(d) = diff(&aosi, &reference) {
                return Err(fail(i, format!("{label} q{idx} at epoch {claimed}: {d}")));
            }
            self.checker.record(TxnEvent::Read {
                node: NODE,
                snapshot_epoch: claimed,
                deps: BTreeSet::new(),
                observed: BTreeSet::new(),
                reader: None,
                key: format!("{ORACLE_CUBE}:q{idx}"),
                fingerprint: fingerprint(&aosi),
            });
        }
        Ok(())
    }

    fn check_now(&mut self, i: usize) -> Result<(), Divergence> {
        // Single-threaded executor: nothing can purge between
        // dropping the read guard and running the queries, so the
        // guard only serves to obtain the committed snapshot epoch.
        let claimed = self.engine.manager().begin_read().snapshot().epoch();
        let target = match self.inject {
            Some(Inject::SnapshotBehind) => claimed.saturating_sub(1),
            None => claimed,
        };
        let snap = Snapshot::committed(target);
        self.check_committed(Some(i), "check", claimed, &snap)
    }

    fn check_as_of(&mut self, i: usize, frac: u8) -> Result<(), Divergence> {
        let (lse, lce) = (self.engine.manager().lse(), self.engine.manager().lce());
        if lce == 0 {
            return Ok(());
        }
        let window = lce - lse + 1;
        let epoch = (lse + (u64::from(frac) * window) / 256).min(lce);
        let snap = Snapshot::committed(epoch);
        self.check_committed(Some(i), "as-of", epoch, &snap)
    }

    fn check_txn(&mut self, i: usize, slot: usize) -> Result<(), Divergence> {
        let Some(open) = self.slots.get(slot).and_then(Option::as_ref) else {
            return Ok(());
        };
        let epoch = open.txn.epoch();
        let deps = open.txn.snapshot().deps().clone();
        let model = model_txn_rows(&self.log, epoch, &deps, &open.rows);
        for idx in 0..NUM_QUERIES {
            let result = self
                .engine
                .query_in_txn(ORACLE_CUBE, &build_query(idx), &open.txn)
                .map_err(|e| fail(Some(i), format!("txn q{idx} failed: {e}")))?;
            let aosi = normalize(&result);
            let reference = eval_rows(&model, idx);
            self.comparisons += 1;
            if let Some(d) = diff(&aosi, &reference) {
                return Err(fail(
                    Some(i),
                    format!("in-txn q{idx} at epoch {epoch} (deps {deps:?}): {d}"),
                ));
            }
            // The key carries the op index: two in-txn reads at the
            // same (epoch, deps) may legitimately differ when the
            // transaction appended rows in between, which the
            // checker's stability signature cannot see.
            self.checker.record(TxnEvent::Read {
                node: NODE,
                snapshot_epoch: epoch,
                deps: deps.clone(),
                observed: BTreeSet::new(),
                reader: Some(epoch),
                key: format!("{ORACLE_CUBE}:txn#{i}:q{idx}"),
                fingerprint: fingerprint(&aosi),
            });
        }
        Ok(())
    }

    fn crash_and_recover(&mut self) -> Result<(), Divergence> {
        let wal = self.wal.as_mut().expect("crash requires WAL state");
        wal.crashed = true;
        wal.ctl = None;
        // The crash abandons open transactions and the engine itself.
        self.slots = (0..self.slots.len()).map(|_| None).collect();
        self.engine = engine_with_cube();
        let report = recover_into(wal.dir.path(), &self.engine)
            .map_err(|e| fail(None, format!("recovery failed: {e}")))?;
        // Everything past the last durable round died with the
        // process: prune the reference log to match.
        self.log.retain(|op| op.epoch() <= report.recovered_epoch);
        // Pre-crash epochs are gone from the new engine's clock; a
        // fresh checker starts over on the recovered timeline.
        self.checker = SiChecker::new(1);
        // Recovery must restore exactly the durable prefix.
        let lse = self.engine.manager().lse();
        let lce = self.engine.manager().lce();
        let replay = Replay::build(&self.log);
        for epoch in lse..=lce {
            for idx in 0..NUM_QUERIES {
                let result = self
                    .engine
                    .query_as_of(ORACLE_CUBE, &build_query(idx), epoch)
                    .map_err(|e| fail(None, format!("post-recovery q{idx} failed: {e}")))?;
                let aosi = normalize(&result);
                let reference = eval_rows(&replay.rows_at_epoch(epoch), idx);
                self.comparisons += 1;
                if let Some(d) = diff(&aosi, &reference) {
                    return Err(fail(
                        None,
                        format!(
                            "post-recovery q{idx} at epoch {epoch} \
                             (recovered through {}): {d}",
                            report.recovered_epoch
                        ),
                    ));
                }
            }
        }
        Ok(())
    }

    fn apply(&mut self, i: usize, op: &LogicalOp) -> Result<(), Divergence> {
        match op {
            LogicalOp::Begin { slot } => self.begin(i, *slot),
            LogicalOp::Append { slot, rows } => self.append(i, *slot, rows),
            LogicalOp::Commit { slot } => self.commit_slot(i, *slot),
            LogicalOp::Rollback { slot } => self.rollback_slot(i, *slot),
            LogicalOp::Load { rows } => self.load(i, rows),
            LogicalOp::DeleteDays { buckets } => self.delete(i, buckets),
            LogicalOp::Purge => {
                self.maintain(false);
                Ok(())
            }
            LogicalOp::Flush => {
                self.maintain(true);
                Ok(())
            }
            LogicalOp::CheckNow => self.check_now(i),
            LogicalOp::CheckAsOf { frac } => self.check_as_of(i, *frac),
            LogicalOp::CheckTxn { slot } => self.check_txn(i, *slot),
        }
    }

    fn final_sweep(&mut self) -> Result<(), Divergence> {
        for slot in 0..self.slots.len() {
            self.commit_slot(usize::MAX, slot)?;
        }
        let (lse, lce) = (self.engine.manager().lse(), self.engine.manager().lce());
        let replay = Replay::build(&self.log);
        for epoch in lse..=lce {
            for idx in 0..NUM_QUERIES {
                let result = self
                    .engine
                    .query_as_of(ORACLE_CUBE, &build_query(idx), epoch)
                    .map_err(|e| fail(None, format!("sweep q{idx} at {epoch} failed: {e}")))?;
                let aosi = normalize(&result);
                let reference = eval_rows(&replay.rows_at_epoch(epoch), idx);
                self.comparisons += 1;
                if let Some(d) = diff(&aosi, &reference) {
                    return Err(fail(None, format!("sweep q{idx} at epoch {epoch}: {d}")));
                }
                // Same key as live checkpoints: the sweep
                // cross-validates every earlier fingerprint recorded
                // at this epoch (SI read stability).
                self.checker.record(TxnEvent::Read {
                    node: NODE,
                    snapshot_epoch: epoch,
                    deps: BTreeSet::new(),
                    observed: BTreeSet::new(),
                    reader: None,
                    key: format!("{ORACLE_CUBE}:q{idx}"),
                    fingerprint: fingerprint(&aosi),
                });
            }
        }
        self.clock_sample();
        let violations = self.checker.violations();
        if let Some(v) = violations.first() {
            return Err(fail(
                None,
                format!("{} checker violation(s), first: {v}", violations.len()),
            ));
        }
        Ok(())
    }
}

fn run_serial(
    schedule: &Schedule,
    crash_at: Option<usize>,
    inject: Option<Inject>,
) -> Result<RunReport, Divergence> {
    let max_slot = schedule
        .ops
        .iter()
        .filter_map(|op| match op {
            LogicalOp::Begin { slot }
            | LogicalOp::Append { slot, .. }
            | LogicalOp::Commit { slot }
            | LogicalOp::Rollback { slot }
            | LogicalOp::CheckTxn { slot } => Some(*slot),
            _ => None,
        })
        .max()
        .unwrap_or(0);
    let wal = crash_at.map(|_| {
        let dir = TempWalDir::new(&format!("oracle-crash-{}", schedule.seed));
        WalState {
            tracker: ReplicationTracker::new(1),
            ctl: Some(FlushController::new(dir.path(), NODE).expect("WAL dir")),
            dir,
            crashed: false,
        }
    });
    let mut state = Serial {
        engine: engine_with_cube(),
        checker: SiChecker::new(1),
        slots: (0..=max_slot).map(|_| None).collect(),
        log: Vec::new(),
        inject,
        comparisons: 0,
        wal,
    };
    let crash_point = crash_at.map(|c| c.min(schedule.ops.len()));
    for (i, op) in schedule.ops.iter().enumerate() {
        if crash_point == Some(i) {
            state.crash_and_recover()?;
        }
        state.apply(i, op)?;
    }
    if crash_point == Some(schedule.ops.len()) {
        state.crash_and_recover()?;
    }
    state.final_sweep()?;
    Ok(RunReport {
        ops_executed: schedule.ops.len(),
        comparisons: state.comparisons,
        checker_events: state.checker.events_checked(),
    })
}

// ---------------------------------------------------------------
// Stress executor
// ---------------------------------------------------------------

enum TxnStep {
    Rows(Vec<Row>),
    Check,
}

enum Unit {
    Txn { steps: Vec<TxnStep>, rollback: bool },
    Load(Vec<Row>),
    Delete(Vec<i64>),
    Maint,
    CheckNow,
    CheckAsOf(u8),
}

/// Folds slot-addressed ops into self-contained concurrent units. A
/// unit is emitted at its closing op's position; unclosed slots
/// commit at the end; ops referencing slots that are not open are
/// dropped (mirrors the serial executor's tolerance).
fn build_units(ops: &[LogicalOp]) -> Vec<Unit> {
    let mut units = Vec::new();
    let mut open: Vec<Option<Vec<TxnStep>>> = Vec::new();
    let slot_mut = |open: &mut Vec<Option<Vec<TxnStep>>>, slot: usize| {
        if slot >= open.len() {
            open.resize_with(slot + 1, || None);
        }
        slot
    };
    for op in ops {
        match op {
            LogicalOp::Begin { slot } => {
                let s = slot_mut(&mut open, *slot);
                if open[s].is_none() {
                    open[s] = Some(Vec::new());
                }
            }
            LogicalOp::Append { slot, rows } => {
                let s = slot_mut(&mut open, *slot);
                if let Some(steps) = open[s].as_mut() {
                    steps.push(TxnStep::Rows(rows.clone()));
                }
            }
            LogicalOp::CheckTxn { slot } => {
                let s = slot_mut(&mut open, *slot);
                if let Some(steps) = open[s].as_mut() {
                    steps.push(TxnStep::Check);
                }
            }
            LogicalOp::Commit { slot } => {
                let s = slot_mut(&mut open, *slot);
                if let Some(steps) = open[s].take() {
                    units.push(Unit::Txn {
                        steps,
                        rollback: false,
                    });
                }
            }
            LogicalOp::Rollback { slot } => {
                let s = slot_mut(&mut open, *slot);
                if let Some(steps) = open[s].take() {
                    units.push(Unit::Txn {
                        steps,
                        rollback: true,
                    });
                }
            }
            LogicalOp::Load { rows } => units.push(Unit::Load(rows.clone())),
            LogicalOp::DeleteDays { buckets } => units.push(Unit::Delete(days_of(buckets))),
            LogicalOp::Purge | LogicalOp::Flush => units.push(Unit::Maint),
            LogicalOp::CheckNow => units.push(Unit::CheckNow),
            LogicalOp::CheckAsOf { frac } => units.push(Unit::CheckAsOf(*frac)),
        }
    }
    for steps in open.into_iter().flatten() {
        units.push(Unit::Txn {
            steps,
            rollback: false,
        });
    }
    units
}

/// A committed-snapshot read recorded during the concurrent phase,
/// validated against the reference after the run.
struct ReadObs {
    epoch: u64,
    query: usize,
    norm: Norm,
}

/// An in-transaction read: snapshot, dependency set, and the rows
/// the transaction had appended when it ran.
struct TxnReadObs {
    epoch: u64,
    deps: BTreeSet<u64>,
    own: Vec<Row>,
    query: usize,
    norm: Norm,
}

struct StressShared {
    engine: Engine,
    checker: SiChecker,
    /// Begin-to-commit gate: append/load units hold it shared,
    /// delete units exclusively, so a delete's epoch order equals
    /// its physical order relative to every append (the straggler
    /// exclusion the reference model requires).
    gate: RwLock<()>,
    log: Mutex<Vec<CommittedOp>>,
    reads: Mutex<Vec<ReadObs>>,
    txn_reads: Mutex<Vec<TxnReadObs>>,
    failed: Mutex<Option<Divergence>>,
    comparisons: AtomicUsize,
}

impl StressShared {
    fn fail_once(&self, d: Divergence) {
        let mut failed = self.failed.lock().unwrap();
        if failed.is_none() {
            *failed = Some(d);
        }
    }

    fn run_unit(&self, unit: &Unit, unit_idx: usize, inject: Option<Inject>) {
        match unit {
            Unit::Load(rows) => {
                let _shared = self.gate.read().unwrap();
                let txn = self.engine.begin();
                self.checker.record(TxnEvent::Begin {
                    node: NODE,
                    epoch: txn.epoch(),
                    deps: txn.snapshot().deps().clone(),
                });
                match self.engine.append(ORACLE_CUBE, rows, &txn) {
                    Ok((_, 0)) => {}
                    Ok((_, rejected)) => {
                        return self.fail_once(fail(
                            None,
                            format!("load rejected {rejected} generated rows"),
                        ))
                    }
                    Err(e) => return self.fail_once(fail(None, format!("load failed: {e}"))),
                }
                if let Err(e) = self.engine.commit(&txn) {
                    return self.fail_once(fail(None, format!("load commit failed: {e}")));
                }
                self.checker.record(TxnEvent::Commit {
                    node: NODE,
                    epoch: txn.epoch(),
                });
                self.log.lock().unwrap().push(CommittedOp::Rows {
                    epoch: txn.epoch(),
                    rows: rows.clone(),
                });
            }
            Unit::Txn { steps, rollback } => {
                let _shared = self.gate.read().unwrap();
                let txn = self.engine.begin();
                self.checker.record(TxnEvent::Begin {
                    node: NODE,
                    epoch: txn.epoch(),
                    deps: txn.snapshot().deps().clone(),
                });
                let mut own: Vec<Row> = Vec::new();
                for (step_idx, step) in steps.iter().enumerate() {
                    match step {
                        TxnStep::Rows(rows) => match self.engine.append(ORACLE_CUBE, rows, &txn) {
                            Ok((_, 0)) => own.extend_from_slice(rows),
                            Ok((_, rejected)) => {
                                return self.fail_once(fail(
                                    None,
                                    format!("append rejected {rejected} generated rows"),
                                ))
                            }
                            Err(e) => {
                                return self.fail_once(fail(None, format!("append failed: {e}")))
                            }
                        },
                        TxnStep::Check => {
                            for idx in 0..NUM_QUERIES {
                                let result = match self.engine.query_in_txn(
                                    ORACLE_CUBE,
                                    &build_query(idx),
                                    &txn,
                                ) {
                                    Ok(r) => r,
                                    Err(e) => {
                                        return self.fail_once(fail(
                                            None,
                                            format!("in-txn query failed: {e}"),
                                        ))
                                    }
                                };
                                let norm = normalize(&result);
                                self.checker.record(TxnEvent::Read {
                                    node: NODE,
                                    snapshot_epoch: txn.epoch(),
                                    deps: txn.snapshot().deps().clone(),
                                    observed: BTreeSet::new(),
                                    reader: Some(txn.epoch()),
                                    key: format!("{ORACLE_CUBE}:u{unit_idx}s{step_idx}:q{idx}"),
                                    fingerprint: fingerprint(&norm),
                                });
                                self.txn_reads.lock().unwrap().push(TxnReadObs {
                                    epoch: txn.epoch(),
                                    deps: txn.snapshot().deps().clone(),
                                    own: own.clone(),
                                    query: idx,
                                    norm,
                                });
                            }
                        }
                    }
                }
                if *rollback {
                    match self.engine.rollback(&txn) {
                        Ok(removed) if removed == own.len() as u64 => {
                            self.checker.record(TxnEvent::Rollback {
                                node: NODE,
                                epoch: txn.epoch(),
                            });
                        }
                        Ok(removed) => self.fail_once(fail(
                            None,
                            format!("rollback reclaimed {removed} rows of {}", own.len()),
                        )),
                        Err(e) => self.fail_once(fail(None, format!("rollback failed: {e}"))),
                    }
                } else {
                    if let Err(e) = self.engine.commit(&txn) {
                        return self.fail_once(fail(None, format!("commit failed: {e}")));
                    }
                    self.checker.record(TxnEvent::Commit {
                        node: NODE,
                        epoch: txn.epoch(),
                    });
                    self.log.lock().unwrap().push(CommittedOp::Rows {
                        epoch: txn.epoch(),
                        rows: own,
                    });
                }
            }
            Unit::Delete(days) => {
                let _exclusive = self.gate.write().unwrap();
                match self.engine.delete_where(ORACLE_CUBE, &[day_filter(days)]) {
                    Ok((epoch, _)) => {
                        self.checker.record(TxnEvent::Begin {
                            node: NODE,
                            epoch,
                            deps: BTreeSet::new(),
                        });
                        self.checker.record(TxnEvent::Commit { node: NODE, epoch });
                        self.log.lock().unwrap().push(CommittedOp::Delete {
                            epoch,
                            days: days.clone(),
                        });
                    }
                    Err(e) => self.fail_once(fail(None, format!("delete failed: {e}"))),
                }
            }
            Unit::Maint => {
                // advance_lse_and_purge backs off when a reader holds
                // an older guard; no gate needed.
                self.engine.advance_lse_and_purge();
            }
            Unit::CheckNow => {
                let guard = self.engine.manager().begin_read();
                let claimed = guard.snapshot().epoch();
                let snap = match inject {
                    Some(Inject::SnapshotBehind) => Snapshot::committed(claimed.saturating_sub(1)),
                    None => guard.snapshot().clone(),
                };
                for idx in 0..NUM_QUERIES {
                    let result = match self.engine.query_at(ORACLE_CUBE, &build_query(idx), &snap) {
                        Ok(r) => r,
                        Err(e) => return self.fail_once(fail(None, format!("check failed: {e}"))),
                    };
                    let norm = normalize(&result);
                    self.checker.record(TxnEvent::Read {
                        node: NODE,
                        snapshot_epoch: claimed,
                        deps: BTreeSet::new(),
                        observed: BTreeSet::new(),
                        reader: None,
                        key: format!("{ORACLE_CUBE}:q{idx}"),
                        fingerprint: fingerprint(&norm),
                    });
                    self.reads.lock().unwrap().push(ReadObs {
                        epoch: claimed,
                        query: idx,
                        norm,
                    });
                }
            }
            Unit::CheckAsOf(frac) => {
                let (lse, lce) = (self.engine.manager().lse(), self.engine.manager().lce());
                if lce == 0 {
                    return;
                }
                let window = lce - lse + 1;
                let epoch = (lse + (u64::from(*frac) * window) / 256).min(lce);
                for idx in 0..NUM_QUERIES {
                    match self
                        .engine
                        .query_as_of(ORACLE_CUBE, &build_query(idx), epoch)
                    {
                        Ok(result) => {
                            let norm = normalize(&result);
                            self.checker.record(TxnEvent::Read {
                                node: NODE,
                                snapshot_epoch: epoch,
                                deps: BTreeSet::new(),
                                observed: BTreeSet::new(),
                                reader: None,
                                key: format!("{ORACLE_CUBE}:q{idx}"),
                                fingerprint: fingerprint(&norm),
                            });
                            self.reads.lock().unwrap().push(ReadObs {
                                epoch,
                                query: idx,
                                norm,
                            });
                        }
                        // The window can move between reading LSE/LCE
                        // and the guarded re-check inside query_as_of;
                        // a benign race, not a divergence.
                        Err(cubrick::CubrickError::EpochOutOfRange { .. }) => {}
                        Err(e) => {
                            return self.fail_once(fail(None, format!("as-of check failed: {e}")))
                        }
                    }
                }
            }
        }
    }
}

fn run_stress(schedule: &Schedule, inject: Option<Inject>) -> Result<RunReport, Divergence> {
    let units = build_units(&schedule.ops);
    let shared = StressShared {
        engine: engine_with_cube(),
        checker: SiChecker::new(1),
        gate: RwLock::new(()),
        log: Mutex::new(Vec::new()),
        reads: Mutex::new(Vec::new()),
        txn_reads: Mutex::new(Vec::new()),
        failed: Mutex::new(None),
        comparisons: AtomicUsize::new(0),
    };
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..STRESS_THREADS {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= units.len() || shared.failed.lock().unwrap().is_some() {
                    break;
                }
                shared.run_unit(&units[idx], idx, inject);
            });
        }
    });
    if let Some(d) = shared.failed.lock().unwrap().take() {
        return Err(d);
    }

    // Post-hoc: diff every recorded read against the reference built
    // from the final committed log. Sound because every read ran at a
    // committed snapshot (all epochs <= E finished by the LCE rule)
    // and the gate excluded delete/append stragglers.
    let log = shared.log.into_inner().unwrap();
    let replay = Replay::build(&log);
    let mut comparisons = shared.comparisons.load(Ordering::Relaxed) as u64;
    for obs in shared.reads.into_inner().unwrap() {
        let reference = eval_rows(&replay.rows_at_epoch(obs.epoch), obs.query);
        comparisons += 1;
        if let Some(d) = diff(&obs.norm, &reference) {
            return Err(fail(
                None,
                format!("concurrent read q{} at epoch {}: {d}", obs.query, obs.epoch),
            ));
        }
    }
    for obs in shared.txn_reads.into_inner().unwrap() {
        // Every epoch < E outside the deps set had finished before
        // the reader began, so the final log suffices to reconstruct
        // the read's visible rows.
        let model = model_txn_rows(&log, obs.epoch, &obs.deps, &obs.own);
        let reference = eval_rows(&model, obs.query);
        comparisons += 1;
        if let Some(d) = diff(&obs.norm, &reference) {
            return Err(fail(
                None,
                format!(
                    "concurrent in-txn read q{} at epoch {} (deps {:?}): {d}",
                    obs.query, obs.epoch, obs.deps
                ),
            ));
        }
    }

    // Quiescent final sweep over the whole readable window.
    let engine = shared.engine;
    let checker = shared.checker;
    let (lse, lce) = (engine.manager().lse(), engine.manager().lce());
    for epoch in lse..=lce {
        for idx in 0..NUM_QUERIES {
            let result = engine
                .query_as_of(ORACLE_CUBE, &build_query(idx), epoch)
                .map_err(|e| fail(None, format!("sweep q{idx} at {epoch} failed: {e}")))?;
            let aosi = normalize(&result);
            let reference = eval_rows(&replay.rows_at_epoch(epoch), idx);
            comparisons += 1;
            if let Some(d) = diff(&aosi, &reference) {
                return Err(fail(None, format!("sweep q{idx} at epoch {epoch}: {d}")));
            }
            checker.record(TxnEvent::Read {
                node: NODE,
                snapshot_epoch: epoch,
                deps: BTreeSet::new(),
                observed: BTreeSet::new(),
                reader: None,
                key: format!("{ORACLE_CUBE}:q{idx}"),
                fingerprint: fingerprint(&aosi),
            });
        }
    }
    // Clocks are only sampled at quiescence: a concurrent sample
    // could pair an old EC with a newer LCE and trip the checker on
    // a torn read rather than a real violation.
    let clock = engine.manager().clock();
    checker.record(TxnEvent::ClockSample {
        node: NODE,
        ec: clock.current_ec(),
        lce: clock.lce(),
        lse: clock.lse(),
    });
    let violations = checker.violations();
    if let Some(v) = violations.first() {
        return Err(fail(
            None,
            format!("{} checker violation(s), first: {v}", violations.len()),
        ));
    }
    Ok(RunReport {
        ops_executed: schedule.ops.len(),
        comparisons,
        checker_events: checker.events_checked(),
    })
}
