//! The pinned oracle corpus: 40 seeds across the three execution
//! modes, plus the env replay hooks and the injected-bug meta-test.
//!
//! A red run here means the AOSI engine and the MVCC reference
//! disagreed (or the SI checker fired). The failing seed is
//! minimized and dumped automatically; reproduce locally with
//! `AOSI_ORACLE_SEEDS=<seed> cargo test -p oracle` or replay the
//! dumped artifact with `AOSI_ORACLE_REPLAY=<file> cargo test -p oracle`.

use std::path::PathBuf;

use oracle::{check_seed, minimize, replay_artifact, run, Inject, Mode};
use workload::ops::{GenConfig, LogicalOp, Schedule};

fn cfg() -> GenConfig {
    GenConfig::default()
}

/// 16 deterministic seeds: every divergence here is replayable and
/// minimizable byte-for-byte.
#[test]
fn pinned_corpus_deterministic() {
    for seed in 1..=16u64 {
        let report = check_seed(seed, Mode::Deterministic, &cfg());
        assert!(report.comparisons > 0, "seed {seed} compared nothing");
        assert!(report.checker_events > 0, "seed {seed} checked nothing");
    }
}

/// 12 stress seeds: the same schedules as transaction-sized units on
/// a thread pool, committed reads validated post-hoc.
#[test]
fn pinned_corpus_stress() {
    for seed in 101..=112u64 {
        let report = check_seed(seed, Mode::Stress, &cfg());
        assert!(report.comparisons > 0, "seed {seed} compared nothing");
    }
}

/// 12 crash-recovery seeds: WAL flush rounds during the run, engine
/// killed at a seed-derived index, recovered from disk, equivalence
/// re-checked against the pruned log, schedule continued.
#[test]
fn pinned_corpus_crash_recovery() {
    for seed in 201..=212u64 {
        let len = Schedule::generate(seed, &cfg()).ops.len();
        // Spread crash points across the middle of the schedule.
        let crash_at = len / 4 + (seed as usize * 7) % (len / 2);
        let report = check_seed(seed, Mode::Crash { crash_at }, &cfg());
        assert!(report.comparisons > 0, "seed {seed} compared nothing");
    }
}

/// `AOSI_ORACLE_SEEDS=7,99` runs extra seeds through all three modes
/// (the replay path for a red CI run).
#[test]
fn env_seeds_replay() {
    let Ok(spec) = std::env::var("AOSI_ORACLE_SEEDS") else {
        return;
    };
    for part in spec.split([',', ' ']).filter(|s| !s.is_empty()) {
        let seed: u64 = part
            .parse()
            .unwrap_or_else(|e| panic!("bad seed {part:?} in AOSI_ORACLE_SEEDS: {e}"));
        let len = Schedule::generate(seed, &cfg()).ops.len();
        check_seed(seed, Mode::Deterministic, &cfg());
        check_seed(seed, Mode::Stress, &cfg());
        check_seed(seed, Mode::Crash { crash_at: len / 2 }, &cfg());
        eprintln!("oracle seed {seed}: all three modes clean");
    }
}

/// `AOSI_ORACLE_REPLAY=a.seed,b.seed` re-runs dumped artifacts; the
/// test fails (reproducing the divergence) if any still diverges.
#[test]
fn env_artifact_replay() {
    let Ok(spec) = std::env::var("AOSI_ORACLE_REPLAY") else {
        return;
    };
    for path in spec.split(',').filter(|s| !s.is_empty()) {
        let path = PathBuf::from(path);
        match replay_artifact(&path) {
            Ok(report) => eprintln!(
                "replayed {} clean ({} comparisons)",
                path.display(),
                report.comparisons
            ),
            Err(d) => panic!("artifact {} reproduces: {d}", path.display()),
        }
    }
}

/// Meta-test: an intentionally injected visibility bug — committed
/// checkpoints silently reading one epoch behind the snapshot they
/// claim — must be (a) caught, (b) minimized to a small schedule,
/// and (c) dumped as an artifact that still fails on replay. This is
/// the proof the oracle detects the class of bug it exists for.
#[test]
fn injected_visibility_bug_is_caught_and_minimized() {
    let schedule = Schedule::generate(7, &GenConfig::default());
    let inject = Some(Inject::SnapshotBehind);
    let divergence = run(&schedule, Mode::Deterministic, inject)
        .expect_err("a stale-snapshot read must diverge");
    assert!(
        divergence.detail.contains("epoch"),
        "divergence names the epoch: {divergence}"
    );

    let min = minimize(&schedule, Mode::Deterministic, inject)
        .expect("a deterministic failure minimizes");
    assert!(
        min.schedule.ops.len() < schedule.ops.len() / 2,
        "shrunk {} ops to {}",
        schedule.ops.len(),
        min.schedule.ops.len()
    );
    // The minimal reproduction needs data and a checkpoint — it
    // cannot be smaller than two ops.
    assert!(min.schedule.ops.len() >= 2);
    assert!(
        min.schedule
            .ops
            .iter()
            .any(|op| matches!(op, LogicalOp::CheckNow)),
        "a committed checkpoint survives minimization"
    );

    // The dumped artifact reproduces the failure standalone.
    let replayed = replay_artifact(&min.artifact).expect_err("artifact still diverges");
    assert!(
        replayed.detail.contains("epoch"),
        "replayed divergence: {replayed}"
    );
}

/// The same injected bug is also caught by the stress executor's
/// post-hoc validation (at least one of a handful of seeds must
/// trip; scheduling noise may hide it on any single one).
#[test]
fn injected_bug_caught_under_stress() {
    let caught = (7..12u64).any(|seed| {
        let schedule = Schedule::generate(seed, &cfg());
        run(&schedule, Mode::Stress, Some(Inject::SnapshotBehind)).is_err()
    });
    assert!(caught, "stale-snapshot reads survived the stress oracle");
}
