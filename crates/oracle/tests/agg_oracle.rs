//! The merge-oracle corpus: pinned seeded schedules proving the
//! [`cubrick::AggState`] merge algebra — any partition of the brick
//! set, merged in any order and association, finalizes bit-identically
//! to the single-pass reference — plus the meta-tests that give the
//! oracle its teeth: the AVG mean-of-means trap and a deliberately
//! corrupted aggregate cache.
//!
//! Reproduce a failing seed with
//! `AOSI_AGG_SEEDS=<seed> cargo test -p oracle --test agg_oracle`.

use aosi::Snapshot;
use columnar::Value;
use cubrick::{AggFn, Aggregation, Query};
use oracle::agg::{check_agg_seed, replay_agg_artifact};
use oracle::scan::{compare_paths, scan_engine};
use workload::ops::{GenConfig, ORACLE_CUBE};

/// Shorter schedules than the scan oracle's: every checkpoint runs
/// the full battery times five merge plans, so per-seed work is ~5x a
/// scan-oracle seed and the corpus must stay CI-friendly.
fn cfg() -> GenConfig {
    GenConfig {
        ops: 24,
        slots: 3,
        max_batch: 6,
    }
}

/// 44 pinned seeds — the per-push merge corpus. Every schedule's
/// checkpoints re-merge the per-brick partials through forward,
/// reversed, and three seeded partition/association plans, and the
/// final sweep runs the window twice so cached partial replays are
/// re-merged too.
#[test]
fn agg_corpus_pinned_seeds() {
    let mut comparisons = 0u64;
    let mut partials = 0u64;
    for seed in 1..=44u64 {
        let report = check_agg_seed(seed, &cfg());
        assert!(report.comparisons > 0, "seed {seed} compared nothing");
        comparisons += report.comparisons;
        partials += report.partials_folded;
    }
    // The corpus as a whole must have folded multi-brick partial
    // sets, or the associativity properties were vacuous.
    assert!(
        partials > comparisons,
        "corpus averaged under one partial per comparison"
    );
    eprintln!("merge oracle: 44 seeds, {comparisons} comparisons, {partials} partials folded");
}

/// `AOSI_AGG_SEEDS=7,99` replays extra seeds (the red-CI hook).
#[test]
fn env_agg_seeds_replay() {
    let Ok(spec) = std::env::var("AOSI_AGG_SEEDS") else {
        return;
    };
    for part in spec.split([',', ' ']).filter(|s| !s.is_empty()) {
        let seed: u64 = part
            .parse()
            .unwrap_or_else(|e| panic!("bad seed {part:?} in AOSI_AGG_SEEDS: {e}"));
        let report = check_agg_seed(seed, &cfg());
        eprintln!(
            "merge oracle seed {seed}: clean ({} comparisons)",
            report.comparisons
        );
    }
}

/// `AOSI_AGG_REPLAY=/path/a.seed,/path/b.seed` replays dumped
/// artifacts byte-for-byte.
#[test]
fn env_agg_artifact_replay() {
    let Ok(spec) = std::env::var("AOSI_AGG_REPLAY") else {
        return;
    };
    for path in spec.split(',').filter(|s| !s.is_empty()) {
        match replay_agg_artifact(std::path::Path::new(path)) {
            Ok(report) => eprintln!(
                "artifact {path}: clean ({} comparisons)",
                report.comparisons
            ),
            Err(divergence) => panic!("artifact {path} still diverges: {divergence}"),
        }
    }
}

/// AVG merge must combine `(sum, count)` pairs, not averaged doubles.
/// Two chunks with asymmetric row counts: chunk A holds three zeros,
/// chunk B one ten. True mean = 10/4 = 2.5; mean-of-means = (0+10)/2
/// = 5. If the merge ever degrades to finalized averages, this fails.
#[test]
fn avg_merge_combines_sum_count_not_means() {
    let engine = scan_engine();
    // "day" routes bricks: days 0-3 land in one brick, 8-11 another
    // (oracle schema buckets days by 4). Three rows score 0 in one
    // brick, one row score 10 in the other.
    let rows: Vec<Vec<Value>> = vec![
        vec![
            Value::from("r0"),
            Value::I64(0),
            Value::I64(1),
            Value::F64(0.0),
        ],
        vec![
            Value::from("r0"),
            Value::I64(1),
            Value::I64(1),
            Value::F64(0.0),
        ],
        vec![
            Value::from("r0"),
            Value::I64(2),
            Value::I64(1),
            Value::F64(0.0),
        ],
        vec![
            Value::from("r0"),
            Value::I64(9),
            Value::I64(1),
            Value::F64(10.0),
        ],
    ];
    engine.load(ORACLE_CUBE, &rows, 0).unwrap();
    let snapshot = Snapshot::committed(engine.manager().lce());
    let query = Query::aggregate(vec![Aggregation::new(AggFn::Avg, "score")]);
    let partials = engine
        .query_brick_partials(ORACLE_CUBE, &query, &snapshot)
        .unwrap();
    assert!(
        partials.len() >= 2,
        "rows must spread across bricks for the two-chunk regression"
    );
    // The naive merge: finalize each chunk separately, average the
    // averages. Guard that the workload actually makes it wrong.
    let chunk_means: Vec<f64> = partials
        .iter()
        .map(|p| {
            engine
                .finalize_partials(ORACLE_CUBE, &query, std::iter::once(p.clone()))
                .unwrap()
                .rows[0]
                .1[0]
        })
        .filter(|m| !m.is_nan())
        .collect();
    let mean_of_means: f64 = chunk_means.iter().sum::<f64>() / chunk_means.len() as f64;
    let merged = engine
        .finalize_partials(ORACLE_CUBE, &query, partials)
        .unwrap();
    assert_eq!(merged.rows[0].1[0], 2.5, "true mean of 0,0,0,10");
    assert_ne!(
        merged.rows[0].1[0], mean_of_means,
        "workload no longer distinguishes sum/count from mean-of-means"
    );
    let reference = engine
        .query_at_reference(ORACLE_CUBE, &query, &snapshot)
        .unwrap();
    assert_eq!(
        merged.rows[0].1[0].to_bits(),
        reference.rows[0].1[0].to_bits()
    );
}

/// Meta-test: a corrupted cached aggregate partial MUST be caught by
/// the differential compare. Warms the aggregate cache, nudges every
/// cached state in place without touching keys — what a missed
/// invalidation or a torn write would look like — and demands the
/// fast-vs-reference diff notice.
#[test]
fn corrupted_agg_cache_is_caught_by_the_oracle() {
    let engine = scan_engine();
    let rows: Vec<Vec<Value>> = (0..24)
        .map(|i| {
            vec![
                Value::from(format!("r{}", i % 4).as_str()),
                Value::from(i % 16),
                Value::from(i),
                Value::from(0.5),
            ]
        })
        .collect();
    engine.load(ORACLE_CUBE, &rows, 0).unwrap();
    let snapshot = Snapshot::committed(engine.manager().lce());
    compare_paths(&engine, &snapshot, None, "warm-up").expect("clean engine must agree");
    let stats = engine.agg_cache_stats().unwrap();
    assert!(stats.entries > 0, "warm-up left the aggregate cache empty");
    engine.corrupt_agg_cache_for_test();
    let divergence = compare_paths(&engine, &snapshot, None, "stale")
        .expect_err("oracle failed to catch a corrupted aggregate partial");
    assert!(
        divergence.detail.contains("differs from"),
        "unexpected divergence shape: {divergence}"
    );
    // Sanity: the corruption really was replayed from the cache.
    let after = engine.agg_cache_stats().unwrap();
    assert!(after.hits > stats.hits, "corrupted partials were not read");
}

/// The meta-test's dual: after the same corruption, invalidation (a
/// mutating load) must purge the poisoned partials so the engine
/// returns to agreement — aggregate-cache staleness cannot outlive
/// the next mutation of the brick.
#[test]
fn invalidation_heals_a_corrupted_agg_cache() {
    let engine = scan_engine();
    let rows: Vec<Vec<Value>> = (0..24)
        .map(|i| {
            vec![
                Value::from(format!("r{}", i % 4).as_str()),
                Value::from(i % 16),
                Value::from(i),
                Value::from(0.5),
            ]
        })
        .collect();
    engine.load(ORACLE_CUBE, &rows, 0).unwrap();
    let snapshot = Snapshot::committed(engine.manager().lce());
    compare_paths(&engine, &snapshot, None, "warm-up").unwrap();
    engine.corrupt_agg_cache_for_test();
    // Touch every loaded brick again: append invalidates their keys
    // in both caches.
    engine.load(ORACLE_CUBE, &rows, 0).unwrap();
    compare_paths(&engine, &snapshot, None, "healed")
        .expect("invalidation must evict corrupted partials");
}
