//! The pinned crash-torture corpus: 40 seeds, each run through the
//! full four-phase torture (boundary census, one power cut per write
//! syscall, hole probe, bit-flip probes), plus the env replay hooks
//! and the four injected-bug meta-tests.
//!
//! A red run here means a crash boundary exists from which recovery
//! does not restore exactly a complete flushed prefix. The failing
//! schedule is minimized and dumped automatically; reproduce with
//! `AOSI_CRASH_SEEDS=<seed> cargo test -p oracle --test crash_torture`
//! or `AOSI_CRASH_REPLAY=<file> cargo test -p oracle --test crash_torture`.

use std::panic::AssertUnwindSafe;
use std::path::PathBuf;

use oracle::{
    artifact_dir, check_crash_seed, replay_crash_artifact, run_torture, BugHooks, TortureConfig,
};
use workload::ops::Schedule;

fn cfg() -> TortureConfig {
    TortureConfig::default()
}

fn with_bugs(bugs: BugHooks) -> TortureConfig {
    TortureConfig {
        bugs,
        ..TortureConfig::default()
    }
}

/// 40 pinned seeds. Every mutating syscall of every seed's census run
/// becomes one simulated power cut; the corpus as a whole must cover
/// multi-round chains (several flushes back to back), hole probes,
/// and bit-flip probes.
#[test]
fn pinned_crash_corpus() {
    let mut multi_round_seeds = 0u32;
    let mut hole_probes = 0usize;
    let mut bitflip_probes = 0usize;
    let mut crash_points = 0u64;
    for seed in 301..=340u64 {
        let report = check_crash_seed(seed, &cfg());
        assert!(
            report.crash_points >= 4,
            "seed {seed} enumerated only {} boundaries",
            report.crash_points
        );
        assert!(report.comparisons > 0, "seed {seed} compared nothing");
        assert!(
            report.recoveries >= 2 + 2 * report.crash_points,
            "seed {seed}: {} recoveries for {} boundaries",
            report.recoveries,
            report.crash_points
        );
        if report.rounds_flushed >= 2 {
            multi_round_seeds += 1;
        }
        hole_probes += report.hole_probes;
        bitflip_probes += report.bitflip_probes;
        crash_points += report.crash_points;
    }
    // The acceptance bar: the corpus tortures multi-round workloads,
    // not just a single terminal flush.
    assert!(
        multi_round_seeds >= 10,
        "only {multi_round_seeds}/40 seeds flushed more than one round"
    );
    assert!(hole_probes >= 1, "no seed was deep enough for a hole probe");
    assert!(bitflip_probes >= 1, "no bit-flip probe landed");
    eprintln!(
        "crash corpus: 40 seeds, {crash_points} boundaries cut, \
         {hole_probes} hole probes, {bitflip_probes} bit-flip probes"
    );
}

/// `AOSI_CRASH_SEEDS=7,99` runs extra seeds through the torture (the
/// nightly sweep and the red-CI replay path).
#[test]
fn env_crash_seeds() {
    let Ok(spec) = std::env::var("AOSI_CRASH_SEEDS") else {
        return;
    };
    for part in spec.split([',', ' ']).filter(|s| !s.is_empty()) {
        let seed: u64 = part
            .parse()
            .unwrap_or_else(|e| panic!("bad seed {part:?} in AOSI_CRASH_SEEDS: {e}"));
        let report = check_crash_seed(seed, &cfg());
        eprintln!(
            "crash seed {seed}: {} boundaries clean ({} comparisons)",
            report.crash_points, report.comparisons
        );
    }
}

/// `AOSI_CRASH_REPLAY=a.seed,b.seed` re-runs dumped artifacts; the
/// test fails (reproducing the violation) if any still fails.
#[test]
fn env_crash_replay() {
    let Ok(spec) = std::env::var("AOSI_CRASH_REPLAY") else {
        return;
    };
    for path in spec.split(',').filter(|s| !s.is_empty()) {
        let path = PathBuf::from(path);
        match replay_crash_artifact(&path) {
            Ok(report) => eprintln!(
                "replayed {} clean ({} boundaries)",
                path.display(),
                report.crash_points
            ),
            Err(fail) => panic!("artifact {} reproduces: {fail}", path.display()),
        }
    }
}

// ---------------------------------------------------------------
// Injected-bug meta-tests: each of the four fixed durability bugs,
// re-introduced behind its test hook, must be caught by the harness.
// This is the proof the torture detects the class of bug it exists
// for.
// ---------------------------------------------------------------

/// Bug 1 — the restart clobber: a controller reopened after a crash
/// restarts its file sequence at zero, overwriting `round-00000000`
/// and stranding the rest of the old chain behind an lse break. A
/// single-round chain clobbered by a full re-flush is legitimately
/// indistinguishable from a correct resume, so the detector is
/// probabilistic across seeds: some seed with a multi-round chain
/// must trip it.
#[test]
fn injected_restart_clobber_is_caught() {
    let bugs = BugHooks {
        restart_clobber: true,
        ..Default::default()
    };
    let caught = (301..=308u64).any(|seed| {
        let schedule = Schedule::generate(seed, &cfg().gen);
        run_torture(&schedule, &with_bugs(bugs)).is_err()
    });
    assert!(caught, "a clobbering restart survived the torture");
}

/// Bugs 1+2 together — the pre-fix pairing: the clobbering restart
/// writes an inconsistent chain and gap-blind recovery replays it
/// anyway. With chain validation off the structural detector is
/// disarmed, so this must be caught the hard way: replayed duplicate
/// history diverges from the committed reference.
#[test]
fn injected_clobber_with_blind_recovery_is_caught() {
    let bugs = BugHooks {
        restart_clobber: true,
        skip_chain_validation: true,
        ..Default::default()
    };
    let caught = (301..=308u64).any(|seed| {
        let schedule = Schedule::generate(seed, &cfg().gen);
        run_torture(&schedule, &with_bugs(bugs)).is_err()
    });
    assert!(caught, "clobber + gap-blind recovery survived the torture");
}

/// Bug 2 — gap-blind recovery: with chain validation off, a missing
/// middle round must still be caught, now by content (the hole-probe
/// sweep sees post-hole rows with pre-hole history missing). Needs a
/// seed deep enough (>= 3 rounds) for the hole probe to run, hence
/// `any` over a few.
#[test]
fn injected_gap_blind_recovery_is_caught() {
    let bugs = BugHooks {
        skip_chain_validation: true,
        ..Default::default()
    };
    let caught = (301..=312u64).any(|seed| {
        let schedule = Schedule::generate(seed, &cfg().gen);
        match run_torture(&schedule, &with_bugs(bugs)) {
            Err(fail) => {
                eprintln!("seed {seed} caught gap-blind recovery: {fail}");
                true
            }
            Ok(_) => false,
        }
    });
    assert!(caught, "gap-blind recovery survived the torture");
}

/// Bug 3 — the recovery marker commit fails: this used to be a
/// `.expect` panic deep in recovery; it must now surface as an
/// orderly typed failure naming the marker, not a panic.
#[test]
fn injected_marker_failure_is_a_typed_error_not_a_panic() {
    let bugs = BugHooks {
        fail_marker: true,
        ..Default::default()
    };
    let schedule = Schedule::generate(301, &cfg().gen);
    let fail = run_torture(&schedule, &with_bugs(bugs))
        .expect_err("a failing marker commit must fail recovery");
    assert!(
        fail.detail.contains("marker"),
        "failure names the marker commit: {fail}"
    );
}

/// Bug 4 — the missing directory fsync: the round file's content is
/// durable but its directory entry is not, so the rename evaporates
/// on power loss. The census power-safety probe catches this
/// deterministically on any seed that flushes at all.
#[test]
fn injected_missing_dir_sync_is_caught() {
    let bugs = BugHooks {
        skip_dir_sync: true,
        ..Default::default()
    };
    let schedule = Schedule::generate(301, &cfg().gen);
    let fail = run_torture(&schedule, &with_bugs(bugs))
        .expect_err("volatile directory entries must fail the power-safety probe");
    assert!(
        fail.detail.contains("power-safe"),
        "failure names the power-safety probe: {fail}"
    );
}

/// The full red-run pipeline on an injected bug: `check_crash_seed`
/// panics with reproduction instructions, the minimized artifact is
/// written with the bug tags in its header, and replaying the
/// artifact reproduces the failure standalone.
#[test]
fn injected_bug_minimizes_to_a_replayable_artifact() {
    let bugs = BugHooks {
        skip_dir_sync: true,
        ..Default::default()
    };
    let cfg = with_bugs(bugs);
    let seed = 301u64;
    let panic_msg = std::panic::catch_unwind(AssertUnwindSafe(|| check_crash_seed(seed, &cfg)))
        .expect_err("an injected bug must panic the seed check");
    let panic_msg = panic_msg
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(
        panic_msg.contains(&format!("AOSI_CRASH_SEEDS={seed}")),
        "panic carries reproduction instructions: {panic_msg}"
    );

    let artifact = artifact_dir().join(format!("torture-seed{seed}-skip-dir-sync.seed"));
    assert!(
        artifact.exists(),
        "minimized artifact written to {}",
        artifact.display()
    );
    let fail = replay_crash_artifact(&artifact).expect_err("artifact still reproduces");
    assert!(
        fail.detail.contains("power-safe"),
        "replayed failure: {fail}"
    );
}
