//! The pinned tiered-storage torture corpus: each seed runs the full
//! tier torture (census with forced evict/reload cycles, one power
//! cut per mutating syscall — spill writes included — and the
//! snapshot media probes), plus the env replay hooks.
//!
//! A red run here means a crash boundary exists from which recovery
//! does not restore a complete flushed prefix without help from
//! snapshot files, or that damaged snapshot media was served instead
//! of failing typed. The failing schedule is minimized and dumped
//! automatically; reproduce with
//! `AOSI_TIER_SEEDS=<seed> cargo test -p oracle --test tier_torture`
//! or `AOSI_TIER_REPLAY=<file> cargo test -p oracle --test tier_torture`.

use std::path::PathBuf;

use oracle::{check_tier_seed, replay_tier_artifact, TierTortureConfig};

fn cfg() -> TierTortureConfig {
    TierTortureConfig::default()
}

/// 12 pinned seeds (the tier torture multiplies each schedule by a
/// larger syscall count than the crash torture, so the corpus is
/// smaller per-seed but must still cover the interesting shapes:
/// mid-schedule flushes, spill-then-reload cycles, media probes).
#[test]
fn pinned_tier_corpus() {
    let mut crash_points = 0u64;
    let mut spills = 0u64;
    let mut reloads = 0u64;
    let mut media_probes = 0usize;
    let mut multi_round_seeds = 0u32;
    for seed in 501..=512u64 {
        let report = check_tier_seed(seed, &cfg());
        assert!(
            report.crash_points >= 8,
            "seed {seed} enumerated only {} boundaries",
            report.crash_points
        );
        assert!(report.comparisons > 0, "seed {seed} compared nothing");
        assert!(
            report.spills >= 1 && report.reloads >= 1,
            "seed {seed} never cycled a brick through the cold tier \
             (spills {}, reloads {})",
            report.spills,
            report.reloads
        );
        assert!(
            report.recoveries >= 2 + report.crash_points,
            "seed {seed}: {} recoveries for {} boundaries",
            report.recoveries,
            report.crash_points
        );
        crash_points += report.crash_points;
        spills += report.spills;
        reloads += report.reloads;
        media_probes += report.media_probes;
        if report.rounds_flushed >= 2 {
            multi_round_seeds += 1;
        }
    }
    assert!(
        multi_round_seeds >= 3,
        "only {multi_round_seeds}/12 seeds flushed more than one round"
    );
    assert!(
        media_probes >= 12,
        "most seeds should damage at least one snapshot, got {media_probes} probes"
    );
    eprintln!(
        "tier corpus: 12 seeds, {crash_points} boundaries cut, \
         {spills} spills, {reloads} reloads, {media_probes} media probes"
    );
}

/// `AOSI_TIER_SEEDS=7,99` runs extra seeds through the tier torture
/// (the nightly sweep and the red-CI replay path).
#[test]
fn env_tier_seeds() {
    let Ok(spec) = std::env::var("AOSI_TIER_SEEDS") else {
        return;
    };
    for part in spec.split([',', ' ']).filter(|s| !s.is_empty()) {
        let seed: u64 = part
            .parse()
            .unwrap_or_else(|e| panic!("bad seed {part:?} in AOSI_TIER_SEEDS: {e}"));
        let report = check_tier_seed(seed, &cfg());
        eprintln!(
            "tier seed {seed}: {} boundaries clean ({} spills, {} reloads, \
             {} comparisons)",
            report.crash_points, report.spills, report.reloads, report.comparisons
        );
    }
}

/// `AOSI_TIER_REPLAY=a.seed,b.seed` re-runs dumped artifacts; the
/// test fails (reproducing the violation) if any still fails.
#[test]
fn env_tier_replay() {
    let Ok(spec) = std::env::var("AOSI_TIER_REPLAY") else {
        return;
    };
    for path in spec.split(',').filter(|s| !s.is_empty()) {
        let path = PathBuf::from(path);
        match replay_tier_artifact(&path) {
            Ok(report) => eprintln!(
                "replayed {} clean ({} boundaries)",
                path.display(),
                report.crash_points
            ),
            Err(fail) => panic!("artifact {} reproduces: {fail}", path.display()),
        }
    }
}
