//! The scan-path oracle corpus: 100+ pinned seeded schedules, each
//! proving the parallel + visibility-cached scan executor
//! byte-identical to the sequential uncached reference at every
//! committed snapshot — plus the meta-test that corrupts the cache
//! and demands the oracle notice.
//!
//! A red run here means the fast scan path (per-brick fan-out or a
//! cached visibility artifact) disagreed with the slow path on the
//! same engine state. Reproduce a failing seed with
//! `AOSI_SCAN_SEEDS=<seed> cargo test -p oracle --test scan_oracle`.

use aosi::Snapshot;
use columnar::Value;
use cubrick::DimStorage;
use oracle::checks::build_query;
use oracle::scan::{compare_paths, run_scan_schedule_with, scan_engine};
use workload::ops::{GenConfig, Schedule, ORACLE_CUBE};

/// Shorter schedules than the MVCC oracle's default: each seed's
/// work is doubled by the warm-cache sweep, and 100+ seeds must stay
/// CI-friendly. Density of mutation/check interleavings matters more
/// than schedule length for cache-staleness bugs.
fn cfg() -> GenConfig {
    GenConfig {
        ops: 40,
        slots: 3,
        max_batch: 6,
    }
}

fn check_scan_seed(seed: u64) -> oracle::ScanReport {
    let schedule = Schedule::generate(seed, &cfg());
    // Every third seed runs on bess-packed bricks, so the corpus
    // exercises the kernels' gather fallback as well as the
    // per-dimension slice fast path.
    let storage = if seed % 3 == 0 {
        DimStorage::Bess
    } else {
        DimStorage::Plain
    };
    match run_scan_schedule_with(&schedule, storage) {
        Ok(report) => report,
        Err(divergence) => panic!(
            "scan oracle diverged on seed {seed} ({storage:?}): {divergence}\n\
             reproduce: AOSI_SCAN_SEEDS={seed} cargo test -p oracle --test scan_oracle"
        ),
    }
}

/// 104 pinned seeds. Every schedule ends with a full-window sweep run
/// cold and then warm, so each seed validates both the parallel merge
/// order and cache coherence across its whole epoch history.
#[test]
fn scan_corpus_pinned_seeds() {
    let mut comparisons = 0u64;
    let mut cache_hits = 0u64;
    let mut parallel_tasks = 0u64;
    for seed in 1..=104u64 {
        let report = check_scan_seed(seed);
        assert!(report.comparisons > 0, "seed {seed} compared nothing");
        comparisons += report.comparisons;
        cache_hits += report.cache_hits;
        parallel_tasks += report.parallel_tasks;
    }
    // Aggregate proofs-of-exercise: the corpus as a whole must have
    // hit the cache and fanned scans out, or the oracle is vacuous.
    assert!(cache_hits > 0, "corpus never hit the visibility cache");
    assert!(parallel_tasks > 0, "corpus never took the parallel path");
    eprintln!(
        "scan oracle: 104 seeds, {comparisons} comparisons, \
         {cache_hits} cache hits"
    );
}

/// `AOSI_SCAN_SEEDS=7,99` replays extra seeds (the red-CI hook).
#[test]
fn env_scan_seeds_replay() {
    let Ok(spec) = std::env::var("AOSI_SCAN_SEEDS") else {
        return;
    };
    for part in spec.split([',', ' ']).filter(|s| !s.is_empty()) {
        let seed: u64 = part
            .parse()
            .unwrap_or_else(|e| panic!("bad seed {part:?} in AOSI_SCAN_SEEDS: {e}"));
        let report = check_scan_seed(seed);
        eprintln!(
            "scan oracle seed {seed}: clean ({} comparisons)",
            report.comparisons
        );
    }
}

/// Meta-test: a deliberately stale cache entry MUST be caught. Warms
/// the cache with the full battery (bitmap artifacts via the filtered
/// queries, range artifacts via the unfiltered ones), corrupts every
/// cached artifact in place without touching the keys — exactly what
/// a missed invalidation looks like — and asserts the oracle's
/// compare reports a divergence.
#[test]
fn stale_cache_entry_is_caught_by_the_oracle() {
    let engine = scan_engine();
    let rows: Vec<Vec<Value>> = (0..24)
        .map(|i| {
            vec![
                Value::from(format!("r{}", i % 4).as_str()),
                Value::from(i % 16),
                Value::from(i),
                Value::from(0.5),
            ]
        })
        .collect();
    engine.load(ORACLE_CUBE, &rows, 0).unwrap();
    let snapshot = Snapshot::committed(engine.manager().lce());
    // Clean warm-up: both paths agree and the cache is populated.
    compare_paths(&engine, &snapshot, None, "warm-up").expect("clean engine must agree");
    let stats = engine.visibility_cache_stats().unwrap();
    assert!(stats.entries > 0, "warm-up left the cache empty");
    // The injected bug: cached artifacts now lie about visibility.
    engine.corrupt_visibility_cache_for_test();
    let divergence = compare_paths(&engine, &snapshot, None, "stale")
        .expect_err("oracle failed to catch a corrupted cache entry");
    assert!(
        divergence.detail.contains("differs from"),
        "unexpected divergence shape: {divergence}"
    );
    // Sanity: the corruption really was served from the cache, not
    // silently recomputed around.
    let after = engine.visibility_cache_stats().unwrap();
    assert!(after.hits > stats.hits, "corrupted entries were not read");
}

/// The meta-test's dual: after the same corruption, *invalidation*
/// (here via a mutating load) must purge the poisoned entries so the
/// engine returns to agreement — staleness cannot outlive the next
/// mutation of the partition.
#[test]
fn invalidation_heals_a_corrupted_cache() {
    let engine = scan_engine();
    let rows: Vec<Vec<Value>> = (0..24)
        .map(|i| {
            vec![
                Value::from(format!("r{}", i % 4).as_str()),
                Value::from(i % 16),
                Value::from(i),
                Value::from(0.5),
            ]
        })
        .collect();
    engine.load(ORACLE_CUBE, &rows, 0).unwrap();
    let snapshot = Snapshot::committed(engine.manager().lce());
    compare_paths(&engine, &snapshot, None, "warm-up").unwrap();
    engine.corrupt_visibility_cache_for_test();
    // Touch every loaded brick again: append invalidates their keys.
    engine.load(ORACLE_CUBE, &rows, 0).unwrap();
    compare_paths(&engine, &snapshot, None, "healed")
        .expect("invalidation must evict corrupted artifacts");
    // And the old snapshot still answers with the pre-load rows.
    let result = engine
        .query_at(ORACLE_CUBE, &build_query(1), &snapshot)
        .unwrap();
    assert_eq!(result.rows[0].1[0], 24.0, "old snapshot must see 24 rows");
}
