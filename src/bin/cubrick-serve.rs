//! `cubrick-serve`: boot a fresh in-memory engine behind the
//! HTTP/JSON front door and serve until interrupted.
//!
//! ```sh
//! cargo run --release --bin cubrick-serve -- --bind 127.0.0.1:7717
//! curl -s localhost:7717/health
//! curl -s localhost:7717/query -d '{"sql": "SHOW CUBES"}'
//! ```
//!
//! Flags: `--bind ADDR:PORT` (default `127.0.0.1:7717`; port 0 picks
//! an ephemeral port), `--shards N` (shard pool size, default 4),
//! `--max-inflight N` (admission limit, default 64).

use std::sync::Arc;

use aosi_repro::cubrick::Engine;
use aosi_repro::server::{Server, ServerConfig};

fn main() {
    let mut config = ServerConfig {
        bind: "127.0.0.1:7717".parse().expect("static bind address"),
        ..ServerConfig::default()
    };
    let mut shards = 4usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--bind" => {
                config.bind = value("--bind").parse().unwrap_or_else(|_| {
                    eprintln!("--bind needs ADDR:PORT");
                    std::process::exit(2);
                })
            }
            "--shards" => {
                shards = value("--shards").parse().unwrap_or_else(|_| {
                    eprintln!("--shards needs a positive integer");
                    std::process::exit(2);
                })
            }
            "--max-inflight" => {
                config.max_inflight = value("--max-inflight").parse().unwrap_or_else(|_| {
                    eprintln!("--max-inflight needs an integer");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!(
                    "unknown flag {other}; usage: cubrick-serve \
                     [--bind ADDR:PORT] [--shards N] [--max-inflight N]"
                );
                std::process::exit(2);
            }
        }
    }

    let engine = Arc::new(Engine::new(shards.max(1)));
    let handle = match Server::start(engine, config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("cubrick-serve: failed to bind: {e}");
            std::process::exit(1);
        }
    };
    println!("cubrick-serve listening on http://{}", handle.addr());
    println!("  POST /query {{\"sql\": \"...\", \"session\": n?}}");
    println!("  POST /session | /session/pin | /session/close");
    println!("  GET  /health | /metrics");
    // Serve until the process is killed; the accept loop owns the
    // lifetime from here.
    loop {
        std::thread::park();
    }
}
