//! `cubrick-sql`: an interactive SQL shell over a fresh in-memory
//! engine.
//!
//! ```sh
//! cargo run --release --bin cubrick-sql
//! # or pipe a script:
//! cargo run --release --bin cubrick-sql < script.sql
//! ```
//!
//! Statements end at a newline (no `;` continuation); `\q` quits,
//! `\help` prints the statement surface. An optional `--shards N`
//! flag sizes the shard pool.

use std::io::{BufRead, Write};

use aosi_repro::cubrick::sql::{execute, SqlError};
use aosi_repro::cubrick::Engine;

const HELP: &str = "\
statements:
  CREATE CUBE name (col STRING|INT DIM(cardinality, range), col INT|FLOAT METRIC, ...)
  INSERT INTO cube VALUES (...), (...)
  SELECT SUM|COUNT|MIN|MAX|AVG(metric) [, ...] FROM cube
         [WHERE dim IN (...) [AND ...]] [GROUP BY dim [, ...]] [AS OF epoch]
  DELETE FROM cube [WHERE dim IN (...)]   -- whole partitions only
  DROP CUBE name
  PURGE                                    -- advance LSE + garbage-collect
  SHOW CUBES | SHOW MEMORY
  \\q to quit, \\help for this text
(no UPDATE and no single-row DELETE: that is the AOSI design)";

fn main() {
    let mut shards = 4usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--shards" {
            shards = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("--shards needs a positive integer");
                std::process::exit(2);
            });
        } else {
            eprintln!("unknown flag {arg}; usage: cubrick-sql [--shards N]");
            std::process::exit(2);
        }
    }

    let engine = Engine::new(shards.max(1));
    let interactive = is_tty();
    if interactive {
        println!("cubrick-sql — AOSI/Cubrick reproduction shell (\\help for help)");
    }

    let stdin = std::io::stdin();
    loop {
        if interactive {
            print!("sql> ");
            let _ = std::io::stdout().flush();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() || line.starts_with("--") {
            continue;
        }
        match line {
            "\\q" | "\\quit" | "exit" | "quit" => break,
            "\\help" | "help" => {
                println!("{HELP}");
                continue;
            }
            _ => {}
        }
        if !interactive {
            println!("sql> {line}");
        }
        match execute(&engine, line) {
            Ok(output) => println!("{}", output.render()),
            Err(e @ SqlError::Unsupported(_)) => println!("rejected: {e}"),
            Err(e) => println!("error: {e}"),
        }
    }
}

fn is_tty() -> bool {
    // Enough for prompt cosmetics: scripts pipe stdin, humans don't.
    std::io::IsTerminal::is_terminal(&std::io::stdin())
}
