//! Umbrella crate for the AOSI reproduction workspace.
//!
//! Re-exports the public crates so examples and integration tests can
//! use a single dependency. See the individual crates for the real
//! documentation:
//!
//! * [`aosi`] — the Append-Only Snapshot Isolation protocol.
//! * [`columnar`] — columnar storage substrate.
//! * [`cubrick`] — the Cubrick-style OLAP engine.
//! * [`cluster`] — simulated distributed substrate.
//! * [`mvcc_baseline`] — MVCC / 2PL baselines.
//! * [`wal`] — persistence and recovery.
//! * [`workload`] — dataset and query generators.
//! * [`server`] — the HTTP/JSON serving front door.

pub use aosi;
pub use cluster;
pub use columnar;
pub use cubrick;
pub use mvcc_baseline;
pub use server;
pub use wal;
pub use workload;
