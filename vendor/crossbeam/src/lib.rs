//! Offline stand-in for [`crossbeam`](https://crates.io/crates/crossbeam).
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the one piece of crossbeam it uses: the
//! unbounded MPMC channel. Implemented as `Mutex<VecDeque>` +
//! `Condvar` with sender/receiver reference counting, so
//! disconnection semantics match crossbeam:
//!
//! * `recv` on an empty channel blocks until a message arrives or
//!   every [`channel::Sender`] is dropped (then `Err(RecvError)`).
//! * `send` fails with `Err(SendError(msg))` once every
//!   [`channel::Receiver`] is dropped.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Error returned by [`Sender::send`] when every receiver is gone;
    /// carries the unsent message back to the caller.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and every sender is gone.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    /// The sending half; cheap to clone.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`, failing only if every receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(msg));
            }
            let mut queue = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            queue.push_back(msg);
            drop(queue);
            self.shared.ready.notify_one();
            Ok(())
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake blocked receivers so they observe
                // the disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    /// The receiving half; cheap to clone (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Receiver<T> {
        /// Dequeues a message, blocking while the channel is empty and
        /// at least one sender is alive.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(msg) = queue.pop_front() {
                    return Ok(msg);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .shared
                    .ready
                    .wait(queue)
                    .unwrap_or_else(|p| p.into_inner());
            }
        }

        /// Dequeues a message if one is immediately available.
        pub fn try_recv(&self) -> Result<T, RecvError> {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .pop_front()
                .ok_or(RecvError)
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvError};

    #[test]
    fn roundtrip_in_order() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        assert_eq!(rx.len(), 10);
        for i in 0..10 {
            assert_eq!(rx.recv(), Ok(i));
        }
    }

    #[test]
    fn recv_blocks_until_send() {
        let (tx, rx) = unbounded();
        let handle = std::thread::spawn(move || rx.recv());
        std::thread::sleep(std::time::Duration::from_millis(10));
        tx.send(42u32).unwrap();
        assert_eq!(handle.join().unwrap(), Ok(42));
    }

    #[test]
    fn dropping_all_senders_disconnects() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn dropping_receiver_fails_send() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(7).is_err());
    }

    #[test]
    fn cloned_senders_count_toward_disconnect() {
        let (tx, rx) = unbounded::<u8>();
        let tx2 = tx.clone();
        drop(tx);
        tx2.send(9).unwrap();
        drop(tx2);
        assert_eq!(rx.recv(), Ok(9));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn many_producers_one_consumer() {
        let (tx, rx) = unbounded();
        let handles: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..100u32 {
                        tx.send(p * 100 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        for h in handles {
            h.join().unwrap();
        }
        got.sort_unstable();
        assert_eq!(got, (0..400).collect::<Vec<_>>());
    }
}
