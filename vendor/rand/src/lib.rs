//! Offline stand-in for [`rand`](https://crates.io/crates/rand) 0.8.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice of the rand API it uses: [`Rng`] with
//! `gen`/`gen_range`/`gen_bool`, [`SeedableRng::seed_from_u64`], and
//! [`rngs::StdRng`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — not the real crate's ChaCha12, so seeded streams
//! differ from upstream rand, but every use in this workspace only
//! needs determinism within the workspace, not bit-compatibility.

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, `rand` 0.8 style.
pub trait SeedableRng: Sized {
    /// Deterministically builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniform value of `T` over its full natural range
    /// (`f64` in `[0, 1)`, integers over all bits, `bool` fair).
    fn gen<T: Standard>(&mut self) -> T {
        T::from_bits(self.next_u64())
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self.next_u64())
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::from_bits_uniform(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable from a single uniform `u64` (the `Standard`
/// distribution of the real crate).
pub trait Standard {
    /// Maps a uniform 64-bit value into `Self`.
    fn from_bits(bits: u64) -> Self;
}

impl Standard for u64 {
    fn from_bits(bits: u64) -> u64 {
        bits
    }
}

impl Standard for u32 {
    fn from_bits(bits: u64) -> u32 {
        (bits >> 32) as u32
    }
}

impl Standard for bool {
    fn from_bits(bits: u64) -> bool {
        bits & 1 == 1
    }
}

impl Standard for f64 {
    fn from_bits(bits: u64) -> f64 {
        f64::from_bits_uniform(bits)
    }
}

trait UnitFloat {
    fn from_bits_uniform(bits: u64) -> f64;
}

impl UnitFloat for f64 {
    /// Uniform in `[0, 1)`: the top 53 bits over 2^53.
    fn from_bits_uniform(bits: u64) -> f64 {
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Maps a uniform 64-bit value into the range.
    fn sample_from(self, bits: u64) -> T;
}

macro_rules! impl_int_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for std::ops::Range<$ty> {
            fn sample_from(self, bits: u64) -> $ty {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (bits as u128 % span) as i128) as $ty
            }
        }

        impl SampleRange<$ty> for std::ops::RangeInclusive<$ty> {
            fn sample_from(self, bits: u64) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range on empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + (bits as u128 % span) as i128) as $ty
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from(self, bits: u64) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + f64::from_bits_uniform(bits) * (self.end - self.start)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding.
            let mut next = || {
                seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = seed;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// A fresh generator seeded from the system clock and a thread-local
/// counter (the real crate's `thread_rng` stand-in).
pub fn thread_rng() -> rngs::StdRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    std::thread_local! {
        static COUNTER: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
    }
    let salt = COUNTER.with(|c| {
        let v = c.get();
        c.set(v + 1);
        v
    });
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    SeedableRng::seed_from_u64(nanos ^ salt.rotate_left(32))
}

/// Commonly imported names, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(5..15);
            assert!((5..15).contains(&v));
            let f = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let neg = rng.gen_range(-10i64..-2);
            assert!((-10..-2).contains(&neg));
            let inc = rng.gen_range(3u32..=4);
            assert!((3..=4).contains(&inc));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            lo |= u < 0.1;
            hi |= u > 0.9;
        }
        assert!(lo && hi, "samples should spread across [0, 1)");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }
}
