//! Offline stand-in for [`parking_lot`](https://crates.io/crates/parking_lot).
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the tiny slice of the parking_lot API it uses,
//! implemented on top of `std::sync`. Semantics match parking_lot
//! where the workspace depends on them:
//!
//! * `lock()` / `read()` / `write()` return guards directly (no
//!   `Result`); poisoning is ignored, matching parking_lot's
//!   poison-free behavior.
//! * [`Condvar::wait`] takes `&mut MutexGuard` instead of consuming
//!   the guard.
//!
//! Fairness, timed waits, and the raw-lock APIs are intentionally
//! absent — nothing here needs them.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Mutual exclusion primitive (std-backed, poison-free API).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            // A poisoned std mutex only means another thread panicked
            // while holding it; parking_lot has no poisoning, so
            // recover the guard and carry on.
            inner: Some(
                self.inner
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner()),
            ),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: Some(guard) }),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(MutexGuard {
                inner: Some(poisoned.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard for [`Mutex`].
///
/// Holds an `Option` internally so [`Condvar::wait`] can move the std
/// guard out and back without dropping the lock conceptually; the
/// option is `None` only transiently inside `wait`.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Reader-writer lock (std-backed, poison-free API).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self
                .inner
                .read()
                .unwrap_or_else(|poisoned| poisoned.into_inner()),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self
                .inner
                .write()
                .unwrap_or_else(|poisoned| poisoned.into_inner()),
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            Err(_) => f.write_str("RwLock { <locked> }"),
        }
    }
}

/// RAII shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Condition variable whose `wait` reborrows the parking_lot-style
/// guard instead of consuming it.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically releases the guard's mutex and waits for a
    /// notification, reacquiring the lock before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present");
        guard.inner = Some(
            self.inner
                .wait(std_guard)
                .unwrap_or_else(|poisoned| poisoned.into_inner()),
        );
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waiter = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        waiter.join().unwrap();
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the std mutex");
        })
        .join();
        // parking_lot has no poisoning: the lock stays usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
