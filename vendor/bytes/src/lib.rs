//! Offline stand-in for [`bytes`](https://crates.io/crates/bytes).
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the byte-buffer surface the `wal` codec uses:
//! little-endian `put_*` writers on [`BytesMut`], `remaining` on
//! `&[u8]` readers, and an immutable [`Bytes`] produced by
//! [`BytesMut::freeze`]. Backed by plain `Vec<u8>`/`Arc<[u8]>` — no
//! refcounted slicing tricks, which nothing here needs.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// Read-side cursor operations.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Advances the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }

    fn chunk(&self) -> &[u8] {
        self
    }
}

/// Write-side append operations (all integers little-endian, matching
/// the real crate's `_le` methods).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// Growable byte buffer.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with `capacity` bytes preallocated.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: Arc::from(self.data.into_boxed_slice()),
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut({} bytes)", self.data.len())
    }
}

/// Immutable shared byte buffer.
#[derive(Clone, PartialEq, Eq)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(Vec::new().into_boxed_slice()),
        }
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data.to_vec().into_boxed_slice()),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes {
            data: Arc::from(data.into_boxed_slice()),
        }
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} bytes)", self.data.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_methods_write_little_endian() {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_u8(0xAB);
        buf.put_u16_le(0x0102);
        buf.put_u32_le(0x03040506);
        buf.put_u64_le(0x0708090A0B0C0D0E);
        buf.put_i64_le(-2);
        buf.put_f64_le(1.5);
        buf.put_slice(b"xy");
        assert_eq!(buf.len(), 1 + 2 + 4 + 8 + 8 + 8 + 2);
        assert_eq!(buf[0], 0xAB);
        assert_eq!(&buf[1..3], &[0x02, 0x01]);
        let frozen = buf.freeze();
        assert_eq!(&frozen[frozen.len() - 2..], b"xy");
        assert_eq!(frozen.to_vec().len(), frozen.len());
    }

    #[test]
    fn slice_buf_cursor() {
        let data = [1u8, 2, 3, 4];
        let mut cursor: &[u8] = &data;
        assert_eq!(cursor.remaining(), 4);
        cursor.advance(1);
        assert_eq!(cursor.chunk(), &[2, 3, 4]);
        assert!(cursor.has_remaining());
        cursor.advance(3);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    fn bytes_clone_shares_storage() {
        let b = Bytes::from(vec![9u8; 8]);
        let c = b.clone();
        assert_eq!(&*b, &*c);
        assert_eq!(b, c);
    }
}
