//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the proptest surface its tests use: the
//! [`strategy::Strategy`] trait with `prop_map`/`prop_flat_map`/
//! `boxed`, range and tuple strategies, simple `[class]{m,n}` string
//! patterns, `prop::collection::{vec, btree_set}`, `prop::option::of`,
//! weighted `prop_oneof!`, and the `proptest!`/`prop_assert!` macros.
//!
//! Differences from the real crate, chosen deliberately:
//!
//! * **No shrinking.** A failing case reports the generated inputs
//!   and the deterministic seed instead of a minimized example.
//! * **Deterministic by construction.** Case `i` of test `t` always
//!   uses the same seed (hash of the test name mixed with `i`), so
//!   failures reproduce without a persistence file; existing
//!   `.proptest-regressions` files are ignored.

pub mod test_runner {
    //! Deterministic case runner and its config/error types.

    use std::cell::RefCell;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

    /// Subset of the real crate's config: how many cases to run.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed property check, carrying the failure message.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The property did not hold.
        Fail(String),
        /// The input was rejected (unused here; kept for API shape).
        Reject(String),
    }

    impl TestCaseError {
        /// Builds a failure from a message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError::Fail(message.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
            }
        }
    }

    /// The deterministic generator strategies draw from (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator with the given seed.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Next uniform 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `0..n` (`n` must be non-zero).
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    thread_local! {
        static CASE_INPUTS: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
    }

    /// Records one generated input's debug rendering for failure
    /// reports. Called by the `proptest!` expansion.
    pub fn record_input(rendered: String) {
        CASE_INPUTS.with(|i| i.borrow_mut().push(rendered));
    }

    fn drain_inputs() -> String {
        let inputs = CASE_INPUTS.with(|i| i.borrow_mut().split_off(0));
        if inputs.is_empty() {
            "    (no recorded inputs)".to_string()
        } else {
            inputs
                .iter()
                .map(|line| format!("    {line}"))
                .collect::<Vec<_>>()
                .join("\n")
        }
    }

    fn seed_for(name: &str, case: u32) -> u64 {
        // FNV-1a over the test name, mixed with the case index, so
        // every (test, case) pair replays identically run to run.
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    /// Runs `case` for each configured case with a per-case
    /// deterministic seed, reporting recorded inputs on failure.
    pub fn run<F>(name: &str, config: &ProptestConfig, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        for idx in 0..config.cases {
            CASE_INPUTS.with(|i| i.borrow_mut().clear());
            let seed = seed_for(name, idx);
            let mut rng = TestRng::new(seed);
            match catch_unwind(AssertUnwindSafe(|| case(&mut rng))) {
                Ok(Ok(())) => {}
                Ok(Err(err)) => panic!(
                    "[{name}] property failed at case {idx}/{} (seed {seed:#018x}): {err}\n\
                     inputs:\n{}",
                    config.cases,
                    drain_inputs(),
                ),
                Err(payload) => {
                    eprintln!(
                        "[{name}] case {idx}/{} panicked (seed {seed:#018x}); inputs:\n{}",
                        config.cases,
                        drain_inputs(),
                    );
                    resume_unwind(payload);
                }
            }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use super::test_runner::TestRng;
    use std::fmt;
    use std::marker::PhantomData;

    /// A recipe for generating values of [`Strategy::Value`].
    ///
    /// Unlike the real crate there is no value tree: `generate`
    /// produces a final value directly and nothing shrinks.
    pub trait Strategy {
        /// The type of generated values.
        type Value: fmt::Debug;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U: fmt::Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }

        /// Generates a value, then generates from the strategy `f`
        /// builds out of it.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { source: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: Box::new(self),
            }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, U: fmt::Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.source.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.source.generate(rng)).generate(rng)
        }
    }

    /// A type-erased strategy, produced by [`Strategy::boxed`].
    pub struct BoxedStrategy<T> {
        inner: Box<dyn DynStrategy<T>>,
    }

    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.inner.generate_dyn(rng)
        }
    }

    /// Always generates a clone of the held value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone + fmt::Debug>(pub T);

    impl<T: Clone + fmt::Debug> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Weighted choice between boxed strategies; the expansion target
    /// of `prop_oneof!`.
    pub struct Union<T> {
        variants: Vec<(u32, BoxedStrategy<T>)>,
    }

    impl<T: fmt::Debug> Union<T> {
        /// Builds a union from `(weight, strategy)` pairs.
        pub fn new_weighted(variants: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(
                variants.iter().any(|(w, _)| *w > 0),
                "prop_oneof! needs at least one positive weight"
            );
            Union { variants }
        }
    }

    impl<T: fmt::Debug> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let total: u64 = self.variants.iter().map(|(w, _)| *w as u64).sum();
            let mut pick = rng.below(total);
            for (weight, strategy) in &self.variants {
                if pick < *weight as u64 {
                    return strategy.generate(rng);
                }
                pick -= *weight as u64;
            }
            unreachable!("weighted pick out of range")
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "strategy over empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $ty
                }
            }

            impl Strategy for std::ops::RangeInclusive<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "strategy over empty range");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    (start as i128 + (rng.next_u64() as u128 % span) as i128) as $ty
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "strategy over empty range");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// String literals act as generation patterns. Supported shape:
    /// one character class with an optional repetition, e.g.
    /// `"[a-z_]{1,10}"`, `"[a-zA-Z0-9 '_-]{0,20}"`, or `"[abc]"`.
    /// Anything else generates the literal itself.
    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            match parse_pattern(self) {
                Some((alphabet, lo, hi)) => {
                    let len = lo + rng.below((hi - lo + 1) as u64) as usize;
                    (0..len)
                        .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
                        .collect()
                }
                None => (*self).to_string(),
            }
        }
    }

    /// Parses `[class]{lo,hi}` / `[class]{n}` / `[class]` into the
    /// expanded alphabet and length bounds.
    fn parse_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pattern.strip_prefix('[')?;
        let close = rest.find(']')?;
        let alphabet = expand_class(&rest[..close]);
        if alphabet.is_empty() {
            return None;
        }
        let tail = &rest[close + 1..];
        if tail.is_empty() {
            return Some((alphabet, 1, 1));
        }
        let counts = tail.strip_prefix('{')?.strip_suffix('}')?;
        let (lo, hi) = match counts.split_once(',') {
            Some((lo, hi)) => (lo.parse().ok()?, hi.parse().ok()?),
            None => {
                let n = counts.parse().ok()?;
                (n, n)
            }
        };
        (lo <= hi).then_some((alphabet, lo, hi))
    }

    /// Expands a character class body: `a-z` ranges plus literals;
    /// a trailing `-` is a literal dash.
    fn expand_class(body: &str) -> Vec<char> {
        let chars: Vec<char> = body.chars().collect();
        let mut alphabet = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            if i + 2 < chars.len() && chars[i + 1] == '-' {
                alphabet.extend(chars[i]..=chars[i + 2]);
                i += 3;
            } else {
                alphabet.push(chars[i]);
                i += 1;
            }
        }
        alphabet
    }

    /// See [`super::arbitrary::any`].
    pub struct Any<T> {
        _marker: PhantomData<T>,
    }

    impl<T> Any<T> {
        pub(crate) fn new() -> Self {
            Any {
                _marker: PhantomData,
            }
        }
    }

    impl<T: super::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::from_uniform(rng.next_u64())
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` over the primitive types the workspace uses.

    use super::strategy::Any;
    use std::fmt;

    /// Primitives generatable from a single uniform `u64`.
    pub trait Arbitrary: fmt::Debug + Sized {
        /// Maps a uniform 64-bit value into `Self`.
        fn from_uniform(bits: u64) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($ty:ty),*) => {$(
            impl Arbitrary for $ty {
                fn from_uniform(bits: u64) -> $ty {
                    bits as $ty
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn from_uniform(bits: u64) -> bool {
            bits & 1 == 1
        }
    }

    /// The full-range strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any::new()
    }
}

pub mod collection {
    //! `vec` and `btree_set` strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::fmt;

    /// Element-count bounds for collection strategies. Built from a
    /// fixed `usize` or a `lo..hi` / `lo..=hi` range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "collection size over empty range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "collection size over empty range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// A `Vec` of values from `element`, sized within `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `BTreeSet` of values from `element`; the target size is
    /// best-effort when the element domain is too small to fill it.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord + fmt::Debug,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.sample(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0;
            while set.len() < target && attempts < 10 * target + 10 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

pub mod option {
    //! The `prop::option::of` strategy.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Generates `None` a quarter of the time, `Some` otherwise.
    pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
        OptionStrategy { element }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        element: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.element.generate(rng))
            }
        }
    }
}

/// Everything tests normally import, including `prop` as an alias for
/// this crate so `prop::collection::vec(..)` paths resolve.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Weighted (`w => strategy`) or uniform choice among strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
}

/// Fails the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current property case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: {:?}\n right: {:?}",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)*),
            left,
            right
        );
    }};
}

/// Fails the current property case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  both: {:?}",
            left
        );
    }};
}

/// Declares property tests. Each `fn name(arg in strategy, ..) {..}`
/// becomes a `#[test]` (the attribute is written inside the block,
/// as with the real crate) running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand $config; $($rest)*);
    };
    (@expand $config:expr; $($(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                $crate::test_runner::run(
                    concat!(module_path!(), "::", stringify!($name)),
                    &config,
                    |__rng: &mut $crate::test_runner::TestRng|
                        -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $(
                            let $arg = {
                                let __value =
                                    $crate::strategy::Strategy::generate(&($strategy), __rng);
                                $crate::test_runner::record_input(format!(
                                    concat!(stringify!($arg), " = {:?}"),
                                    __value
                                ));
                                __value
                            };
                        )+
                        { $body }
                        ::std::result::Result::Ok(())
                    },
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@expand $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::new(1);
        let strategy = (1u64..20, 0u8..6);
        for _ in 0..1000 {
            let (a, b) = strategy.generate(&mut rng);
            assert!((1..20).contains(&a));
            assert!(b < 6);
        }
    }

    #[test]
    fn string_patterns_expand_classes() {
        let mut rng = TestRng::new(2);
        for _ in 0..500 {
            let s = "[a-z_]{1,10}".generate(&mut rng);
            assert!((1..=10).contains(&s.len()), "bad length: {s:?}");
            assert!(s.chars().all(|c| c == '_' || c.is_ascii_lowercase()));
            let t = "[a-zA-Z0-9 '_-]{0,20}".generate(&mut rng);
            assert!(t.len() <= 20);
            assert!(t
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || " '_-".contains(c)));
        }
    }

    #[test]
    fn oneof_respects_zero_weight_absence() {
        let mut rng = TestRng::new(3);
        let strategy = prop_oneof![
            3 => Just(1u8),
            1 => Just(2u8),
        ];
        let mut seen = [0u32; 3];
        for _ in 0..4000 {
            seen[strategy.generate(&mut rng) as usize] += 1;
        }
        assert_eq!(seen[0], 0);
        assert!(seen[1] > 2 * seen[2], "weights ignored: {seen:?}");
    }

    #[test]
    fn collections_hit_requested_sizes() {
        let mut rng = TestRng::new(4);
        let vecs = crate::collection::vec(0u32..100, 2..5);
        let sets = crate::collection::btree_set(1u64..25, 0..6);
        for _ in 0..500 {
            let v = vecs.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            let s = sets.generate(&mut rng);
            assert!(s.len() < 6);
        }
        let exact = crate::collection::vec(0u32..10, 3usize);
        assert_eq!(exact.generate(&mut rng).len(), 3);
    }

    #[test]
    fn flat_map_feeds_dependent_strategies() {
        let mut rng = TestRng::new(5);
        let strategy = (1usize..4)
            .prop_flat_map(|n| crate::collection::vec(0u32..10, n).prop_map(move |v| (n, v)));
        for _ in 0..200 {
            let (n, v) = strategy.generate(&mut rng);
            assert_eq!(v.len(), n);
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failing_property_reports_inputs() {
        crate::test_runner::run("demo", &ProptestConfig::with_cases(10), |rng| {
            let v = Strategy::generate(&(0u32..100), rng);
            crate::test_runner::record_input(format!("v = {v:?}"));
            prop_assert!(v < 1, "v was {}", v);
            Ok(())
        });
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: generated args bind, asserts pass.
        #[test]
        fn macro_roundtrip(xs in prop::collection::vec(any::<u8>(), 0..8), flag in any::<bool>()) {
            prop_assert!(xs.len() < 8);
            prop_assert_eq!(flag, flag);
        }
    }
}
