//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the benchmark-harness surface its benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`]
//! / [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`] /
//! [`Bencher::iter_with_setup`], [`Throughput`], [`BenchmarkId`], and
//! the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is a simple calibrated wall-clock loop printing mean
//! ns/iteration (plus derived throughput) — no statistics, HTML
//! reports, or outlier analysis. Passing `--test` or `--quick` on the
//! command line (as `cargo test --benches` and CI smoke runs do)
//! switches to a single-iteration correctness pass.

pub use std::hint::black_box;

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

/// How to express per-iteration work when reporting throughput.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// A benchmark's identifier: function name plus optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id like `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{parameter}", name.into()),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            label: name.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Timing context handed to benchmark closures.
pub struct Bencher {
    quick: bool,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, auto-scaling the iteration count to get a
    /// stable wall-clock sample.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        if self.quick {
            black_box(routine());
            self.iters = 1;
            self.elapsed = Duration::ZERO;
            return;
        }
        // Calibrate: one untimed-ish probe sizes the measured batch.
        let probe_start = Instant::now();
        black_box(routine());
        let probe = probe_start.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(20);
        let n = (target.as_nanos() / probe.as_nanos()).clamp(1, 100_000) as u64;
        let start = Instant::now();
        for _ in 0..n {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = n;
    }

    /// Times `routine` only, rebuilding its input with `setup` before
    /// every call.
    pub fn iter_with_setup<S, O>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> O,
    ) {
        let n = if self.quick { 1 } else { 3 };
        let mut measured = Duration::ZERO;
        for _ in 0..n {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            measured += start.elapsed();
        }
        self.iters = n;
        self.elapsed = measured;
    }
}

/// Top-level harness handle; one per bench binary.
pub struct Criterion {
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let quick = std::env::args().any(|a| a == "--test" || a == "--quick");
        Criterion { quick }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        run_one(self.quick, &id.label, None, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling here is calibrated
    /// automatically, so the count is not used.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the per-iteration work reported alongside timings.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label);
        run_one(self.criterion.quick, &label, self.throughput, f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(self.criterion.quick, &label, self.throughput, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one(
    quick: bool,
    label: &str,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        quick,
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    if quick {
        println!("{label}: ok (smoke run)");
        return;
    }
    let iters = bencher.iters.max(1);
    let ns_per_iter = bencher.elapsed.as_nanos() as f64 / iters as f64;
    let rate = throughput
        .map(|t| match t {
            Throughput::Elements(n) => {
                format!(" ({:.1} Melem/s)", n as f64 / ns_per_iter * 1e3)
            }
            Throughput::Bytes(n) => {
                format!(
                    " ({:.1} MiB/s)",
                    n as f64 / ns_per_iter * 1e9 / (1 << 20) as f64
                )
            }
        })
        .unwrap_or_default();
    println!("{label}: {ns_per_iter:.0} ns/iter{rate} [{iters} iters]");
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion { quick: true };
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.throughput(Throughput::Elements(4));
        let mut hits = 0u32;
        group.bench_function("direct", |b| b.iter(|| hits += 1));
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.bench_function(BenchmarkId::from_parameter(3), |b| {
            b.iter_with_setup(|| vec![1, 2, 3], |v| v.len())
        });
        group.finish();
        assert!(hits >= 1);
    }

    #[test]
    fn measured_mode_reports_iters() {
        let mut c = Criterion { quick: false };
        let mut counted = 0u64;
        c.bench_function("count", |b| b.iter(|| counted += 1));
        assert!(counted >= 2, "calibration plus batch should run twice+");
    }
}
