//! Tier-1 smoke coverage for the differential oracle: one seed per
//! execution mode, so `cargo test -q` at the repo root exercises the
//! AOSI-vs-MVCC equivalence machinery end to end. The full pinned
//! corpus (40 seeds) lives in `crates/oracle/tests/corpus.rs` and
//! runs via `cargo test -p oracle` (wired into CI's `oracle` job).

use oracle::{check_seed, Mode};
use workload::ops::{GenConfig, Schedule};

#[test]
fn oracle_deterministic_smoke() {
    let report = check_seed(1, Mode::Deterministic, &GenConfig::default());
    assert!(report.comparisons > 0);
    assert!(report.checker_events > 0);
}

#[test]
fn oracle_stress_smoke() {
    let report = check_seed(101, Mode::Stress, &GenConfig::default());
    assert!(report.comparisons > 0);
}

#[test]
fn oracle_crash_recovery_smoke() {
    let len = Schedule::generate(201, &GenConfig::default()).ops.len();
    let report = check_seed(
        201,
        Mode::Crash { crash_at: len / 2 },
        &GenConfig::default(),
    );
    assert!(report.comparisons > 0);
}
