//! The same workload through every engine configuration — plain vs.
//! bess dimension storage, with and without the rollback index, 1 vs.
//! 4 shards — must produce identical query answers. Configuration
//! knobs may trade speed for memory, never correctness.

use aosi_repro::columnar::Value;
use aosi_repro::cubrick::{
    AggFn, Aggregation, CubeSchema, DimFilter, DimStorage, Dimension, Engine, IsolationMode,
    Metric, Query,
};

fn schema() -> CubeSchema {
    CubeSchema::new(
        "m",
        vec![
            Dimension::string("region", 8, 2),
            Dimension::int("day", 32, 4),
        ],
        vec![Metric::int("v"), Metric::float("f")],
    )
    .unwrap()
}

fn build(storage: DimStorage, indexed: bool, shards: usize) -> Engine {
    let engine = Engine::new(shards).with_dim_storage(storage);
    let engine = if indexed {
        engine.with_rollback_index()
    } else {
        engine
    };
    engine.create_cube(schema()).unwrap();
    engine
}

/// A fixed mixed workload: loads, an aborted transaction, a partition
/// delete, a purge.
fn run_workload(engine: &Engine) {
    let regions = ["us", "br", "mx", "in"];
    for batch in 0..6i64 {
        let rows: Vec<Vec<Value>> = (0..50)
            .map(|i| {
                vec![
                    Value::from(regions[(i + batch as usize) % 4]),
                    Value::I64((batch * 5 + i as i64) % 32),
                    Value::I64(i as i64),
                    Value::F64(i as f64 / 2.0),
                ]
            })
            .collect();
        engine.load("m", &rows, 0).unwrap();
    }
    // Aborted work leaves no trace.
    let txn = engine.begin();
    engine
        .append(
            "m",
            &[vec![
                Value::from("us"),
                Value::I64(0),
                Value::I64(999_999),
                Value::F64(0.0),
            ]],
            &txn,
        )
        .unwrap();
    engine.rollback(&txn).unwrap();
    // Retention delete of day range [0, 4), then purge.
    engine
        .delete_where(
            "m",
            &[DimFilter::new("day", (0..4).map(Value::from).collect())],
        )
        .unwrap();
    engine.advance_lse_and_purge();
}

fn fingerprint(engine: &Engine) -> Vec<(Vec<String>, Vec<String>)> {
    let result = engine
        .query(
            "m",
            &Query::aggregate(vec![
                Aggregation::new(AggFn::Sum, "v"),
                Aggregation::new(AggFn::Count, "v"),
                Aggregation::new(AggFn::Min, "f"),
                Aggregation::new(AggFn::Max, "f"),
            ])
            .grouped_by("region")
            .grouped_by("day"),
            IsolationMode::Snapshot,
        )
        .unwrap();
    result
        .rows
        .into_iter()
        .map(|(keys, values)| {
            (
                keys.iter().map(|k| k.to_string()).collect(),
                values.iter().map(|v| format!("{v:.3}")).collect(),
            )
        })
        .collect()
}

#[test]
fn every_configuration_answers_identically() {
    let reference = build(DimStorage::Plain, false, 1);
    run_workload(&reference);
    let expected = fingerprint(&reference);
    assert!(!expected.is_empty(), "workload must leave visible rows");

    for storage in [DimStorage::Plain, DimStorage::Bess] {
        for indexed in [false, true] {
            for shards in [1usize, 4] {
                let engine = build(storage, indexed, shards);
                run_workload(&engine);
                assert_eq!(
                    fingerprint(&engine),
                    expected,
                    "config {storage:?}/indexed={indexed}/shards={shards} diverged"
                );
            }
        }
    }
}

#[test]
fn bess_configuration_saves_dimension_memory() {
    let plain = build(DimStorage::Plain, false, 2);
    let bess = build(DimStorage::Bess, false, 2);
    run_workload(&plain);
    run_workload(&bess);
    let plain_mem = plain.memory();
    let bess_mem = bess.memory();
    assert_eq!(plain_mem.rows, bess_mem.rows);
    assert!(
        bess_mem.data_bytes < plain_mem.data_bytes,
        "bess ({}) should undercut plain ({})",
        bess_mem.data_bytes,
        plain_mem.data_bytes
    );
}
