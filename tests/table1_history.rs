//! Table I: history of execution of three transactions — epoch
//! clock, LCE, pendingTxs, and per-transaction dependency sets.

use aosi_repro::aosi::TxnManager;

#[test]
fn table_i_counters_and_deps() {
    let mgr = TxnManager::single_node();
    // Initial state: EC=1 (next epoch), LCE=0, nothing pending.
    assert_eq!(mgr.clock().current_ec(), 1);
    assert_eq!(mgr.lce(), 0);
    assert!(mgr.pending_txs().is_empty());

    // start T1 / T2 / T3.
    let t1 = mgr.begin_rw();
    assert_eq!(t1.epoch(), 1);
    assert_eq!(mgr.clock().current_ec(), 2);
    assert_eq!(mgr.pending_txs(), vec![1]);
    assert!(t1.snapshot().deps().is_empty());

    let t2 = mgr.begin_rw();
    assert_eq!(t2.epoch(), 2);
    assert_eq!(mgr.pending_txs(), vec![1, 2]);
    assert_eq!(
        t2.snapshot().deps().iter().copied().collect::<Vec<_>>(),
        vec![1],
        "T2.deps = {{1}}: T1 had already started"
    );

    let t3 = mgr.begin_rw();
    assert_eq!(t3.epoch(), 3);
    assert_eq!(mgr.clock().current_ec(), 4);
    assert_eq!(mgr.pending_txs(), vec![1, 2, 3]);
    assert_eq!(
        t3.snapshot().deps().iter().copied().collect::<Vec<_>>(),
        vec![1, 2],
        "T3.deps = {{1, 2}}"
    );

    // commit T1: LCE advances since all priors finished.
    mgr.commit(&t1).unwrap();
    assert_eq!(mgr.lce(), 1);
    assert_eq!(mgr.pending_txs(), vec![2, 3]);

    // The paper's text: "LCE cannot be updated when T3 commits, since
    // one of its dependent transactions, T2, is still running. In
    // this case, T3 is committed but it is still not visible for
    // subsequent read transactions until T2 finishes."
    mgr.commit(&t3).unwrap();
    assert_eq!(mgr.lce(), 1, "T3 parked behind pending T2");
    let ro = mgr.begin_ro();
    assert!(!ro.sees(3), "read-only snapshot must not see parked T3");

    mgr.commit(&t2).unwrap();
    assert_eq!(mgr.lce(), 3, "LCE finally advances to 3");
    assert!(mgr.pending_txs().is_empty());
    let ro = mgr.begin_ro();
    assert!(ro.sees(1) && ro.sees(2) && ro.sees(3));
}

#[test]
fn invariant_ec_gt_lce_ge_lse_holds_throughout() {
    let mgr = TxnManager::single_node();
    for round in 0..50 {
        let a = mgr.begin_rw();
        let b = mgr.begin_rw();
        // Commit out of order half the time.
        if round % 2 == 0 {
            mgr.commit(&b).unwrap();
            mgr.commit(&a).unwrap();
        } else {
            mgr.commit(&a).unwrap();
            mgr.commit(&b).unwrap();
        }
        if round % 5 == 0 {
            mgr.advance_lse(mgr.lce()).unwrap();
        }
        let (ec, lce, lse) = (mgr.clock().current_ec(), mgr.lce(), mgr.lse());
        assert!(ec > lce, "EC > LCE violated: {ec} vs {lce}");
        assert!(lce >= lse, "LCE >= LSE violated: {lce} vs {lse}");
    }
}
