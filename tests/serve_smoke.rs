//! Tier-1 smoke: boot the HTTP server on an ephemeral port, drive it
//! through DDL, ingest, and reads over a real socket, and check the
//! result surface (typed JSON, NULL aggregates, snapshot pinning).

use std::sync::Arc;

use aosi_repro::cubrick::Engine;
use aosi_repro::server::client::Client;
use aosi_repro::server::json::Json;
use aosi_repro::server::{Server, ServerConfig};

#[test]
fn serve_smoke() {
    let engine = Arc::new(Engine::new(2));
    let handle = Server::start(Arc::clone(&engine), ServerConfig::default()).expect("start");
    let mut client = Client::connect(handle.addr()).expect("connect");

    // DDL + ingest over the wire.
    let created = client
        .query(
            "CREATE CUBE smoke (region STRING DIM(4, 2), likes INT METRIC)",
            None,
        )
        .unwrap();
    assert_eq!(created.status, 200, "{}", created.body);
    let inserted = client
        .query("INSERT INTO smoke VALUES ('us', 5), ('br', 7)", None)
        .unwrap();
    assert_eq!(inserted.status, 200, "{}", inserted.body);

    // A grouped read comes back as typed JSON.
    let response = client
        .query(
            "SELECT SUM(likes) FROM smoke GROUP BY region ORDER BY region",
            None,
        )
        .unwrap();
    assert_eq!(response.status, 200, "{}", response.body);
    let json = response.json().unwrap();
    let rows = json.get("rows").and_then(Json::as_arr).unwrap();
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0].as_arr().unwrap()[0], Json::Str("br".into()));
    assert_eq!(rows[0].as_arr().unwrap()[1], Json::Num(7.0));

    // Empty-match Min/Max surface as JSON null, never ±inf.
    let empty = client
        .query(
            "SELECT MIN(likes), MAX(likes) FROM smoke WHERE region IN ('nowhere')",
            None,
        )
        .unwrap();
    assert_eq!(empty.status, 200, "{}", empty.body);
    let row = empty
        .json()
        .unwrap()
        .get("rows")
        .and_then(Json::as_arr)
        .unwrap()[0]
        .as_arr()
        .unwrap()
        .to_vec();
    assert_eq!(row, vec![Json::Null, Json::Null], "{}", empty.body);

    // A pinned session keeps reading the old snapshot.
    let session = client
        .request("POST", "/session", None)
        .unwrap()
        .json()
        .unwrap()
        .get("session")
        .and_then(Json::as_f64)
        .unwrap() as u64;
    let pin = aosi_repro::server::json::obj([("session", Json::num(session as f64))]);
    assert_eq!(
        client
            .request("POST", "/session/pin", Some(&pin))
            .unwrap()
            .status,
        200
    );
    client
        .query("INSERT INTO smoke VALUES ('mx', 9)", None)
        .unwrap();
    let count = |client: &mut Client, session: Option<u64>| -> f64 {
        let response = client.query("SELECT COUNT(*) FROM smoke", session).unwrap();
        assert_eq!(response.status, 200, "{}", response.body);
        response
            .json()
            .unwrap()
            .get("rows")
            .and_then(Json::as_arr)
            .unwrap()[0]
            .as_arr()
            .unwrap()[0]
            .as_f64()
            .unwrap()
    };
    assert_eq!(count(&mut client, Some(session)), 2.0, "pinned read moved");
    assert_eq!(count(&mut client, None), 3.0, "live read is stale");

    // Health + metrics respond and carry the server sections.
    assert_eq!(client.request("GET", "/health", None).unwrap().status, 200);
    let metrics = client.request("GET", "/metrics", None).unwrap();
    assert!(metrics.body.contains("[server]"), "{}", metrics.body);
    assert!(metrics.body.contains("[aosi]"), "{}", metrics.body);

    handle.shutdown();
}
