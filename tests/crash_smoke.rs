//! Tier-1 smoke coverage for the crash-consistency torture harness:
//! two seeds through the full four-phase torture (boundary census,
//! one simulated power cut per write syscall, hole probe, bit-flip
//! probes), so `cargo test -q` at the repo root proves the paper's
//! durability rule — recovery restores exactly a complete flushed
//! prefix — end to end. The full pinned corpus (40 seeds plus the
//! injected-bug meta-tests) lives in
//! `crates/oracle/tests/crash_torture.rs` and runs via
//! `cargo test -p oracle --test crash_torture` (wired into CI's
//! `crash-torture` job).

use oracle::{check_crash_seed, TortureConfig};

#[test]
fn crash_torture_smoke() {
    for seed in [301u64, 326] {
        let report = check_crash_seed(seed, &TortureConfig::default());
        assert!(
            report.crash_points >= 4,
            "seed {seed} enumerated only {} boundaries",
            report.crash_points
        );
        assert!(report.rounds_flushed >= 1, "seed {seed} never flushed");
        assert!(report.comparisons > 0, "seed {seed} compared nothing");
    }
}
