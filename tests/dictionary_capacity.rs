//! Regression: rejected records must not pollute the shared string
//! dictionary, and the WAL round-trip must preserve the exact (clean)
//! dictionary state.
//!
//! Before the lookup-before-encode fix in `parse_rows`, a rejected
//! record minted dictionary ids for its strings anyway. The phantom
//! entry permanently burned an id below the cardinality cap — locking
//! out a later legitimate string — and was persisted by every
//! following flush round, so recovery faithfully rebuilt the
//! pollution.

use std::path::PathBuf;
use std::sync::Arc;

use aosi_repro::cluster::ReplicationTracker;
use aosi_repro::columnar::Value;
use aosi_repro::cubrick::{
    AggFn, Aggregation, CubeSchema, DimFilter, Dimension, Engine, IsolationMode, Metric, Query,
};
use aosi_repro::wal::{recover_into_with, FlushController, RecoverOptions, SimFs, WalFs};

/// Region cardinality 4: exactly four distinct strings fit.
fn schema() -> CubeSchema {
    CubeSchema::new(
        "events",
        vec![
            Dimension::string("region", 4, 2),
            Dimension::int("day", 8, 4),
        ],
        vec![Metric::int("likes")],
    )
    .unwrap()
}

fn row(region: &str, day: i64, likes: i64) -> Vec<Value> {
    vec![region.into(), Value::I64(day), Value::I64(likes)]
}

fn count_for(engine: &Engine, region: &str) -> f64 {
    engine
        .query(
            "events",
            &Query::aggregate(vec![Aggregation::new(AggFn::Count, "likes")])
                .filter(DimFilter::new("region", vec![Value::from(region)])),
            IsolationMode::Snapshot,
        )
        .unwrap()
        .scalar()
        .unwrap_or(0.0)
}

#[test]
fn rejected_strings_do_not_burn_dictionary_capacity_across_wal_round_trip() {
    let fs = Arc::new(SimFs::new(11));
    let dir = PathBuf::from("/wal");
    let engine = Engine::new(2);
    engine.create_cube(schema()).unwrap();

    // Three legitimate regions, plus a record whose string is new but
    // whose integer dimension is out of range: the record is rejected
    // and "ghost" must not claim the fourth (and last) dictionary id.
    let outcome = engine
        .load(
            "events",
            &[
                row("ar", 0, 1),
                row("br", 1, 1),
                row("cl", 2, 1),
                row("ghost", 99, 1),
            ],
            1,
        )
        .unwrap();
    assert_eq!(outcome.accepted, 3);
    assert_eq!(outcome.rejected, 1);

    // Persist the dictionary state, then recover into a fresh engine.
    let mut ctl = FlushController::with_fs(fs.clone() as Arc<dyn WalFs>, dir.clone(), 1).unwrap();
    ctl.flush_round(&engine, &ReplicationTracker::new(1))
        .unwrap();
    let recovered = Engine::new(2);
    recovered.create_cube(schema()).unwrap();
    recover_into_with(fs.as_ref(), &dir, &recovered, &RecoverOptions::default()).unwrap();
    assert_eq!(count_for(&recovered, "ar"), 1.0);
    assert_eq!(count_for(&recovered, "br"), 1.0);
    assert_eq!(count_for(&recovered, "cl"), 1.0);

    // The last dictionary slot is still free: a fourth legitimate
    // region must be accepted by the recovered engine. With the
    // pre-fix pollution "ghost" held id 3, so "dk" would encode to id
    // 4 >= cardinality and be rejected here.
    let outcome = recovered.load("events", &[row("dk", 3, 1)], 0).unwrap();
    assert_eq!(outcome.accepted, 1, "fourth region must still fit");
    assert_eq!(count_for(&recovered, "dk"), 1.0);

    // A fifth distinct region is over the cap — rejected, and its
    // rejection must not disturb existing entries.
    let outcome = recovered.load("events", &[row("ec", 4, 1)], 1).unwrap();
    assert_eq!(outcome.rejected, 1);
    assert_eq!(count_for(&recovered, "dk"), 1.0);

    // Round-trip once more: the clean dictionary (now four entries)
    // survives another flush/recover cycle with ids intact.
    let fs2 = Arc::new(SimFs::new(13));
    let dir2 = PathBuf::from("/wal2");
    let mut ctl2 =
        FlushController::with_fs(fs2.clone() as Arc<dyn WalFs>, dir2.clone(), 1).unwrap();
    ctl2.flush_round(&recovered, &ReplicationTracker::new(1))
        .unwrap();
    let twice = Engine::new(2);
    twice.create_cube(schema()).unwrap();
    recover_into_with(fs2.as_ref(), &dir2, &twice, &RecoverOptions::default()).unwrap();
    for (region, expected) in [("ar", 1.0), ("br", 1.0), ("cl", 1.0), ("dk", 1.0)] {
        assert_eq!(count_for(&twice, region), expected, "region {region}");
    }
    assert_eq!(count_for(&twice, "ghost"), 0.0);
    assert_eq!(count_for(&twice, "ec"), 0.0);
}
