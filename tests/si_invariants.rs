//! Property-based snapshot-isolation invariants at the engine level.
//!
//! These run randomized operation schedules through the full engine
//! (parse → shards → epochs vectors → visibility) and check the
//! guarantees the protocol promises, not implementation details:
//!
//! 1. **Batch atomicity** — a snapshot sees each load entirely or not
//!    at all.
//! 2. **Snapshot stability** — re-running a query on the same
//!    explicit transaction returns identical results regardless of
//!    concurrent commits.
//! 3. **RU ⊇ SI** — read-uncommitted sees at least everything a
//!    snapshot sees (on insert-only histories).
//! 4. **Rollback erasure** — a rolled-back transaction's rows are
//!    unobservable under every isolation mode.
//! 5. **Purge transparency** — purge never changes any query answer.

use aosi_repro::columnar::Value;
use aosi_repro::cubrick::{
    AggFn, Aggregation, CubeSchema, Dimension, Engine, IsolationMode, Metric, Query,
};
use proptest::prelude::*;

fn engine() -> Engine {
    let engine = Engine::new(2);
    engine
        .create_cube(
            CubeSchema::new(
                "t",
                vec![Dimension::int("k", 32, 4)],
                vec![Metric::int("m")],
            )
            .unwrap(),
        )
        .unwrap();
    engine
}

fn rows(keys: &[u8]) -> Vec<Vec<Value>> {
    keys.iter()
        .map(|&k| vec![Value::I64((k % 32) as i64), Value::I64(1)])
        .collect()
}

fn count(engine: &Engine, mode: IsolationMode) -> u64 {
    engine
        .query(
            "t",
            &Query::aggregate(vec![Aggregation::new(AggFn::Count, "m")]),
            mode,
        )
        .unwrap()
        .scalar()
        .unwrap_or(0.0) as u64
}

/// One generated engine operation.
#[derive(Clone, Debug)]
enum Op {
    /// Load a committed batch of this many rows.
    Load(Vec<u8>),
    /// Open a transaction, append, and roll it back.
    AbortedLoad(Vec<u8>),
    /// Delete everything, tombstone-style.
    DeleteAll,
    /// Advance LSE to LCE and purge.
    Purge,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => prop::collection::vec(any::<u8>(), 1..20).prop_map(Op::Load),
        2 => prop::collection::vec(any::<u8>(), 1..20).prop_map(Op::AbortedLoad),
        1 => Just(Op::DeleteAll),
        2 => Just(Op::Purge),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A model tracking committed-visible (logical) and stored
    /// (physical) row counts must agree with the engine after every
    /// operation. SI answers from the logical state; RU "simply reads
    /// all available data", which includes rows tombstoned by a
    /// delete until purge physically removes them.
    #[test]
    fn committed_counts_match_model(ops in prop::collection::vec(op_strategy(), 1..25)) {
        let engine = engine();
        let mut logical = 0u64;
        let mut physical = 0u64;
        for op in &ops {
            match op {
                Op::Load(keys) => {
                    engine.load("t", &rows(keys), 0).unwrap();
                    logical += keys.len() as u64;
                    physical += keys.len() as u64;
                }
                Op::AbortedLoad(keys) => {
                    let txn = engine.begin();
                    engine.append("t", &rows(keys), &txn).unwrap();
                    // Rollback physically reclaims the aborted rows.
                    engine.rollback(&txn).unwrap();
                }
                Op::DeleteAll => {
                    engine.delete_where("t", &[]).unwrap();
                    logical = 0;
                }
                Op::Purge => {
                    engine.advance_lse_and_purge();
                    physical = logical;
                }
            }
            prop_assert_eq!(count(&engine, IsolationMode::Snapshot), logical);
            prop_assert_eq!(count(&engine, IsolationMode::ReadUncommitted), physical);
        }
    }

    /// Batch atomicity: with an open (uncommitted) transaction in the
    /// background, SI sees exactly the committed rows and RU sees
    /// committed + in-flight.
    #[test]
    fn open_transactions_are_invisible_to_si(
        committed in prop::collection::vec(any::<u8>(), 0..30),
        in_flight in prop::collection::vec(any::<u8>(), 1..30),
    ) {
        let engine = engine();
        if !committed.is_empty() {
            engine.load("t", &rows(&committed), 0).unwrap();
        }
        let txn = engine.begin();
        engine.append("t", &rows(&in_flight), &txn).unwrap();

        prop_assert_eq!(count(&engine, IsolationMode::Snapshot), committed.len() as u64);
        prop_assert_eq!(
            count(&engine, IsolationMode::ReadUncommitted),
            (committed.len() + in_flight.len()) as u64
        );
        // The transaction itself sees both.
        let own = engine
            .query_in_txn(
                "t",
                &Query::aggregate(vec![Aggregation::new(AggFn::Count, "m")]),
                &txn,
            )
            .unwrap()
            .scalar()
            .unwrap_or(0.0) as u64;
        prop_assert_eq!(own, (committed.len() + in_flight.len()) as u64);

        engine.commit(&txn).unwrap();
        prop_assert_eq!(
            count(&engine, IsolationMode::Snapshot),
            (committed.len() + in_flight.len()) as u64
        );
    }

    /// Snapshot stability: a transaction's view never changes while
    /// it stays open, no matter what commits around it.
    #[test]
    fn explicit_txn_view_is_frozen(
        before in prop::collection::vec(any::<u8>(), 1..20),
        after in prop::collection::vec(any::<u8>(), 1..20),
    ) {
        let engine = engine();
        engine.load("t", &rows(&before), 0).unwrap();
        let observer = engine.begin();
        let q = Query::aggregate(vec![Aggregation::new(AggFn::Count, "m")]);
        let first = engine.query_in_txn("t", &q, &observer).unwrap().scalar().unwrap();

        engine.load("t", &rows(&after), 0).unwrap();
        engine.delete_where("t", &[]).unwrap();

        let second = engine.query_in_txn("t", &q, &observer).unwrap().scalar().unwrap();
        prop_assert_eq!(first, second, "the observer's snapshot drifted");
        engine.commit(&observer).unwrap();
    }

    /// Purge transparency: purging never changes what any later query
    /// returns, with or without deletes in the history.
    #[test]
    fn purge_never_changes_answers(
        batches in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..10), 1..6),
        delete_after in prop::option::of(0usize..5),
    ) {
        let engine = engine();
        for (i, batch) in batches.iter().enumerate() {
            engine.load("t", &rows(batch), 0).unwrap();
            if delete_after == Some(i) {
                engine.delete_where("t", &[]).unwrap();
            }
        }
        let before = count(&engine, IsolationMode::Snapshot);
        let stats = engine.advance_lse_and_purge();
        let after = count(&engine, IsolationMode::Snapshot);
        prop_assert_eq!(before, after, "purge changed a query answer ({:?})", stats);
    }
}
