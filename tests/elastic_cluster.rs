//! Elastic cluster chaos suite: replica placement, LSE-gated replica
//! reads, and node join/leave under seeded faults.
//!
//! Everything is deterministic per seed: the fault plan's RNG and the
//! workload's RNG both derive from the test seed, so any failure
//! replays exactly. Override the seed list with a comma-separated
//! `AOSI_ELASTIC_SEEDS` environment variable — the CI `elastic` job
//! pins a ≥20-seed corpus, and on failure uploads the seed so the
//! exact run can be replayed locally:
//!
//! ```text
//! AOSI_ELASTIC_SEEDS=17 cargo test --test elastic_cluster
//! ```

use std::collections::BTreeSet;
use std::time::Duration;

use cluster::{FaultPlan, LatencyModel, NodeId, RetryPolicy, SimulatedNetwork};
use columnar::{Row, Value};
use cubrick::{CubeSchema, Dimension, DistributedEngine, ElasticConfig, HandoffBreak, Metric};
use rand::{rngs::StdRng, Rng, SeedableRng};

const BATCH: usize = 15;

fn elastic_seeds() -> Vec<u64> {
    std::env::var("AOSI_ELASTIC_SEEDS")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .collect::<Vec<u64>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2, 3])
}

/// Runs `f` once per seed. A panicking seed is first dumped as a
/// replayable `.seed` artifact into `AOSI_ORACLE_ARTIFACT_DIR` (the
/// CI `elastic` job uploads that directory on failure), then the
/// panic resumes so the test still goes red.
fn for_each_seed(test: &str, f: impl Fn(u64)) {
    for seed in elastic_seeds() {
        if let Err(panic) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(seed))) {
            if let Ok(dir) = std::env::var("AOSI_ORACLE_ARTIFACT_DIR") {
                let _ = std::fs::create_dir_all(&dir);
                let _ = std::fs::write(
                    std::path::Path::new(&dir).join(format!("elastic-{test}-seed{seed}.seed")),
                    format!(
                        "# replay: AOSI_ELASTIC_SEEDS={seed} cargo test --test elastic_cluster {test}\nseed={seed}\ntest={test}\n"
                    ),
                );
            }
            std::panic::resume_unwind(panic);
        }
    }
}

fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 4,
        base_backoff: Duration::ZERO,
        max_backoff: Duration::ZERO,
    }
}

/// An elastic cluster over a seeded fault plan. `capacity` slots,
/// `active` initial members, replication factor `rf`.
fn build(capacity: u64, active: &[NodeId], rf: usize, plan: FaultPlan) -> DistributedEngine {
    let network = SimulatedNetwork::with_faults(LatencyModel::instant(), plan);
    let d = DistributedEngine::elastic(
        ElasticConfig {
            capacity,
            active: active.to_vec(),
            shards_per_node: 2,
            replication: rf,
            retry: fast_retry(),
        },
        network,
    );
    d.create_cube(
        CubeSchema::new(
            "events",
            vec![Dimension::int("day", 32, 1)],
            vec![Metric::int("likes")],
        )
        .unwrap(),
    )
    .unwrap();
    d
}

fn batch_rows(rng: &mut StdRng) -> Vec<Row> {
    (0..BATCH)
        .map(|_| vec![Value::from(rng.gen_range(0..32i64)), Value::from(1i64)])
        .collect()
}

/// Asserts the two ownership views agree: every physically stored
/// brick is reachable through the directory on that same node
/// (nothing orphaned), and every directory claim is physically backed
/// (nothing phantom). Also: no brick lists a host twice.
fn assert_ownership_consistent(d: &DistributedEngine, label: &str) {
    let physical = d.physical_bricks("events");
    let directory = d.directory_bricks("events");
    assert_eq!(
        physical, directory,
        "{label}: physical vs directory brick ownership diverged"
    );
    for bid in d.known_bricks("events") {
        let hosts = d.brick_hosts("events", bid);
        let distinct: BTreeSet<NodeId> = hosts.iter().copied().collect();
        assert_eq!(
            hosts.len(),
            distinct.len(),
            "{label}: brick {bid} lists a host twice: {hosts:?}"
        );
    }
}

/// Asserts every readable replica of every brick agrees at a pinned
/// snapshot (the replica-divergence check).
fn assert_no_divergence(d: &DistributedEngine, origin: NodeId, label: &str) {
    let snap = d.protocol().begin_ro(origin);
    if let Err(e) = d.check_replica_divergence("events", "likes", snap) {
        panic!("{label}: {e}");
    }
}

/// Satellite 1: kill a node mid-workload. Writers and readers keep
/// running; every read is answered from a surviving replica, SI
/// conservation holds throughout, replicas agree, and the count is
/// conserved at quiesce — measured by *queries*, never by memory
/// accounting.
#[test]
fn kill_a_node_mid_workload() {
    for_each_seed("kill_a_node_mid_workload", |seed| {
        let plan = FaultPlan::seeded(seed)
            .drop_p(0.03)
            .dup_p(0.03)
            .delay_p(0.04)
            .delay_horizon(6);
        let d = build(3, &[1, 2, 3], 2, plan);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xE1A5);
        let victim: NodeId = seed % 3 + 1;
        let survivors: Vec<NodeId> = (1..=3).filter(|&n| n != victim).collect();

        let mut committed = 0.0f64;
        for step in 0..24 {
            if step == 8 {
                d.crash_node(victim);
                // §III-D: an offline replica freezes the purge floor.
                assert!(
                    d.tracker().safe_epoch().is_none(),
                    "seed {seed}: purge floor must be withheld while {victim} is dark"
                );
                assert_eq!(d.purge_all().rows_purged, 0, "seed {seed}");
            }
            if step == 16 {
                d.heal_node(victim)
                    .unwrap_or_else(|e| panic!("seed {seed}: heal failed: {e}"));
            }
            let live: Vec<NodeId> = if (8..16).contains(&step) {
                survivors.clone()
            } else {
                vec![1, 2, 3]
            };
            let origin = live[rng.gen_range(0..live.len())];
            if let Ok(outcome) = d.load(origin, "events", &batch_rows(&mut rng), 0) {
                assert_eq!(outcome.accepted, BATCH);
                committed += BATCH as f64;
            }
            // Every read must be answered — from a fallback replica
            // while the victim is dark.
            let reader = live[rng.gen_range(0..live.len())];
            let seen = d
                .committed_total(reader, "events", "likes")
                .unwrap_or_else(|e| panic!("seed {seed} step {step}: unanswered read: {e}"));
            assert!(
                seen <= committed,
                "seed {seed}: phantom rows ({seen} > {committed})"
            );
            assert_eq!(
                seen % BATCH as f64,
                0.0,
                "seed {seed}: torn batch visible ({seen})"
            );
        }

        assert!(d.protocol().settle(), "seed {seed}: failed to settle");
        // Count conservation at quiesce, by query, from every origin.
        for origin in 1..=3 {
            assert_eq!(
                d.committed_total(origin, "events", "likes").unwrap(),
                committed,
                "seed {seed}: origin {origin} lost rows"
            );
        }
        let (replica, fallback, unanswered) = d.read_routing_stats();
        assert!(replica > 0, "seed {seed}: no read used a preferred replica");
        assert!(
            fallback > 0,
            "seed {seed}: the outage never forced a fallback read"
        );
        assert_eq!(unanswered, 0, "seed {seed}: some read went unanswered");
        assert_no_divergence(&d, 1, &format!("seed {seed}"));
        assert_ownership_consistent(&d, &format!("seed {seed}"));
        // Healed: the purge floor thaws and purging works again.
        assert!(d.tracker().safe_epoch().is_some(), "seed {seed}");
    });
}

/// Satellite 2a: a node joining mid-workload ends up owning its ring
/// share; no brick is owned twice or orphaned; totals are conserved.
#[test]
fn join_mid_workload_takes_ring_share() {
    for_each_seed("join_mid_workload_takes_ring_share", |seed| {
        let d = build(4, &[1, 2, 3], 2, FaultPlan::seeded(seed));
        let mut rng = StdRng::seed_from_u64(seed ^ 0x107A);
        let mut committed = 0.0f64;
        for _ in 0..10 {
            let origin = rng.gen_range(1..=3);
            d.load(origin, "events", &batch_rows(&mut rng), 0).unwrap();
            committed += BATCH as f64;
        }
        let moved = d.join_node(4).unwrap();
        assert!(moved > 0, "seed {seed}: the joiner received no bricks");
        assert!(d.topology().contains(4));
        // The joiner owns its ring share: some bricks list it as a
        // readable host, and exactly where the ring says.
        let owned_by_4: Vec<u64> = d
            .known_bricks("events")
            .into_iter()
            .filter(|&bid| d.brick_hosts("events", bid).contains(&4))
            .collect();
        assert!(!owned_by_4.is_empty(), "seed {seed}");
        for &bid in &owned_by_4 {
            assert!(
                d.topology().replicas(bid).contains(&4),
                "seed {seed}: brick {bid} on node 4 against the ring's will"
            );
        }
        // Writes keep flowing through the new member.
        for _ in 0..10 {
            let origin = rng.gen_range(1..=4);
            d.load(origin, "events", &batch_rows(&mut rng), 0).unwrap();
            committed += BATCH as f64;
        }
        assert!(d.protocol().settle(), "seed {seed}");
        for origin in 1..=4 {
            assert_eq!(
                d.committed_total(origin, "events", "likes").unwrap(),
                committed,
                "seed {seed}: origin {origin}"
            );
        }
        assert_ownership_consistent(&d, &format!("seed {seed}"));
        assert_no_divergence(&d, 4, &format!("seed {seed}"));
        // Every brick holds exactly rf copies.
        for bid in d.known_bricks("events") {
            assert_eq!(
                d.brick_hosts("events", bid).len(),
                2,
                "seed {seed}: brick {bid} lost a replica"
            );
        }
    });
}

/// Satellite 2b: a graceful leave lands every brick on the ring
/// successors and the leaver holds nothing afterwards.
#[test]
fn graceful_leave_hands_bricks_to_successors() {
    for_each_seed("graceful_leave_hands_bricks_to_successors", |seed| {
        let d = build(4, &[1, 2, 3, 4], 2, FaultPlan::seeded(seed));
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1EA7);
        let mut committed = 0.0f64;
        for _ in 0..12 {
            let origin = rng.gen_range(1..=4);
            d.load(origin, "events", &batch_rows(&mut rng), 0).unwrap();
            committed += BATCH as f64;
        }
        d.leave_node(4).unwrap();
        assert!(!d.topology().contains(4));
        assert!(
            d.physical_bricks("events").iter().all(|&(n, _)| n != 4),
            "seed {seed}: the leaver still stores bricks"
        );
        for bid in d.known_bricks("events") {
            let hosts = d.brick_hosts("events", bid);
            assert!(!hosts.contains(&4), "seed {seed}: brick {bid}");
            assert_eq!(hosts.len(), 2, "seed {seed}: brick {bid} under-replicated");
            assert_eq!(
                hosts.iter().copied().collect::<BTreeSet<_>>(),
                d.topology()
                    .replicas(bid)
                    .into_iter()
                    .collect::<BTreeSet<_>>(),
                "seed {seed}: brick {bid} not on its ring successors"
            );
        }
        assert!(d.protocol().settle(), "seed {seed}");
        for origin in 1..=3 {
            assert_eq!(
                d.committed_total(origin, "events", "likes").unwrap(),
                committed,
                "seed {seed}: origin {origin}"
            );
        }
        assert_ownership_consistent(&d, &format!("seed {seed}"));
    });
}

/// Satellite 2c: join-then-leave round trip conserves brick ownership
/// exactly — back to replication-factor copies on the original
/// members, nothing orphaned on the visitor.
#[test]
fn join_leave_round_trip_conserves_ownership() {
    for_each_seed("join_leave_round_trip_conserves_ownership", |seed| {
        let d = build(4, &[1, 2, 3], 2, FaultPlan::seeded(seed));
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0707);
        let mut committed = 0.0f64;
        for _ in 0..8 {
            d.load(rng.gen_range(1..=3), "events", &batch_rows(&mut rng), 0)
                .unwrap();
            committed += BATCH as f64;
        }
        d.join_node(4).unwrap();
        for _ in 0..4 {
            d.load(rng.gen_range(1..=4), "events", &batch_rows(&mut rng), 0)
                .unwrap();
            committed += BATCH as f64;
        }
        d.leave_node(4).unwrap();
        assert!(
            d.physical_bricks("events").iter().all(|&(n, _)| n != 4),
            "seed {seed}: bricks orphaned on the departed node"
        );
        for bid in d.known_bricks("events") {
            let hosts: BTreeSet<NodeId> = d.brick_hosts("events", bid).into_iter().collect();
            assert_eq!(hosts.len(), 2, "seed {seed}: brick {bid}");
            assert!(hosts.iter().all(|n| (1..=3).contains(n)), "seed {seed}");
        }
        assert!(d.protocol().settle(), "seed {seed}");
        assert_eq!(
            d.committed_total(1, "events", "likes").unwrap(),
            committed,
            "seed {seed}"
        );
        assert_ownership_consistent(&d, &format!("seed {seed}"));
        assert_no_divergence(&d, 2, &format!("seed {seed}"));
    });
}

/// Satellite 2d: a crash during handoff neither loses nor duplicates
/// a brick — the failed transfer leaves the source fully intact, and
/// retrying after the receiver recovers completes the move.
#[test]
fn crash_during_handoff_loses_nothing() {
    for_each_seed("crash_during_handoff_loses_nothing", |seed| {
        let d = build(4, &[1, 2, 3], 2, FaultPlan::seeded(seed));
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC4A5);
        let mut committed = 0.0f64;
        for _ in 0..10 {
            d.load(rng.gen_range(1..=3), "events", &batch_rows(&mut rng), 0)
                .unwrap();
            committed += BATCH as f64;
        }
        // The receiver dies after the first streamed chunk.
        d.set_handoff_break(Some(HandoffBreak::CrashReceiverMidStream));
        let joined = d.join_node(4);
        assert!(
            joined.is_err(),
            "seed {seed}: the interrupted join must report failure"
        );
        d.set_handoff_break(None);
        // Nothing lost, nothing duplicated, node 4 holds nothing.
        assert!(
            d.physical_bricks("events").iter().all(|&(n, _)| n != 4),
            "seed {seed}"
        );
        assert_ownership_consistent(&d, &format!("seed {seed} (mid-crash)"));
        assert_eq!(
            d.committed_total(1, "events", "likes").unwrap(),
            committed,
            "seed {seed}: rows lost to the interrupted handoff"
        );
        // Recover the receiver and retry: the join completes.
        d.heal_node(4).unwrap();
        assert!(
            d.known_bricks("events")
                .iter()
                .any(|&bid| d.brick_hosts("events", bid).contains(&4)),
            "seed {seed}: retried join still moved nothing"
        );
        // A freshly joined node snapshots at its own LCE, which only
        // advances once it participates in a commit — load a few more
        // batches so node 4's read frontier covers the whole history.
        for _ in 0..3 {
            d.load(rng.gen_range(1..=4), "events", &batch_rows(&mut rng), 0)
                .unwrap();
            committed += BATCH as f64;
        }
        assert!(d.protocol().settle(), "seed {seed}");
        assert_eq!(
            d.committed_total(4, "events", "likes").unwrap(),
            committed,
            "seed {seed}"
        );
        assert_ownership_consistent(&d, &format!("seed {seed} (healed)"));
        assert_no_divergence(&d, 1, &format!("seed {seed}"));
    });
}

/// Meta-test: the suite *catches* a handoff that installs an
/// incomplete copy. With [`HandoffBreak::InstallIncomplete`] armed,
/// the destination silently misses rows — and the replica-divergence
/// check must flag exactly that.
#[test]
fn meta_broken_handoff_incomplete_install_is_caught() {
    let d = build(3, &[1, 2, 3], 2, FaultPlan::seeded(42));
    let mut rng = StdRng::seed_from_u64(42);
    for _ in 0..8 {
        d.load(rng.gen_range(1..=3), "events", &batch_rows(&mut rng), 0)
            .unwrap();
    }
    // Pick a brick and move it to the one node not hosting it, with
    // the sabotage armed.
    let bid = d.known_bricks("events")[0];
    let hosts = d.brick_hosts("events", bid);
    let spare = (1..=3).find(|n| !hosts.contains(n)).unwrap();
    d.set_handoff_break(Some(HandoffBreak::InstallIncomplete));
    d.transfer_brick("events", bid, hosts[0], spare).unwrap();
    d.set_handoff_break(None);
    // The broken copy diverges from the surviving honest replica.
    let snap = d.protocol().begin_ro(1);
    let err = d
        .check_replica_divergence("events", "likes", snap)
        .expect_err("the divergence check must catch the incomplete copy");
    assert!(err.contains(&format!("brick {bid}")), "{err}");
}

/// Meta-test: the suite catches a handoff that retires the source
/// even though the stream failed ([`HandoffBreak::RetireDespiteFailure`]):
/// the brick's rows vanish and query-based count conservation fails.
#[test]
fn meta_broken_handoff_lost_brick_is_caught() {
    // rf = 1 so the sabotaged move destroys the only copy.
    let d = build(4, &[1, 2, 3], 1, FaultPlan::seeded(43));
    let mut rng = StdRng::seed_from_u64(43);
    let mut committed = 0.0f64;
    for _ in 0..8 {
        d.load(rng.gen_range(1..=3), "events", &batch_rows(&mut rng), 0)
            .unwrap();
        committed += BATCH as f64;
    }
    let bid = d.known_bricks("events")[0];
    let source = d.brick_hosts("events", bid)[0];
    // The receiver is dark, so the stream cannot land; the sabotage
    // "completes" the move anyway.
    d.crash_node(4);
    d.set_handoff_break(Some(HandoffBreak::RetireDespiteFailure));
    d.transfer_brick("events", bid, source, 4).unwrap();
    d.set_handoff_break(None);
    d.restart_node(4);
    // Count conservation — the suite's quiesce check — now fails:
    // the brick's rows are gone.
    let seen = d.committed_total(1, "events", "likes").unwrap();
    assert!(
        seen < committed,
        "the sabotaged handoff should have lost rows ({seen} vs {committed})"
    );
    // And the ownership views disagree: the directory claims node 4
    // serves the brick, but node 4 stores nothing.
    assert_ne!(
        d.physical_bricks("events"),
        d.directory_bricks("events"),
        "ownership audit should flag the phantom copy"
    );
}

/// A lone member cannot leave; joining past capacity panics. Guard
/// rails, pinned.
#[test]
#[should_panic(expected = "capacity")]
fn join_past_capacity_panics() {
    let d = build(2, &[1, 2], 1, FaultPlan::seeded(1));
    let _ = d.join_node(3);
}
