//! Figure 1 and Figure 2 / Table II: the per-partition epochs vector
//! under interleaved appends and partition deletes.
//!
//! The Table II operation schedules are reconstructed from the
//! Table III bitmaps and the Figure 3 prose (the published scan of
//! the tables is partially garbled); see EXPERIMENTS.md for the
//! derivation.

use aosi_repro::aosi::EpochsVector;

fn render(v: &EpochsVector) -> String {
    v.entries().iter().map(|e| format!("{e:?}")).collect()
}

/// Table II / Figure 2, schedule (a).
pub fn schedule_a() -> EpochsVector {
    let mut v = EpochsVector::new();
    v.append(1, 2); // T1 loads 2 records
    v.append(3, 2); // T3 loads 2 records
    v.append(1, 1); // T1 loads 1 record
    v.mark_delete(5); // T5 deletes the partition
    v.append(3, 4); // T3 loads 4 records
    v.append(7, 1); // T7 loads 1 record
    v
}

/// Table II / Figure 2, schedule (b).
pub fn schedule_b() -> EpochsVector {
    let mut v = EpochsVector::new();
    v.append(1, 2);
    v.append(3, 2);
    v.append(1, 3);
    v.append(3, 2);
    v.mark_delete(3); // T3 deletes, then keeps loading
    v.append(3, 3);
    v.append(1, 12);
    v.append(3, 1);
    v
}

#[test]
fn figure_1_append_interleaving() {
    let mut v = EpochsVector::new();
    v.append(1, 3);
    assert_eq!(render(&v), "(T1, 3)");
    v.append(1, 2);
    assert_eq!(render(&v), "(T1, 5)", "same txn at the back: extended");
    v.append(2, 4);
    assert_eq!(render(&v), "(T1, 5)(T2, 9)");
    v.append(1, 4);
    assert_eq!(render(&v), "(T1, 5)(T2, 9)(T1, 13)");
    assert_eq!(v.row_count(), 13);
    // Three entries for 13 rows: 48 bytes of metadata, not 13
    // timestamps.
    assert_eq!(v.used_bytes(), 48);
}

#[test]
fn figure_2a_epochs_vector_state() {
    let v = schedule_a();
    assert_eq!(
        render(&v),
        "(T1, 2)(T3, 4)(T1, 5)(T5, DELETE@5)(T3, 9)(T7, 10)"
    );
    assert_eq!(v.row_count(), 10);
}

#[test]
fn figure_2b_epochs_vector_state() {
    let v = schedule_b();
    assert_eq!(
        render(&v),
        "(T1, 2)(T3, 4)(T1, 7)(T3, 9)(T3, DELETE@9)(T3, 12)(T1, 24)(T3, 25)"
    );
    assert_eq!(v.row_count(), 25);
}

#[test]
fn delete_markers_do_not_remove_data() {
    // "Delete operations do not actually delete data but simply mark
    // data as deleted" — the rows stay until purge.
    let v = schedule_a();
    assert_eq!(v.row_count(), 10, "all ten rows still stored");
    let deletes = v.entries().iter().filter(|e| e.is_delete()).count();
    assert_eq!(deletes, 1);
}
