//! Figure 1 and Figure 2 / Table II: the per-partition epochs vector
//! under interleaved appends and partition deletes.
//!
//! The Table II operation schedules are reconstructed from the
//! Table III bitmaps and the Figure 3 prose (the published scan of
//! the tables is partially garbled); see EXPERIMENTS.md for the
//! derivation.

use std::collections::BTreeSet;

use aosi_repro::aosi::{Epoch, EpochsVector, Snapshot};
use proptest::prelude::*;

fn render(v: &EpochsVector) -> String {
    v.entries().iter().map(|e| format!("{e:?}")).collect()
}

/// Table II / Figure 2, schedule (a).
pub fn schedule_a() -> EpochsVector {
    let mut v = EpochsVector::new();
    v.append(1, 2); // T1 loads 2 records
    v.append(3, 2); // T3 loads 2 records
    v.append(1, 1); // T1 loads 1 record
    v.mark_delete(5); // T5 deletes the partition
    v.append(3, 4); // T3 loads 4 records
    v.append(7, 1); // T7 loads 1 record
    v
}

/// Table II / Figure 2, schedule (b).
pub fn schedule_b() -> EpochsVector {
    let mut v = EpochsVector::new();
    v.append(1, 2);
    v.append(3, 2);
    v.append(1, 3);
    v.append(3, 2);
    v.mark_delete(3); // T3 deletes, then keeps loading
    v.append(3, 3);
    v.append(1, 12);
    v.append(3, 1);
    v
}

#[test]
fn figure_1_append_interleaving() {
    let mut v = EpochsVector::new();
    v.append(1, 3);
    assert_eq!(render(&v), "(T1, 3)");
    v.append(1, 2);
    assert_eq!(render(&v), "(T1, 5)", "same txn at the back: extended");
    v.append(2, 4);
    assert_eq!(render(&v), "(T1, 5)(T2, 9)");
    v.append(1, 4);
    assert_eq!(render(&v), "(T1, 5)(T2, 9)(T1, 13)");
    assert_eq!(v.row_count(), 13);
    // Three entries for 13 rows: 48 bytes of metadata, not 13
    // timestamps.
    assert_eq!(v.used_bytes(), 48);
}

#[test]
fn figure_2a_epochs_vector_state() {
    let v = schedule_a();
    assert_eq!(
        render(&v),
        "(T1, 2)(T3, 4)(T1, 5)(T5, DELETE@5)(T3, 9)(T7, 10)"
    );
    assert_eq!(v.row_count(), 10);
}

#[test]
fn figure_2b_epochs_vector_state() {
    let v = schedule_b();
    assert_eq!(
        render(&v),
        "(T1, 2)(T3, 4)(T1, 7)(T3, 9)(T3, DELETE@9)(T3, 12)(T1, 24)(T3, 25)"
    );
    assert_eq!(v.row_count(), 25);
}

#[test]
fn delete_markers_do_not_remove_data() {
    // "Delete operations do not actually delete data but simply mark
    // data as deleted" — the rows stay until purge.
    let v = schedule_a();
    assert_eq!(v.row_count(), 10, "all ten rows still stored");
    let deletes = v.entries().iter().filter(|e| e.is_delete()).count();
    assert_eq!(deletes, 1);
}

// ---------------------------------------------------------------
// Property: `visible_ranges` — the zero-allocation scan fast path —
// agrees with a deliberately naive per-row model (each row tagged
// with its inserting epoch, every visible delete applied row by row)
// for arbitrary append/delete interleavings and arbitrary snapshots
// with dependency sets. This is the row-level ground truth the
// Table II vignettes above spot-check.
// ---------------------------------------------------------------

/// One generated partition operation.
#[derive(Clone, Debug)]
enum Op {
    /// `(epoch, rows)` append.
    Append(Epoch, u64),
    /// Partition delete by `epoch`.
    Delete(Epoch),
}

/// Replays `ops` into an epochs vector and the naive model: the
/// per-row epoch tags plus each delete as `(epoch, rows-at-delete)`.
fn build(ops: &[Op]) -> (EpochsVector, Vec<Epoch>, Vec<(Epoch, u64)>) {
    let mut vector = EpochsVector::new();
    let mut row_epochs = Vec::new();
    let mut deletes = Vec::new();
    for op in ops {
        match *op {
            Op::Append(epoch, rows) => {
                vector.append(epoch, rows);
                row_epochs.extend(std::iter::repeat_n(epoch, rows as usize));
            }
            Op::Delete(epoch) => {
                vector.mark_delete(epoch);
                deletes.push((epoch, row_epochs.len() as u64));
            }
        }
    }
    (vector, row_epochs, deletes)
}

/// Row-by-row visibility: a row is visible iff the snapshot sees its
/// inserting epoch and no *visible* delete kills it. A delete
/// `(k, d)` kills rows inserted at an epoch below `k` anywhere in the
/// partition, and rows of epoch `k` itself that physically precede
/// the delete point `d` (Section III-C2's same-transaction rule:
/// schedule (b) above shows T3 deleting and then loading more rows).
fn naive_visible(row_epochs: &[Epoch], deletes: &[(Epoch, u64)], snap: &Snapshot) -> Vec<bool> {
    row_epochs
        .iter()
        .enumerate()
        .map(|(idx, &epoch)| {
            snap.sees(epoch)
                && !deletes
                    .iter()
                    .any(|&(k, d)| snap.sees(k) && (epoch < k || (epoch == k && (idx as u64) < d)))
        })
        .collect()
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        7 => (1u64..16, 0u64..5).prop_map(|(e, n)| Op::Append(e, n)),
        3 => (1u64..16).prop_map(Op::Delete),
    ]
}

fn snapshot_strategy() -> impl Strategy<Value = Snapshot> {
    (1u64..20, prop::collection::btree_set(1u64..20, 0..5)).prop_map(|(epoch, deps)| {
        let deps: BTreeSet<Epoch> = deps.into_iter().filter(|&d| d < epoch).collect();
        Snapshot::new(epoch, deps)
    })
}

proptest! {
    #[test]
    fn visible_ranges_match_naive_row_model(
        ops in prop::collection::vec(op_strategy(), 0..32),
        snap in snapshot_strategy(),
    ) {
        let (vector, row_epochs, deletes) = build(&ops);
        let expected = naive_visible(&row_epochs, &deletes, &snap);

        // Flatten the ranges back to per-row booleans.
        let mut got = vec![false; row_epochs.len()];
        let mut prev_end = 0u64;
        for r in vector.visible_ranges(&snap) {
            prop_assert!(r.start < r.end, "empty range emitted");
            prop_assert!(
                r.start >= prev_end,
                "ranges overlap or regress: {:?}", r
            );
            for row in r.start..r.end {
                got[row as usize] = true;
            }
            prev_end = r.end;
        }
        prop_assert_eq!(&got, &expected, "snapshot {:?}", snap);
        prop_assert_eq!(
            vector.visible_rows(&snap),
            expected.iter().filter(|&&v| v).count() as u64
        );
    }
}
