//! End-to-end observability: every subsystem — AOSI manager, engine,
//! shard pool, cluster network — shows up in one metrics report, and
//! query results carry populated per-query statistics.

use aosi_repro::cluster::SimulatedNetwork;
use aosi_repro::columnar::Value;
use aosi_repro::cubrick::{
    AggFn, Aggregation, CubeSchema, DimFilter, Dimension, DistributedEngine, Engine, IsolationMode,
    Metric, Query,
};

fn schema() -> CubeSchema {
    CubeSchema::new(
        "events",
        vec![
            Dimension::string("region", 8, 2),
            Dimension::int("day", 32, 4),
        ],
        vec![Metric::int("likes")],
    )
    .unwrap()
}

fn row(region: &str, day: i64, likes: i64) -> Vec<Value> {
    vec![region.into(), Value::I64(day), Value::I64(likes)]
}

fn sum_query() -> Query {
    Query::aggregate(vec![Aggregation::new(AggFn::Sum, "likes")])
}

#[test]
fn query_results_carry_populated_stats_end_to_end() {
    let engine = Engine::new(2);
    engine.create_cube(schema()).unwrap();
    let rows: Vec<_> = (0..100).map(|i| row("us", i % 32, 1)).collect();
    engine.load("events", &rows, 0).unwrap();

    // Unfiltered scans take the contiguous-range path.
    let unfiltered = engine
        .query("events", &sum_query(), IsolationMode::Snapshot)
        .unwrap();
    assert_eq!(unfiltered.scalar(), Some(100.0));
    assert!(unfiltered.stats.bricks_scanned >= 1);
    assert_eq!(
        unfiltered.stats.range_scans,
        unfiltered.stats.bricks_scanned
    );
    assert_eq!(unfiltered.stats.bitmap_scans, 0);
    assert_eq!(unfiltered.stats.rows_scanned, 100);
    assert_eq!(unfiltered.stats.rows_visible, 100);

    // Filtered scans materialise a bitmap per brick.
    let filtered = engine
        .query(
            "events",
            &sum_query().filter(DimFilter::new("day", vec![Value::I64(3)])),
            IsolationMode::Snapshot,
        )
        .unwrap();
    assert!(filtered.stats.bitmap_scans >= 1);
    assert_eq!(filtered.stats.range_scans, 0);
    assert!(filtered.stats.rows_visible < 100);
    assert!(
        filtered.stats.visibility_build_nanos + filtered.stats.scan_nanos > 0,
        "wall-clock phases must be measured"
    );
}

/// Regression: `rows_scanned` counts the rows a scan actually
/// traversed, not the brick's physical row count. On the unfiltered
/// visible-ranges path an open transaction's uncommitted suffix is
/// never walked — before the fix the stat still reported every
/// stored row.
#[test]
fn rows_scanned_excludes_rows_hidden_from_the_snapshot() {
    let engine = Engine::new(2);
    engine.create_cube(schema()).unwrap();
    let rows: Vec<_> = (0..100).map(|i| row("us", i % 32, 1)).collect();
    engine.load("events", &rows, 0).unwrap();
    // An open (never committed) transaction appends 40 more rows:
    // physically stored, invisible to committed snapshots.
    let txn = engine.begin();
    let pending: Vec<_> = (0..40).map(|i| row("br", i % 32, 1)).collect();
    engine.append("events", &pending, &txn).unwrap();

    // Unfiltered: ranges path. Only the 100 committed rows are walked.
    let unfiltered = engine
        .query("events", &sum_query(), IsolationMode::Snapshot)
        .unwrap();
    assert_eq!(unfiltered.scalar(), Some(100.0));
    assert!(unfiltered.stats.range_scans >= 1);
    assert_eq!(unfiltered.stats.rows_scanned, 100);
    assert_eq!(unfiltered.stats.rows_visible, 100);

    // Filtered: bitmap path. Same traversal accounting.
    let filtered = engine
        .query(
            "events",
            &sum_query().filter(DimFilter::new("region", vec![Value::from("us")])),
            IsolationMode::Snapshot,
        )
        .unwrap();
    assert!(filtered.stats.bitmap_scans >= 1);
    assert_eq!(filtered.stats.rows_scanned, 100);
    assert_eq!(filtered.stats.rows_visible, 100);

    // Read-uncommitted sees (and traverses) everything.
    let dirty = engine
        .query("events", &sum_query(), IsolationMode::ReadUncommitted)
        .unwrap();
    assert_eq!(dirty.scalar(), Some(140.0));
    assert_eq!(dirty.stats.rows_scanned, 140);
}

#[test]
fn metrics_report_covers_every_single_node_subsystem() {
    let engine = Engine::new(2);
    engine.create_cube(schema()).unwrap();
    let rows: Vec<_> = (0..50).map(|i| row("br", i % 32, i)).collect();
    engine.load("events", &rows, 0).unwrap();
    engine
        .query("events", &sum_query(), IsolationMode::Snapshot)
        .unwrap();
    engine
        .delete_where("events", &[DimFilter::new("day", vec![Value::I64(1)])])
        .unwrap();
    engine.manager().advance_lse(engine.manager().lce()).ok();
    engine.purge();

    let report = engine.metrics_report();
    for section in ["[aosi]", "[engine]", "[shards]"] {
        assert!(report.contains(section), "missing {section} in:\n{report}");
    }
    assert!(report.contains("loads = 1"), "report:\n{report}");
    assert!(report.contains("queries = 1"), "report:\n{report}");
    assert!(report.contains("deletes = 1"), "report:\n{report}");
    assert!(report.contains("purges = 1"), "report:\n{report}");
    assert!(
        report.contains("query_nanos.count = 1"),
        "report:\n{report}"
    );
    assert!(report.contains("tasks ="), "report:\n{report}");
}

#[test]
fn metrics_report_covers_the_durability_path() {
    use aosi_repro::cluster::ReplicationTracker;
    use aosi_repro::wal::{recover_into_with, FlushController, RecoverOptions, SimFs, WalFs};
    use std::path::PathBuf;
    use std::sync::Arc;

    let fs = Arc::new(SimFs::new(7));
    let dir = PathBuf::from("/wal");
    let engine = Engine::new(2);
    engine.create_cube(schema()).unwrap();
    let rows: Vec<_> = (0..40).map(|i| row("us", i % 32, 1)).collect();
    engine.load("events", &rows, 0).unwrap();

    let mut ctl = FlushController::with_fs(fs.clone() as Arc<dyn WalFs>, dir.clone(), 1).unwrap();
    ctl.flush_round(&engine, &ReplicationTracker::new(1))
        .unwrap();
    let report = ctl.metrics_report();
    assert!(report.contains("[wal.flush]"), "report:\n{report}");
    for line in [
        "rounds_written = 1",
        "file_syncs = 1",
        "dir_syncs = 1",
        "renames = 1",
    ] {
        assert!(report.contains(line), "missing {line} in:\n{report}");
    }

    let recovered = Engine::new(2);
    recovered.create_cube(schema()).unwrap();
    let rep = recover_into_with(fs.as_ref(), &dir, &recovered, &RecoverOptions::default()).unwrap();
    let restored = recovered
        .query("events", &sum_query(), IsolationMode::Snapshot)
        .unwrap();
    assert_eq!(restored.scalar(), Some(40.0), "recovered data answers");
    let report = rep.metrics_report();
    assert!(report.contains("[wal.recovery]"), "report:\n{report}");
    for line in [
        "rounds_salvaged = 1",
        "rounds_skipped = 0",
        "gaps_detected = 0",
        "rows_recovered = 40",
    ] {
        assert!(report.contains(line), "missing {line} in:\n{report}");
    }
}

#[test]
fn metrics_report_covers_cluster_and_every_node() {
    let cluster = DistributedEngine::new(2, 2, SimulatedNetwork::instant());
    cluster.create_cube(schema()).unwrap();
    let rows: Vec<_> = (0..80).map(|i| row("mx", i % 32, 1)).collect();
    cluster.load(1, "events", &rows, 0).unwrap();
    let result = cluster
        .query(2, "events", &sum_query(), IsolationMode::Snapshot)
        .unwrap();
    assert_eq!(result.scalar(), Some(80.0));

    let report = cluster.metrics_report();
    assert!(report.contains("[cluster]"), "report:\n{report}");
    assert!(
        report.contains("messages.begin_request"),
        "typed traffic missing in:\n{report}"
    );
    for node in 1..=2 {
        for section in ["aosi", "engine", "shards"] {
            let header = format!("[node{node}.{section}]");
            assert!(report.contains(&header), "missing {header} in:\n{report}");
        }
    }
    assert!(report.contains("flushes = 1"), "report:\n{report}");
}
