//! Cross-crate integration: the full stack — distributed engine,
//! protocol, persistence, recovery, baselines — working together.

use aosi_repro::cluster::{ReplicationTracker, SimulatedNetwork};
use aosi_repro::columnar::Value;
use aosi_repro::cubrick::{
    AggFn, Aggregation, CubeSchema, DimFilter, Dimension, DistributedEngine, Engine, IsolationMode,
    Metric, Query,
};
use aosi_repro::wal::{recover_into, FlushController};
use aosi_repro::workload::{Dataset, WideDataset};

fn schema() -> CubeSchema {
    CubeSchema::new(
        "events",
        vec![
            Dimension::string("region", 8, 2),
            Dimension::int("day", 32, 4),
        ],
        vec![Metric::int("likes")],
    )
    .unwrap()
}

fn row(region: &str, day: i64, likes: i64) -> Vec<Value> {
    vec![region.into(), Value::I64(day), Value::I64(likes)]
}

fn sum(engine: &DistributedEngine, origin: u64) -> f64 {
    engine
        .query(
            origin,
            "events",
            &Query::aggregate(vec![Aggregation::new(AggFn::Sum, "likes")]),
            IsolationMode::Snapshot,
        )
        .unwrap()
        .scalar()
        .unwrap_or(0.0)
}

#[test]
fn distributed_lifecycle_load_delete_purge() {
    let cluster = DistributedEngine::new(3, 2, SimulatedNetwork::instant());
    cluster.create_cube(schema()).unwrap();

    // Load from different coordinators.
    for (origin, day) in [(1u64, 0i64), (2, 5), (3, 10)] {
        let rows: Vec<_> = (0..50).map(|i| row("us", day, i)).collect();
        let outcome = cluster.load(origin, "events", &rows, 0).unwrap();
        assert_eq!(outcome.accepted, 50);
    }
    let expected: f64 = 3.0 * (0..50).sum::<i64>() as f64;
    for origin in 1..=3 {
        assert_eq!(sum(&cluster, origin), expected);
    }

    // Retention delete of the day-[4,8) partition range.
    let (_, marked) = cluster
        .delete_where(
            2,
            "events",
            &[DimFilter::new("day", (4..8).map(Value::from).collect())],
        )
        .unwrap();
    assert!(marked >= 1);
    let after_delete: f64 = 2.0 * (0..50).sum::<i64>() as f64;
    assert_eq!(sum(&cluster, 1), after_delete);

    // Purge physically reclaims once LSE advances everywhere.
    let stats = cluster.purge_all();
    assert_eq!(stats.rows_purged, 50);
    assert_eq!(cluster.memory().rows, 100);
    assert_eq!(sum(&cluster, 3), after_delete, "purge is invisible");
}

#[test]
fn flush_recover_node_preserves_its_shard_of_data() {
    let dir = std::env::temp_dir().join(format!("aosi-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let cluster = DistributedEngine::new(2, 2, SimulatedNetwork::instant());
    cluster.create_cube(schema()).unwrap();
    let rows: Vec<_> = (0..200).map(|i| row("us", i % 32, 1)).collect();
    cluster.load(1, "events", &rows, 0).unwrap();

    let tracker = ReplicationTracker::new(2);
    let mut totals = 0u64;
    for node in 1..=2u64 {
        let mut ctl = FlushController::new(dir.join(format!("n{node}")), node).unwrap();
        ctl.flush_round(cluster.engine(node), &tracker).unwrap();
        let held = cluster.engine(node).memory().rows;
        let restored = Engine::new(2);
        restored.create_cube(schema()).unwrap();
        let report = recover_into(&dir.join(format!("n{node}")), &restored).unwrap();
        assert_eq!(report.rows_recovered, held, "node {node}");
        totals += report.rows_recovered;
    }
    assert_eq!(totals, 200);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn concurrent_distributed_loads_stay_transactionally_consistent() {
    let cluster = DistributedEngine::new(3, 2, SimulatedNetwork::instant());
    cluster.create_cube(schema()).unwrap();
    const BATCH: usize = 40;

    std::thread::scope(|scope| {
        for producer in 0..3u64 {
            let cluster = &cluster;
            scope.spawn(move || {
                for b in 0..20i64 {
                    let rows: Vec<_> = (0..BATCH).map(|_| row("br", b % 32, 1)).collect();
                    cluster.load(producer + 1, "events", &rows, 0).unwrap();
                }
            });
        }
        for reader in 0..2u64 {
            let cluster = &cluster;
            scope.spawn(move || {
                for _ in 0..30 {
                    let total = sum(cluster, reader + 1) as u64;
                    assert_eq!(total % BATCH as u64, 0, "snapshot observed a torn batch");
                }
            });
        }
    });
    assert_eq!(sum(&cluster, 1) as u64, 3 * 20 * BATCH as u64);
}

#[test]
fn aosi_and_mvcc_baseline_agree_on_visible_data() {
    use aosi_repro::columnar::{ColumnType, Field, Schema};
    use aosi_repro::mvcc_baseline::{MvccStore, MvccTxnManager};

    // The same insert-only history through both systems must expose
    // the same rows and the documented memory asymmetry.
    let engine = Engine::new(2);
    engine.create_cube(schema()).unwrap();
    let mut store = MvccStore::new(
        Schema::new(vec![
            Field::new("region", ColumnType::Str),
            Field::new("day", ColumnType::I64),
            Field::new("likes", ColumnType::I64),
        ]),
        MvccTxnManager::new(),
    );

    for batch in 0..10i64 {
        let rows: Vec<_> = (0..100).map(|i| row("mx", batch % 32, i)).collect();
        engine.load("events", &rows, 0).unwrap();
        let mut txn = store.manager().begin();
        for r in &rows {
            store.insert(&mut txn, r);
        }
        store.commit(&mut txn).unwrap();
    }

    let aosi_sum = engine
        .query(
            "events",
            &Query::aggregate(vec![Aggregation::new(AggFn::Sum, "likes")]),
            IsolationMode::Snapshot,
        )
        .unwrap()
        .scalar()
        .unwrap();
    let (bitmap, stats) = store.scan_snapshot(store.manager().latest());
    let mvcc_sum = store.aggregate_sum(2, &bitmap);
    assert_eq!(aosi_sum, mvcc_sum);
    assert_eq!(stats.rows_visible, 1000);

    // The paper's memory claim, executable: identical data, wildly
    // different concurrency-control footprints.
    let aosi_meta = engine.memory().aosi_bytes;
    let mvcc_meta = store.metadata_bytes();
    assert!(
        mvcc_meta >= 16_000,
        "MVCC pays >= 16 B per record ({mvcc_meta})"
    );
    assert!(
        aosi_meta < mvcc_meta / 4,
        "AOSI ({aosi_meta} B) must be far below MVCC ({mvcc_meta} B)"
    );
}

#[test]
fn workload_dataset_runs_through_the_distributed_stack() {
    let cluster = DistributedEngine::new(2, 2, SimulatedNetwork::instant());
    let dataset = WideDataset::default();
    cluster.create_cube(dataset.schema()).unwrap();
    let outcome = cluster
        .load(1, "wide", &dataset.batch(3, 0, 2000), 0)
        .unwrap();
    assert_eq!(outcome.accepted, 2000);
    let result = cluster
        .query(
            2,
            "wide",
            &Query::aggregate(vec![Aggregation::new(AggFn::Count, "m0")]).grouped_by("region"),
            IsolationMode::Snapshot,
        )
        .unwrap();
    let counted: f64 = result.rows.iter().map(|(_, v)| v[0]).sum();
    assert_eq!(counted, 2000.0);
}
