//! End-to-end through the operator surface: a full SQL session, the
//! flush/verify/recover loop, and the background purge daemon working
//! together — the way a downstream user would actually run the
//! system.

use std::sync::Arc;
use std::time::Duration;

use aosi_repro::cluster::ReplicationTracker;
use aosi_repro::cubrick::sql::{execute, SqlOutput};
use aosi_repro::cubrick::{Engine, PurgeDaemon};
use aosi_repro::wal::{recover_into, verify_dir, FlushController, RoundStatus, TempWalDir};

fn table(output: SqlOutput) -> Vec<Vec<String>> {
    match output {
        SqlOutput::Table { rows, .. } => rows,
        other => panic!("expected table, got {other:?}"),
    }
}

#[test]
fn sql_session_with_durability_and_verify() {
    let dir = TempWalDir::new("sql-ops");
    let engine = Engine::new(2);

    // DDL + data through SQL only.
    execute(
        &engine,
        "CREATE CUBE sales (store STRING DIM(8, 2), day INT DIM(16, 1), \
         units INT METRIC, amount FLOAT METRIC)",
    )
    .unwrap();
    for day in 0..4 {
        execute(
            &engine,
            &format!(
                "INSERT INTO sales VALUES \
                 ('downtown', {day}, 10, 100.5), ('airport', {day}, 20, 200.25)"
            ),
        )
        .unwrap();
    }

    // Analytical surface: filters, multi-group, order, limit.
    let rows = table(
        execute(
            &engine,
            "SELECT SUM(units), AVG(amount) FROM sales \
             WHERE day IN (0, 1, 2, 3) GROUP BY store, day \
             ORDER BY SUM(units) DESC LIMIT 3",
        )
        .unwrap(),
    );
    assert_eq!(rows.len(), 3);
    assert!(rows.iter().all(|r| r[0] == "airport" && r[2] == "20"));

    // Durability: flush, verify the directory, recover into a fresh
    // process-equivalent, and compare answers.
    let tracker = ReplicationTracker::new(1);
    let mut ctl = FlushController::new(dir.path(), 1).unwrap();
    ctl.flush_round(&engine, &tracker).unwrap();
    let verify = verify_dir(dir.path()).unwrap();
    assert!(verify.is_clean());
    assert_eq!(verify.recoverable_rows, 8);
    assert!(matches!(
        verify.rounds[0].status,
        RoundStatus::Complete { rows: 8, .. }
    ));

    let restored = Engine::new(2);
    execute(
        &restored,
        "CREATE CUBE sales (store STRING DIM(8, 2), day INT DIM(16, 1), \
         units INT METRIC, amount FLOAT METRIC)",
    )
    .unwrap();
    recover_into(dir.path(), &restored).unwrap();
    let before = table(execute(&engine, "SELECT SUM(units) FROM sales GROUP BY store").unwrap());
    let after = table(execute(&restored, "SELECT SUM(units) FROM sales GROUP BY store").unwrap());
    assert_eq!(before, after, "recovered answers must match the source");

    // Retention delete + background purge daemon on the restored node.
    let restored = Arc::new(restored);
    let daemon = PurgeDaemon::spawn(Arc::clone(&restored), Duration::from_millis(5), true);
    execute(&restored, "DELETE FROM sales WHERE day IN (0)").unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let rows = table(execute(&restored, "SHOW MEMORY").unwrap());
        let resident: u64 = rows
            .iter()
            .find(|r| r[0] == "rows")
            .and_then(|r| r[1].parse().ok())
            .unwrap();
        if resident == 6 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "daemon never reclaimed the deleted day (resident = {resident})"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    daemon.stop();

    // Final state through SQL.
    let rows = table(
        execute(
            &restored,
            "SELECT COUNT(*) FROM sales GROUP BY day ORDER BY day",
        )
        .unwrap(),
    );
    assert_eq!(rows.len(), 3, "day 0 is gone");
    assert!(rows.iter().all(|r| r[1] == "2"));
}

#[test]
fn stats_counters_through_the_session() {
    let engine = Engine::new(1);
    execute(&engine, "CREATE CUBE t (k INT DIM(4, 2), v INT METRIC)").unwrap();
    execute(&engine, "INSERT INTO t VALUES (0, 1), (1, 2)").unwrap();
    execute(&engine, "INSERT INTO t VALUES (2, 4)").unwrap();
    execute(&engine, "SELECT SUM(v) FROM t").unwrap();
    execute(&engine, "SELECT COUNT(*) FROM t").unwrap();
    let rows = table(execute(&engine, "SHOW STATS").unwrap());
    let get = |name: &str| {
        rows.iter()
            .find(|r| r[0] == name)
            .map(|r| r[1].clone())
            .unwrap()
    };
    assert_eq!(get("loads"), "2");
    assert_eq!(get("rows_loaded"), "3");
    assert_eq!(get("queries"), "2");
    assert_eq!(get("txns_committed"), "2");
    assert_eq!(get("lce"), "2");
}
