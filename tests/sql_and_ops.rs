//! End-to-end through the operator surface: a full SQL session, the
//! flush/verify/recover loop, and the background purge daemon working
//! together — the way a downstream user would actually run the
//! system.

use std::sync::Arc;
use std::time::Duration;

use aosi_repro::cluster::ReplicationTracker;
use aosi_repro::cubrick::sql::{execute, SqlOutput};
use aosi_repro::cubrick::{Engine, PurgeDaemon};
use aosi_repro::wal::{recover_into, verify_dir, FlushController, RoundStatus, TempWalDir};

fn table(output: SqlOutput) -> Vec<Vec<String>> {
    match output {
        SqlOutput::Table { rows, .. } => rows,
        other => panic!("expected table, got {other:?}"),
    }
}

#[test]
fn sql_session_with_durability_and_verify() {
    let dir = TempWalDir::new("sql-ops");
    let engine = Engine::new(2);

    // DDL + data through SQL only.
    execute(
        &engine,
        "CREATE CUBE sales (store STRING DIM(8, 2), day INT DIM(16, 1), \
         units INT METRIC, amount FLOAT METRIC)",
    )
    .unwrap();
    for day in 0..4 {
        execute(
            &engine,
            &format!(
                "INSERT INTO sales VALUES \
                 ('downtown', {day}, 10, 100.5), ('airport', {day}, 20, 200.25)"
            ),
        )
        .unwrap();
    }

    // Analytical surface: filters, multi-group, order, limit.
    let rows = table(
        execute(
            &engine,
            "SELECT SUM(units), AVG(amount) FROM sales \
             WHERE day IN (0, 1, 2, 3) GROUP BY store, day \
             ORDER BY SUM(units) DESC LIMIT 3",
        )
        .unwrap(),
    );
    assert_eq!(rows.len(), 3);
    assert!(rows.iter().all(|r| r[0] == "airport" && r[2] == "20"));

    // Durability: flush, verify the directory, recover into a fresh
    // process-equivalent, and compare answers.
    let tracker = ReplicationTracker::new(1);
    let mut ctl = FlushController::new(dir.path(), 1).unwrap();
    ctl.flush_round(&engine, &tracker).unwrap();
    let verify = verify_dir(dir.path()).unwrap();
    assert!(verify.is_clean());
    assert_eq!(verify.recoverable_rows, 8);
    assert!(matches!(
        verify.rounds[0].status,
        RoundStatus::Complete { rows: 8, .. }
    ));

    let restored = Engine::new(2);
    execute(
        &restored,
        "CREATE CUBE sales (store STRING DIM(8, 2), day INT DIM(16, 1), \
         units INT METRIC, amount FLOAT METRIC)",
    )
    .unwrap();
    recover_into(dir.path(), &restored).unwrap();
    let before = table(execute(&engine, "SELECT SUM(units) FROM sales GROUP BY store").unwrap());
    let after = table(execute(&restored, "SELECT SUM(units) FROM sales GROUP BY store").unwrap());
    assert_eq!(before, after, "recovered answers must match the source");

    // Retention delete + background purge daemon on the restored node.
    let restored = Arc::new(restored);
    let daemon = PurgeDaemon::spawn(Arc::clone(&restored), Duration::from_millis(5), true);
    execute(&restored, "DELETE FROM sales WHERE day IN (0)").unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let rows = table(execute(&restored, "SHOW MEMORY").unwrap());
        let resident: u64 = rows
            .iter()
            .find(|r| r[0] == "rows")
            .and_then(|r| r[1].parse().ok())
            .unwrap();
        if resident == 6 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "daemon never reclaimed the deleted day (resident = {resident})"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    daemon.stop();

    // Final state through SQL.
    let rows = table(
        execute(
            &restored,
            "SELECT COUNT(*) FROM sales GROUP BY day ORDER BY day",
        )
        .unwrap(),
    );
    assert_eq!(rows.len(), 3, "day 0 is gone");
    assert!(rows.iter().all(|r| r[1] == "2"));
}

/// Satellite pin: `delete_where` (and `DELETE FROM ... WHERE`)
/// treats filter values that do not resolve to a coordinate — a
/// string the dimension's dictionary has never seen, an out-of-range
/// integer, a wrong-typed value — as a **narrower match**, not a
/// typed error. The unresolvable value is dropped from the filter's
/// coordinate set exactly as the query path drops it, so an
/// all-unknown filter deletes nothing and still succeeds. The oracle
/// (`crates/oracle`) relies on this: its reference model never has to
/// represent "delete of a value that does not exist" specially.
#[test]
fn delete_with_unknown_values_narrows_to_nothing() {
    use aosi_repro::columnar::Value;
    use aosi_repro::cubrick::DimFilter;

    // Range-1 dimensions so each value fills its own brick range and
    // a value-level filter can contain a brick (deletes are
    // brick-granular: a brick is marked only when its *entire*
    // coordinate range is covered by the filter).
    let engine = Engine::new(1);
    execute(
        &engine,
        "CREATE CUBE t (region STRING DIM(8, 1), day INT DIM(8, 1), v INT METRIC)",
    )
    .unwrap();
    execute(&engine, "INSERT INTO t VALUES ('us', 1, 10), ('eu', 2, 20)").unwrap();

    // A dictionary string never loaded: zero bricks marked, the call
    // still commits an (empty) delete epoch.
    let (_, marked) = engine
        .delete_where("t", &[DimFilter::new("region", vec![Value::from("zz")])])
        .unwrap();
    assert_eq!(marked, 0, "unknown dictionary value must match nothing");

    // Out-of-range and wrong-typed integer values behave the same.
    let (_, marked) = engine
        .delete_where("t", &[DimFilter::new("day", vec![Value::from(100i64)])])
        .unwrap();
    assert_eq!(marked, 0, "out-of-range day must match nothing");
    let (_, marked) = engine
        .delete_where("t", &[DimFilter::new("day", vec![Value::from("one")])])
        .unwrap();
    assert_eq!(marked, 0, "wrong-typed day must match nothing");

    // A mixed filter narrows to its known values only: deleting
    // {'zz', 'us'} kills exactly the 'us' rows.
    engine
        .delete_where(
            "t",
            &[DimFilter::new(
                "region",
                vec![Value::from("zz"), Value::from("us")],
            )],
        )
        .unwrap();
    let rows = table(execute(&engine, "SELECT COUNT(*) FROM t GROUP BY region").unwrap());
    assert_eq!(rows, vec![vec!["eu".to_string(), "1".to_string()]]);

    // Same pin through SQL; an unknown *column*, by contrast, errors.
    execute(&engine, "DELETE FROM t WHERE region IN ('nope')").unwrap();
    let rows = table(execute(&engine, "SELECT COUNT(*) FROM t").unwrap());
    assert_eq!(rows, vec![vec!["1".to_string()]], "narrow delete kept eu");
    let err = execute(&engine, "DELETE FROM t WHERE nope IN ('us')").unwrap_err();
    assert!(
        err.to_string().contains("nope"),
        "unknown column names the offender: {err}"
    );
}

/// Satellite pin: every SQL error path a downstream user can hit
/// stays an `Err` with a message naming the offender — never a panic,
/// never a silently empty table.
#[test]
fn sql_error_paths_name_the_offender() {
    use aosi_repro::cubrick::sql::SqlError;

    let engine = Engine::new(1);
    execute(
        &engine,
        "CREATE CUBE t (region STRING DIM(8, 2), day INT DIM(8, 3), v INT METRIC)",
    )
    .unwrap();
    execute(&engine, "INSERT INTO t VALUES ('us', 1, 10)").unwrap();

    // Unknown cube, on both the read and write paths.
    for stmt in [
        "SELECT COUNT(*) FROM nocube",
        "INSERT INTO nocube VALUES (1)",
        "DELETE FROM nocube WHERE day IN (1)",
    ] {
        let err = execute(&engine, stmt).unwrap_err();
        assert!(
            matches!(&err, SqlError::Engine(m) if m.contains("nocube")),
            "{stmt}: {err}"
        );
    }

    // Unknown column in each clause position.
    for stmt in [
        "SELECT SUM(nosuch) FROM t",
        "SELECT COUNT(*) FROM t WHERE nosuch IN (1)",
        "SELECT COUNT(*) FROM t GROUP BY nosuch",
    ] {
        let err = execute(&engine, stmt).unwrap_err();
        assert!(
            matches!(&err, SqlError::Engine(m) if m.contains("nosuch")),
            "{stmt}: {err}"
        );
    }

    // Aggregating a dimension: dimensions are coordinates, not
    // metrics, so SUM(region) is an unknown-column error too.
    let err = execute(&engine, "SELECT SUM(region) FROM t").unwrap_err();
    assert!(
        matches!(&err, SqlError::Engine(m) if m.contains("region")),
        "aggregate on dimension: {err}"
    );

    // Malformed literals die in the lexer or the parser, before the
    // engine sees anything.
    let err = execute(&engine, "SELECT COUNT(*) FROM t WHERE region IN ('oops)").unwrap_err();
    assert!(
        matches!(err, SqlError::Lex(_)),
        "unterminated string: {err}"
    );
    let err = execute(&engine, "INSERT INTO t VALUES ('us', 1 10)").unwrap_err();
    assert!(matches!(err, SqlError::Parse(_)), "missing comma: {err}");
    let err = execute(&engine, "SELECT COUNT(* FROM t").unwrap_err();
    assert!(matches!(err, SqlError::Parse(_)), "unbalanced paren: {err}");

    // A structurally valid INSERT whose value cannot be coerced into
    // the dimension (string into an INT dim) rejects the record and,
    // with the whole batch rejected, fails the statement.
    let err = execute(&engine, "INSERT INTO t VALUES ('us', 'oops', 10)").unwrap_err();
    assert!(
        matches!(&err, SqlError::Engine(_)),
        "uncoercible literal: {err}"
    );

    // Nothing above disturbed the data.
    let rows = table(execute(&engine, "SELECT COUNT(*) FROM t").unwrap());
    assert_eq!(rows, vec![vec!["1".to_string()]]);
}

#[test]
fn stats_counters_through_the_session() {
    let engine = Engine::new(1);
    execute(&engine, "CREATE CUBE t (k INT DIM(4, 2), v INT METRIC)").unwrap();
    execute(&engine, "INSERT INTO t VALUES (0, 1), (1, 2)").unwrap();
    execute(&engine, "INSERT INTO t VALUES (2, 4)").unwrap();
    execute(&engine, "SELECT SUM(v) FROM t").unwrap();
    execute(&engine, "SELECT COUNT(*) FROM t").unwrap();
    let rows = table(execute(&engine, "SHOW STATS").unwrap());
    let get = |name: &str| {
        rows.iter()
            .find(|r| r[0] == name)
            .map(|r| r[1].clone())
            .unwrap()
    };
    assert_eq!(get("loads"), "2");
    assert_eq!(get("rows_loaded"), "3");
    assert_eq!(get("queries"), "2");
    assert_eq!(get("txns_committed"), "2");
    assert_eq!(get("lce"), "2");
}
