//! Figure 3: the purge procedure over the Figure 2(a) partition at
//! LSE = 3 and LSE = 5.

use aosi_repro::aosi::{purge, EpochsVector, Snapshot};

fn schedule_a() -> EpochsVector {
    let mut v = EpochsVector::new();
    v.append(1, 2);
    v.append(3, 2);
    v.append(1, 1);
    v.mark_delete(5);
    v.append(3, 4);
    v.append(7, 1);
    v
}

fn render(v: &EpochsVector) -> String {
    v.entries().iter().map(|e| format!("{e:?}")).collect()
}

#[test]
fn purge_at_lse_3_merges_history_but_keeps_the_delete() {
    // "Purging when LSE = 3 allows (a) to merge all pointers on
    // epochs prior to LSE into a single entry (when contiguous).
    // However, the pending delete still cannot be applied since it
    // comes from a transaction later than LSE."
    let result = purge::purge(&schedule_a(), 3);
    assert_eq!(
        render(&result.vector),
        "(T3, 5)(T5, DELETE@5)(T3, 9)(T7, 10)"
    );
    assert_eq!(result.purged_rows, 0, "no data may be removed yet");
    assert_eq!(result.entries_reclaimed, 2);
}

#[test]
fn purge_at_lse_5_applies_the_delete() {
    // "When LSE = 5, all data prior to 5 can be safely deleted, even
    // if it was inserted after the delete operation chronologically.
    // Hence, the only record and epoch entry required is the one
    // inserted by T7."
    let result = purge::purge(&schedule_a(), 5);
    assert_eq!(render(&result.vector), "(T7, 1)");
    assert_eq!(result.purged_rows, 9);
    assert_eq!(result.vector.row_count(), 1);
}

#[test]
fn purge_preserves_all_post_lse_readers() {
    let v = schedule_a();
    for lse in [3u64, 5] {
        let result = purge::purge(&v, lse);
        for reader in lse..=9 {
            let snap = Snapshot::committed(reader);
            let before = v.visible_bitmap(&snap);
            let after = result.vector.visible_bitmap(&snap);
            assert_eq!(
                before.count_ones(),
                after.count_ones(),
                "lse {lse}, reader {reader}"
            );
        }
    }
}

#[test]
fn purge_is_incremental() {
    // LSE advancing 0 -> 3 -> 5 -> 7 step by step produces the same
    // final partition as jumping straight to 7.
    let mut stepped = schedule_a();
    for lse in [0u64, 3, 5, 7] {
        stepped = purge::purge(&stepped, lse).vector;
    }
    let direct = purge::purge(&schedule_a(), 7).vector;
    assert_eq!(render(&stepped), render(&direct));
}

#[test]
fn skipping_untouched_partitions() {
    // "If there are no entries in the epochs vector older than LSE
    // and no pending delete operations, the purge procedure skips the
    // current evaluated partition."
    let mut v = EpochsVector::new();
    v.append(9, 100);
    assert!(!v.needs_purge(5));
    let result = purge::purge(&v, 5);
    assert!(!result.changed);
}
