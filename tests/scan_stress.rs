//! Concurrency stress for the parallel + cached scan path: writers
//! mutate (append / rollback / purge) while readers hammer repeated
//! `query_as_of` epochs through the visibility cache, with the online
//! SI checker riding along.
//!
//! What this proves, beyond the single-threaded scan oracle:
//!
//! * **Read stability under concurrent invalidation** — two reads of
//!   the same epoch must fingerprint identically even when writers
//!   are invalidating and repopulating the cache between them (the
//!   checker's `Read` events share a per-query key, so any
//!   instability is a reported violation).
//! * **The cache is actually exercised** — the run asserts a nonzero
//!   hit count; a cache that invalidates everything forever would
//!   pass equivalence checks vacuously.
//! * **Quiescent equivalence** — after the threads join, every epoch
//!   in `[LSE, LCE]` is compared against the sequential uncached
//!   reference byte-for-byte.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use aosi::Snapshot;
use checker::{SiChecker, TxnEvent};
use columnar::{Row, Value};
use cubrick::{CubrickError, DimStorage, Engine, ScanConfig, ScanKernel};
use oracle::checks::{build_query, fingerprint, normalize, NUM_QUERIES};
use oracle::compare_paths;
use workload::ops::{oracle_schema, ORACLE_CUBE};

const NODE: u64 = 1;
const WRITERS: usize = 3;
const READERS: usize = 4;
const WRITES_PER_WRITER: usize = 40;
const READS_PER_READER: usize = 60;

fn gen_rows(writer: usize, round: usize) -> Vec<Row> {
    (0..4)
        .map(|k| {
            let i = writer * 1000 + round * 4 + k;
            vec![
                Value::from(format!("r{}", i % 4).as_str()),
                Value::from((i % 16) as i64),
                Value::from(i as i64),
                Value::from(0.25),
            ]
        })
        .collect()
}

#[test]
fn concurrent_writers_and_cached_readers_stay_si_consistent() {
    let engine = Arc::new(Engine::new(4).with_scan_config(ScanConfig::parallel_cached(4096)));
    engine.create_cube(oracle_schema()).unwrap();
    let checker = Arc::new(SiChecker::new(NODE));
    // Seed data so the first readers have something cacheable.
    engine.load(ORACLE_CUBE, &gen_rows(99, 0), 0).unwrap();
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        for writer in 0..WRITERS {
            let engine = Arc::clone(&engine);
            let checker = Arc::clone(&checker);
            scope.spawn(move || {
                for round in 0..WRITES_PER_WRITER {
                    let txn = engine.begin();
                    checker.record(TxnEvent::Begin {
                        node: NODE,
                        epoch: txn.epoch(),
                        deps: txn.snapshot().deps().clone(),
                    });
                    let rows = gen_rows(writer, round);
                    let (accepted, rejected) = engine.append(ORACLE_CUBE, &rows, &txn).unwrap();
                    assert_eq!((accepted, rejected), (rows.len(), 0));
                    if round % 7 == 3 {
                        // Rollback: physically reclaims the rows and
                        // must invalidate their bricks' cached
                        // visibility.
                        engine.rollback(&txn).unwrap();
                        checker.record(TxnEvent::Rollback {
                            node: NODE,
                            epoch: txn.epoch(),
                        });
                    } else {
                        engine.commit(&txn).unwrap();
                        checker.record(TxnEvent::Commit {
                            node: NODE,
                            epoch: txn.epoch(),
                        });
                    }
                    if round % 11 == 10 {
                        // Purge compacts history (and rebuilds epochs
                        // vectors) under the readers' feet; read
                        // guards keep their epochs safe.
                        engine.advance_lse_and_purge();
                    }
                }
            });
        }
        for reader in 0..READERS {
            let engine = Arc::clone(&engine);
            let checker = Arc::clone(&checker);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                for round in 0..READS_PER_READER {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    // Re-reading a recent epoch (rather than always
                    // the newest) is what produces cache hits: the
                    // key (generation, epoch, deps) recurs until a
                    // writer touches the brick.
                    let lce = engine.manager().lce();
                    let epoch = lce.saturating_sub((round % 3) as u64).max(1);
                    let idx = (reader + round) % NUM_QUERIES;
                    match engine.query_as_of(ORACLE_CUBE, &build_query(idx), epoch) {
                        Ok(result) => {
                            let norm = normalize(&result);
                            checker.record(TxnEvent::Read {
                                node: NODE,
                                snapshot_epoch: epoch,
                                deps: BTreeSet::new(),
                                observed: BTreeSet::new(),
                                reader: None,
                                key: format!("{ORACLE_CUBE}:q{idx}"),
                                fingerprint: fingerprint(&norm),
                            });
                        }
                        // The readable window can advance between
                        // sampling LCE and the guarded check inside
                        // query_as_of; that is a benign race.
                        Err(CubrickError::EpochOutOfRange { .. }) => {}
                        Err(e) => panic!("reader failed: {e}"),
                    }
                }
            });
        }
    });
    stop.store(true, Ordering::Relaxed);

    // Clocks only at quiescence (a mid-run sample could pair a stale
    // EC with a fresh LCE and trip the checker on a torn read).
    let clock = engine.manager().clock();
    checker.record(TxnEvent::ClockSample {
        node: NODE,
        ec: clock.current_ec(),
        lce: clock.lce(),
        lse: clock.lse(),
    });
    let violations = checker.violations();
    assert!(
        violations.is_empty(),
        "{} SI violation(s), first: {}",
        violations.len(),
        violations[0]
    );

    // The cache must have been genuinely exercised.
    let stats = engine.visibility_cache_stats().unwrap();
    assert!(
        stats.hits > 0,
        "no cache hits across the whole run: {stats:?}"
    );
    assert!(
        stats.invalidations > 0,
        "writers never invalidated: {stats:?}"
    );

    // Quiescent sweep: the fast path agrees with the sequential
    // uncached reference at every surviving epoch.
    let (lse, lce) = (engine.manager().lse(), engine.manager().lce());
    for epoch in lse..=lce {
        let snapshot = Snapshot::committed(epoch);
        compare_paths(&engine, &snapshot, None, "quiescent sweep")
            .unwrap_or_else(|d| panic!("scan paths diverged: {d}"));
    }
    // Total row count sanity: each writer rolls back rounds where
    // round % 7 == 3 (6 of its 40), commits the rest; plus the seed
    // batch; 4 rows per batch.
    let expected = ((WRITERS * (WRITES_PER_WRITER - 6)) + 1) * 4;
    let total = engine
        .query(
            ORACLE_CUBE,
            &build_query(1),
            cubrick::IsolationMode::Snapshot,
        )
        .unwrap();
    assert_eq!(total.rows[0].1[0], expected as f64, "row count drifted");
}

/// BESS-packed bricks through the full scan battery (which includes
/// GROUP BY + ORDER BY + LIMIT and empty/full coordinate-set filter
/// shapes via `oracle::compare_paths`), in both cold- and warm-cache
/// configurations. Bess bricks have no per-dimension slices, so this
/// pins the kernels' gather fallback against the row-at-a-time
/// reference at every epoch, including an open transaction's
/// snapshot with a non-empty deps set.
#[test]
fn bess_bricks_agree_with_reference_cold_and_warm() {
    let configs = [
        (
            "cold",
            ScanConfig {
                parallel_threshold: 1,
                cache_capacity: 0,
                agg_cache_capacity: 0,
                kernel: ScanKernel::Vectorized,
                ..ScanConfig::default()
            },
        ),
        ("warm", ScanConfig::parallel_cached(4096)),
    ];
    for (label, config) in configs {
        let engine = Engine::new(4)
            .with_scan_config(config)
            .with_dim_storage(DimStorage::Bess);
        engine.create_cube(oracle_schema()).unwrap();
        for round in 0..8 {
            engine
                .load(ORACLE_CUBE, &gen_rows(round, round), 0)
                .unwrap();
        }
        // An open transaction: its uncommitted rows must stay
        // invisible to committed snapshots on both paths.
        let txn = engine.begin();
        engine.append(ORACLE_CUBE, &gen_rows(50, 1), &txn).unwrap();
        let (lse, lce) = (engine.manager().lse(), engine.manager().lce());
        for pass in 0..2 {
            for epoch in lse..=lce {
                let snapshot = Snapshot::committed(epoch);
                compare_paths(
                    &engine,
                    &snapshot,
                    None,
                    &format!("bess {label} pass {pass}"),
                )
                .unwrap_or_else(|d| panic!("bess {label} diverged: {d}"));
            }
        }
        let in_txn = txn.snapshot().clone();
        compare_paths(&engine, &in_txn, None, &format!("bess {label} in-txn"))
            .unwrap_or_else(|d| panic!("bess {label} in-txn diverged: {d}"));
        match engine.visibility_cache_stats() {
            Some(stats) => {
                assert_eq!(label, "warm");
                assert!(stats.hits > 0, "warm run never hit the cache: {stats:?}");
            }
            None => assert_eq!(label, "cold", "cold config must disable the cache"),
        }
        engine.commit(&txn).unwrap();
    }
}
