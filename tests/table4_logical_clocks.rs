//! Table IV: epoch clocks advancing on a 3-node cluster, plus the
//! Section IV-C begin-broadcast case analysis.

use aosi_repro::cluster::{ProtocolCluster, SimulatedNetwork};

fn cluster(n: u64) -> ProtocolCluster {
    ProtocolCluster::new(n, SimulatedNetwork::instant())
}

#[test]
fn table_iv_event_sequence() {
    let c = cluster(3);
    let ec = |n| c.manager(n).clock().current_ec();

    assert_eq!((ec(1), ec(2), ec(3)), (1, 2, 3), "row 0: initial ECs");

    let mut t1 = c.begin_rw(1);
    assert_eq!(t1.epoch, 1);
    assert_eq!((ec(1), ec(2), ec(3)), (4, 2, 3), "row 1: create(n1)");

    c.broadcast_begin(&mut t1, 1024).unwrap();
    assert_eq!((ec(1), ec(2), ec(3)), (4, 5, 6), "row 2: append(T1)");

    let t6 = c.begin_rw(3);
    assert_eq!(t6.epoch, 6);
    assert_eq!((ec(1), ec(2), ec(3)), (4, 5, 9), "row 3: create(n3)");

    let t5 = c.begin_rw(2);
    assert_eq!(t5.epoch, 5);
    assert_eq!((ec(1), ec(2), ec(3)), (4, 8, 9), "row 4: create(n2)");

    // "Note that in this case the logical order does not reflect the
    // chronological order of events since transaction T6 was actually
    // started before T5."
    assert!(t6.epoch > t5.epoch);

    c.commit(&t1).unwrap();
    assert_eq!((ec(1), ec(2), ec(3)), (10, 8, 9), "row 5: commit(T1)");
}

/// Section IV-C: after transaction i's initial broadcast, every
/// other transaction j falls into one of the five categories, and in
/// each case i's snapshot treats j correctly.
#[test]
fn begin_broadcast_case_analysis() {
    let c = cluster(2);

    // j committed with j < i: visible.
    let mut j_committed = c.begin_rw(2);
    c.broadcast_begin(&mut j_committed, 0).unwrap();
    c.commit(&j_committed).unwrap();

    // j pending with j < i: in deps after the broadcast union.
    let mut j_pending = c.begin_rw(2);
    c.broadcast_begin(&mut j_pending, 0).unwrap();

    // i begins on the other node.
    let mut i = c.begin_rw(1);
    c.broadcast_begin(&mut i, 0).unwrap();
    let snap = i.snapshot();
    assert!(snap.sees(j_committed.epoch), "committed j < i visible");
    assert!(
        !snap.sees(j_pending.epoch),
        "pending j < i excluded via deps"
    );
    assert!(i.deps().contains(&j_pending.epoch));

    // j committed or pending with j > i: invisible by timestamp
    // ordering.
    let mut j_later = c.begin_rw(2);
    c.broadcast_begin(&mut j_later, 0).unwrap();
    assert!(j_later.epoch > i.epoch);
    assert!(!snap.sees(j_later.epoch));
    c.commit(&j_later).unwrap();
    assert!(!snap.sees(j_later.epoch), "still invisible after commit");

    // j yet to be initialized: guaranteed j > i because i's broadcast
    // pushed every node's EC past i.
    for node in 1..=2 {
        assert!(c.manager(node).clock().current_ec() > i.epoch);
    }
    let j_future = c.begin_rw(2);
    assert!(j_future.epoch > i.epoch);

    c.commit(&i).unwrap();
    c.commit(&j_pending).unwrap();
    c.rollback(&j_future).unwrap();
}

/// Section IV-B: the write-skew window — two concurrent transactions
/// where neither sees the other — is allowed (SI, not serializable),
/// and no transaction is ever rolled back for it.
#[test]
fn write_skew_is_admitted_without_rollbacks() {
    let c = cluster(2);
    let mut tk = c.begin_rw(1);
    c.broadcast_begin(&mut tk, 0).unwrap();
    let mut tl = c.begin_rw(2);
    c.broadcast_begin(&mut tl, 0).unwrap();
    assert!(tk.epoch < tl.epoch);
    assert!(!tl.snapshot().sees(tk.epoch), "k pending when l began");
    assert!(!tk.snapshot().sees(tl.epoch), "l > k");
    // Both commit fine — the protocol "guarantees to never rollback
    // transactions" for isolation reasons.
    c.commit(&tk).unwrap();
    c.commit(&tl).unwrap();
    for node in 1..=2 {
        assert_eq!(c.manager(node).lce(), tl.epoch);
    }
}

/// Strided clocks: epochs issued by different nodes never collide,
/// even under heavy interleaving with Lamport merges.
#[test]
fn strided_epochs_never_collide_cluster_wide() {
    let c = cluster(5);
    let mut seen = std::collections::HashSet::new();
    let mut open = Vec::new();
    for round in 0..200u64 {
        let node = round % 5 + 1;
        let mut t = c.begin_rw(node);
        c.broadcast_begin(&mut t, 0).unwrap();
        assert!(seen.insert(t.epoch), "epoch {} reused", t.epoch);
        open.push(t);
        if open.len() > 3 {
            let t = open.remove(0);
            c.commit(&t).unwrap();
        }
    }
    for t in open {
        c.commit(&t).unwrap();
    }
}
