//! Seeded chaos suite: drives the multi-node protocol (and the full
//! Cubrick cluster) under every injected fault class with the online
//! SI checker attached.
//!
//! Everything is deterministic: the fault plan's RNG and the
//! workload's RNG both derive from the test seed, so any failure
//! replays exactly. Override the seed list with a comma-separated
//! `AOSI_CHAOS_SEEDS` environment variable (the CI chaos job pins
//! it).

use std::collections::BTreeSet;
use std::time::Duration;

use aosi::{Epoch, Snapshot};
use checker::{fingerprint_rows, SiChecker, TxnEvent};
use cluster::{
    DistributedTxn, FaultPlan, LatencyModel, ProtocolCluster, RetryPolicy, SimulatedNetwork,
};
use columnar::{Row, Value};
use cubrick::{
    AggFn, Aggregation, CubeSchema, Dimension, DistributedEngine, IsolationMode, Metric, Query,
};
use rand::{rngs::StdRng, Rng, SeedableRng};

const NODES: u64 = 3;

fn chaos_seeds() -> Vec<u64> {
    std::env::var("AOSI_CHAOS_SEEDS")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .collect::<Vec<u64>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2, 3])
}

/// Fast-retry policy for chaos runs (the backoff sleeps are real
/// time; determinism comes from the seeds, not the clock).
fn chaos_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 4,
        base_backoff: Duration::ZERO,
        max_backoff: Duration::ZERO,
    }
}

/// A single-threaded workload driver over the protocol layer that
/// mirrors every action into the [`SiChecker`].
struct Driver {
    cluster: ProtocolCluster,
    checker: SiChecker,
    rng: StdRng,
    active: Vec<DistributedTxn>,
    all_begun: Vec<Epoch>,
    rolled_back: BTreeSet<Epoch>,
    committed: BTreeSet<Epoch>,
    broadcast_failures: u64,
}

impl Driver {
    fn new(seed: u64, plan: FaultPlan) -> Self {
        let network = SimulatedNetwork::with_faults(LatencyModel::instant(), plan);
        Driver {
            cluster: ProtocolCluster::with_retry(NODES, network, chaos_retry()),
            checker: SiChecker::new(NODES),
            // Offset so the workload stream differs from the fault
            // stream even for equal seeds.
            rng: StdRng::seed_from_u64(seed ^ 0xD1CE),
            active: Vec::new(),
            all_begun: Vec::new(),
            rolled_back: BTreeSet::new(),
            committed: BTreeSet::new(),
            broadcast_failures: 0,
        }
    }

    /// Epochs a snapshot would surface, as the driver knows them:
    /// everything the predicate admits minus physically-removed
    /// (rolled-back) epochs. Feeding this to the checker closes the
    /// loop — if the protocol let a pending or excluded epoch
    /// through, it shows up here.
    fn visible(&self, snap: &Snapshot) -> BTreeSet<Epoch> {
        self.all_begun
            .iter()
            .copied()
            .filter(|&e| snap.sees(e) && !self.rolled_back.contains(&e))
            .collect()
    }

    fn begin(&mut self) {
        let node = self.rng.gen_range(1..=NODES);
        let mut txn = self.cluster.begin_rw(node);
        let mut ok = false;
        for _ in 0..3 {
            if self.cluster.broadcast_begin(&mut txn, 32).is_ok() {
                ok = true;
                break;
            }
        }
        if ok {
            self.checker.record(TxnEvent::Begin {
                node,
                epoch: txn.epoch,
                deps: txn.deps().clone(),
            });
            self.all_begun.push(txn.epoch);
            self.active.push(txn);
        } else {
            // The begin never completed cluster-wide: abandon it.
            // The rollback still fans out to the nodes a delayed
            // begin might yet reach.
            self.broadcast_failures += 1;
            self.cluster.rollback(&txn).unwrap();
        }
    }

    fn finish_one(&mut self, rollback: bool) {
        if self.active.is_empty() {
            return;
        }
        let idx = self.rng.gen_range(0..self.active.len());
        let txn = self.active.swap_remove(idx);
        if rollback {
            self.cluster.rollback(&txn).unwrap();
            self.rolled_back.insert(txn.epoch);
            self.checker.record(TxnEvent::Rollback {
                node: txn.origin,
                epoch: txn.epoch,
            });
        } else {
            self.cluster.commit(&txn).unwrap();
            self.committed.insert(txn.epoch);
            self.checker.record(TxnEvent::Commit {
                node: txn.origin,
                epoch: txn.epoch,
            });
        }
    }

    fn forward(&mut self) {
        if self.active.is_empty() {
            return;
        }
        let idx = self.rng.gen_range(0..self.active.len());
        let target = self.rng.gen_range(1..=NODES);
        // A lost forward is the caller's problem (it would abort the
        // data operation); the protocol invariants hold either way.
        let _ = self.cluster.forward_op(&self.active[idx], &[target], 64);
    }

    fn ro_read(&mut self) {
        let node = self.rng.gen_range(1..=NODES);
        let snap = self.cluster.begin_ro(node);
        let observed = self.visible(&snap);
        let fp = fingerprint_rows(observed.iter().copied());
        self.checker.record(TxnEvent::Read {
            node,
            snapshot_epoch: snap.epoch(),
            deps: snap.deps().clone(),
            observed,
            reader: None,
            // One key for all RO reads: any two nodes whose LCE
            // lands on the same epoch must expose the same history.
            key: "ro".into(),
            fingerprint: fp,
        });
    }

    fn rw_read(&mut self) {
        if self.active.is_empty() {
            return;
        }
        let idx = self.rng.gen_range(0..self.active.len());
        let txn = &self.active[idx];
        let snap = txn.snapshot();
        let observed = self.visible(&snap);
        let fp = fingerprint_rows(observed.iter().copied());
        self.checker.record(TxnEvent::Read {
            node: txn.origin,
            snapshot_epoch: snap.epoch(),
            deps: snap.deps().clone(),
            observed,
            reader: Some(txn.epoch),
            key: format!("rw{}", txn.epoch),
            fingerprint: fp,
        });
    }

    fn sample_clocks(&mut self) {
        for node in 1..=NODES {
            let m = self.cluster.manager(node);
            self.checker.record(TxnEvent::ClockSample {
                node,
                ec: m.clock().current_ec(),
                lce: m.lce(),
                lse: m.lse(),
            });
        }
    }

    fn step(&mut self) {
        match self.rng.gen_range(0..10u32) {
            0..=3 => self.begin(),
            4..=5 => self.finish_one(false),
            6 => self.finish_one(true),
            7 => self.forward(),
            8 => self.ro_read(),
            _ => self.rw_read(),
        }
        self.sample_clocks();
    }

    /// Finishes every open transaction, settles the wire, and
    /// asserts the end state: checker clean, nothing stuck pending,
    /// and (once fully settled) LCE converged cluster-wide to the
    /// highest committed epoch.
    fn drain_and_verify(&mut self, label: &str) {
        while !self.active.is_empty() {
            let rollback = self.rng.gen_bool(0.2);
            self.finish_one(rollback);
        }
        let settled = self.cluster.settle();
        self.sample_clocks();
        self.checker.assert_clean();
        assert!(
            self.checker.events_checked() > 0,
            "{label}: the run never fed the checker"
        );
        for node in 1..=NODES {
            assert!(
                self.cluster.manager(node).pending_txs().is_empty(),
                "{label}: node {node} has transactions stuck pending: {:?}",
                self.cluster.manager(node).pending_txs()
            );
        }
        if settled {
            assert_eq!(self.cluster.unacked_len(), 0, "{label}");
            let expect = self.committed.iter().max().copied().unwrap_or(0);
            for node in 1..=NODES {
                assert_eq!(
                    self.cluster.manager(node).lce(),
                    expect,
                    "{label}: node {node} LCE did not converge"
                );
            }
        }
    }
}

fn run_protocol_chaos(label: &str, seed: u64, plan: FaultPlan, steps: usize) -> Driver {
    let mut d = Driver::new(seed, plan);
    for _ in 0..steps {
        d.step();
    }
    d.drain_and_verify(label);
    d
}

#[test]
fn chaos_drops() {
    for seed in chaos_seeds() {
        let plan = FaultPlan::seeded(seed).drop_p(0.10);
        let d = run_protocol_chaos("drops", seed, plan, 150);
        let (drops, _, _, _) = d.cluster.network().fault_stats();
        assert!(drops > 0, "seed {seed}: the drop plan never fired");
        assert!(
            d.cluster.metrics().retries.get() > 0,
            "seed {seed}: drops must force retries"
        );
    }
}

#[test]
fn chaos_duplicates() {
    for seed in chaos_seeds() {
        let plan = FaultPlan::seeded(seed).dup_p(0.25);
        let d = run_protocol_chaos("duplicates", seed, plan, 150);
        let (_, dups, _, _) = d.cluster.network().fault_stats();
        assert!(dups > 0, "seed {seed}: the duplicate plan never fired");
        assert!(
            d.cluster.metrics().dedup_hits.get() > 0,
            "seed {seed}: duplicates must hit the idempotency filter"
        );
    }
}

#[test]
fn chaos_delay_reorder() {
    for seed in chaos_seeds() {
        let plan = FaultPlan::seeded(seed).delay_p(0.20).delay_horizon(8);
        let d = run_protocol_chaos("delay", seed, plan, 150);
        let (_, _, delays, _) = d.cluster.network().fault_stats();
        assert!(delays > 0, "seed {seed}: the delay plan never fired");
        assert!(
            d.checker.events_checked() > 300,
            "seed {seed}: workload too small to mean anything"
        );
    }
}

#[test]
fn chaos_crash_restart() {
    for seed in chaos_seeds() {
        // Two scheduled outages in message-sequence time plus one
        // scripted crash/restart mid-run.
        let plan = FaultPlan::seeded(seed).crash(2, 40, 80).crash(3, 200, 230);
        let mut d = Driver::new(seed, plan);
        for step in 0..150 {
            if step == 60 {
                d.cluster.network().crash_node(1.max(seed % NODES + 1));
            }
            if step == 90 {
                d.cluster.network().restart_node(1.max(seed % NODES + 1));
            }
            d.step();
        }
        d.drain_and_verify("crash");
        let (_, _, _, crash_drops) = d.cluster.network().fault_stats();
        assert!(
            crash_drops > 0,
            "seed {seed}: no message ever hit an outage"
        );
    }
}

#[test]
fn chaos_combined() {
    for seed in chaos_seeds() {
        let plan = FaultPlan::seeded(seed)
            .drop_p(0.05)
            .dup_p(0.05)
            .delay_p(0.08)
            .delay_horizon(6)
            .crash(2, 100, 130);
        let d = run_protocol_chaos("combined", seed, plan, 200);
        // The report must carry the full fault/retry story for this
        // run (CI greps these counters for regressions).
        let mut report = obs::ReportBuilder::new();
        d.cluster.network().report(&mut report);
        d.cluster.report(&mut report);
        let text = report.finish();
        assert!(text.contains("[cluster.faults]"), "report:\n{text}");
        assert!(text.contains("[cluster.protocol]"), "report:\n{text}");
        assert!(text.contains("retries"), "report:\n{text}");
    }
}

/// The full engine under combined faults: loads, deletes, and
/// queries keep conservation (no lost or phantom rows) and committed
/// reads stay stable when replayed at an explicit snapshot.
#[test]
fn chaos_cubrick_cluster() {
    for seed in chaos_seeds() {
        let plan = FaultPlan::seeded(seed)
            .drop_p(0.04)
            .dup_p(0.04)
            .delay_p(0.05)
            .delay_horizon(6);
        let network = SimulatedNetwork::with_faults(LatencyModel::instant(), plan);
        let d = DistributedEngine::new(NODES, 2, network);
        d.create_cube(
            CubeSchema::new(
                "events",
                vec![
                    Dimension::string("region", 8, 1),
                    Dimension::int("day", 32, 4),
                ],
                vec![Metric::int("likes")],
            )
            .unwrap(),
        )
        .unwrap();
        let checker = SiChecker::new(NODES);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0B1);
        let sum_query = Query::aggregate(vec![Aggregation::new(AggFn::Sum, "likes")]);
        let total_from = |origin: u64| -> f64 {
            d.query(origin, "events", &sum_query, IsolationMode::Snapshot)
                .unwrap()
                .scalar()
                .unwrap_or(0.0)
        };

        let mut committed_total = 0.0f64;
        let mut probes: Vec<(Snapshot, u64)> = Vec::new();
        for i in 0..30 {
            let origin = rng.gen_range(1..=NODES);
            let batch = 20;
            let rows: Vec<Row> = (0..batch)
                .map(|r| {
                    vec![
                        Value::from(["us", "br", "mx"][r % 3]),
                        Value::from(((i * 7 + r) % 32) as i64),
                        Value::from(1i64),
                    ]
                })
                .collect();
            match d.load(origin, "events", &rows, 0) {
                Ok(outcome) => {
                    assert_eq!(outcome.accepted, batch);
                    committed_total += batch as f64;
                }
                Err(_) => {
                    // Unreachable node: the load rolled back before
                    // flushing anything — conservation must hold.
                }
            }

            // Conservation under SI: a query sees an exact prefix of
            // the committed loads — whole batches, never more than
            // has committed, never a torn batch.
            let seen = total_from(rng.gen_range(1..=NODES));
            assert!(
                seen <= committed_total,
                "seed {seed}: phantom rows ({seen} > {committed_total})"
            );
            assert_eq!(
                seen % batch as f64,
                0.0,
                "seed {seed}: torn batch visible ({seen})"
            );

            // Pin a snapshot and fingerprint it now...
            let snap = d.protocol().begin_ro(origin);
            let fp = d
                .query_at(origin, "events", &sum_query, snap.clone())
                .unwrap()
                .scalar()
                .unwrap_or(0.0)
                .to_bits();
            checker.record(TxnEvent::Read {
                node: origin,
                snapshot_epoch: snap.epoch(),
                deps: snap.deps().clone(),
                observed: BTreeSet::new(),
                reader: None,
                key: "sum".into(),
                fingerprint: fp,
            });
            probes.push((snap, fp));

            // ...and replay an older snapshot from a *different*
            // coordinator: the answer must not have changed.
            let (old_snap, old_fp) = probes[rng.gen_range(0..probes.len())].clone();
            let replay_origin = rng.gen_range(1..=NODES);
            let replay = d
                .query_at(replay_origin, "events", &sum_query, old_snap.clone())
                .unwrap()
                .scalar()
                .unwrap_or(0.0)
                .to_bits();
            assert_eq!(
                replay,
                old_fp,
                "seed {seed}: committed read at epoch {} changed",
                old_snap.epoch()
            );
            checker.record(TxnEvent::Read {
                node: replay_origin,
                snapshot_epoch: old_snap.epoch(),
                deps: old_snap.deps().clone(),
                observed: BTreeSet::new(),
                reader: None,
                key: "sum".into(),
                fingerprint: replay,
            });

            for node in 1..=NODES {
                let m = d.protocol().manager(node);
                checker.record(TxnEvent::ClockSample {
                    node,
                    ec: m.clock().current_ec(),
                    lce: m.lce(),
                    lse: m.lse(),
                });
            }
        }

        assert!(
            d.protocol().settle(),
            "seed {seed}: cluster failed to settle"
        );
        checker.assert_clean();
        for origin in 1..=NODES {
            assert_eq!(
                total_from(origin),
                committed_total,
                "seed {seed}: origin {origin} lost rows after settling"
            );
        }
        let report = d.metrics_report();
        assert!(report.contains("[cluster.faults]"), "report:\n{report}");
        assert!(report.contains("[cluster.protocol]"), "report:\n{report}");
    }
}
