//! A retail data mart running the paper's intended workflow:
//!
//! * A daily ETL job loads fact batches (idempotent, re-runnable).
//! * "Fact updates" are modelled as new facts (Section II-A1): an
//!   order cancellation is a new row with a negative amount, never an
//!   in-place update.
//! * Dimension changes use snapshot partitions (Section II-A2):
//!   each ETL run loads a full dimension snapshot under a new
//!   `snapshot_day`, and queries pin the latest one.
//! * Retention is enforced with partition-level deletes
//!   (Section II-B): days falling off the window are dropped whole,
//!   then purge reclaims them once LSE passes.
//!
//! ```sh
//! cargo run --release --example retail_datamart
//! ```

use aosi_repro::columnar::Value;
use aosi_repro::cubrick::{
    AggFn, Aggregation, CubeSchema, DimFilter, Dimension, Engine, IsolationMode, Metric, Query,
};

const DAYS: i64 = 8;
const RETENTION_DAYS: i64 = 4;

fn sales_row(day: i64, store: &str, units: i64, amount: f64) -> Vec<Value> {
    vec![
        Value::I64(day),
        store.into(),
        Value::I64(units),
        Value::F64(amount),
    ]
}

fn main() {
    let engine = Engine::new(4);
    // Facts: one partition range per day so retention deletes are
    // exactly partition drops.
    engine
        .create_cube(
            CubeSchema::new(
                "sales",
                vec![
                    Dimension::int("day", 64, 1),
                    Dimension::string("store", 16, 4),
                ],
                vec![Metric::int("units"), Metric::float("amount")],
            )
            .unwrap(),
        )
        .unwrap();
    // Dimension snapshots: store attributes, re-loaded whole per run.
    engine
        .create_cube(
            CubeSchema::new(
                "store_dim",
                vec![
                    Dimension::int("snapshot_day", 64, 1),
                    Dimension::string("store", 16, 16),
                ],
                vec![Metric::int("is_open")],
            )
            .unwrap(),
        )
        .unwrap();

    let stores = ["downtown", "airport", "harbor", "mall"];
    for day in 0..DAYS {
        // --- daily ETL: facts ---
        let mut batch = Vec::new();
        for (i, store) in stores.iter().enumerate() {
            batch.push(sales_row(day, store, 10 + i as i64, 100.0 + day as f64));
        }
        // A cancelled order arrives as a *new fact*, not an update.
        if day == 3 {
            batch.push(sales_row(3, "airport", -1, -100.0));
        }
        engine.load("sales", &batch, 0).expect("daily fact load");

        // --- daily ETL: dimension snapshot (Type-1 style, whole
        // partition per run; the harbor store closes on day 5) ---
        let dim_batch: Vec<Vec<Value>> = stores
            .iter()
            .map(|store| {
                let open = !(*store == "harbor" && day >= 5);
                vec![Value::I64(day), (*store).into(), Value::I64(open as i64)]
            })
            .collect();
        engine
            .load("store_dim", &dim_batch, 0)
            .expect("dim snapshot");

        // --- retention: drop fact partitions older than the window ---
        if day >= RETENTION_DAYS {
            let expired = day - RETENTION_DAYS;
            let (epoch, marked) = engine
                .delete_where("sales", &[DimFilter::new("day", vec![Value::I64(expired)])])
                .expect("retention delete");
            println!("day {day}: dropped day-{expired} partitions ({marked} bricks) as T{epoch}");
        }

        // Background maintenance, as the paper's purge procedure.
        let stats = engine.advance_lse_and_purge();
        if stats.rows_purged > 0 {
            println!(
                "day {day}: purge reclaimed {} rows, {} epochs entries",
                stats.rows_purged, stats.entries_reclaimed
            );
        }
    }

    // --- the dashboards ---
    println!("\nunits by store over the retention window:");
    let per_store = engine
        .query(
            "sales",
            &Query::aggregate(vec![
                Aggregation::new(AggFn::Sum, "units"),
                Aggregation::new(AggFn::Sum, "amount"),
            ])
            .grouped_by("store"),
            IsolationMode::Snapshot,
        )
        .expect("dashboard query");
    for (store, values) in &per_store.rows {
        println!(
            "  {:<10} units={:<6} amount={:.0}",
            store[0], values[0], values[1]
        );
    }

    // Pin the latest dimension snapshot when joining.
    let latest_snapshot = DAYS - 1;
    let open_stores = engine
        .query(
            "store_dim",
            &Query::aggregate(vec![Aggregation::new(AggFn::Sum, "is_open")]).filter(
                DimFilter::new("snapshot_day", vec![Value::I64(latest_snapshot)]),
            ),
            IsolationMode::Snapshot,
        )
        .expect("dim query");
    println!(
        "\nstores open in snapshot day {latest_snapshot}: {} of {}",
        open_stores.scalar().unwrap(),
        stores.len()
    );

    let memory = engine.memory();
    println!(
        "\nretention left {} fact+dim rows resident; AOSI metadata {} bytes \
         (vs {} for per-record timestamps)",
        memory.rows, memory.aosi_bytes, memory.mvcc_baseline_bytes
    );
    assert!(
        per_store
            .rows
            .iter()
            .all(|(_, v)| v[0] <= (RETENTION_DAYS * 13) as f64),
        "old days must be gone"
    );
}
