//! Realtime metrics pipeline on a simulated cluster, with durability:
//!
//! * several producers stream event batches into a 4-node
//!   distributed engine (Section IV's transaction flow end to end);
//! * dashboards query concurrently under snapshot isolation and must
//!   always observe transactionally consistent totals;
//! * a background flush loop persists rounds and advances LSE
//!   (Section III-D), and at the end we crash one node and recover it
//!   from its flush directory.
//!
//! ```sh
//! cargo run --release --example realtime_metrics
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use aosi_repro::cluster::{ReplicationTracker, SimulatedNetwork};
use aosi_repro::columnar::Value;
use aosi_repro::cubrick::{
    AggFn, Aggregation, CubeSchema, Dimension, DistributedEngine, Engine, IsolationMode, Metric,
    Query,
};
use aosi_repro::wal::{recover_into, FlushController};

const NODES: u64 = 4;
const PRODUCERS: usize = 3;
const BATCHES_PER_PRODUCER: u64 = 60;
const BATCH_SIZE: usize = 200;

fn schema() -> CubeSchema {
    CubeSchema::new(
        "metrics",
        vec![
            Dimension::string("service", 8, 1),
            Dimension::int("minute", 1024, 64),
        ],
        vec![Metric::int("requests"), Metric::int("errors")],
    )
    .unwrap()
}

fn main() {
    let cluster = DistributedEngine::new(NODES, 2, SimulatedNetwork::instant());
    cluster.create_cube(schema()).expect("cluster DDL");

    let services = ["web", "api", "feed"];
    let total_requests = AtomicU64::new(0);
    let done = AtomicBool::new(false);

    std::thread::scope(|scope| {
        // Producers: each batch is one distributed implicit txn with
        // exactly `BATCH_SIZE` requests, so any consistent snapshot
        // total is a multiple of BATCH_SIZE.
        for producer in 0..PRODUCERS {
            let cluster = &cluster;
            let total_requests = &total_requests;
            scope.spawn(move || {
                let origin = (producer as u64 % NODES) + 1;
                let service = services[producer % services.len()];
                for batch_id in 0..BATCHES_PER_PRODUCER {
                    let rows: Vec<Vec<Value>> = (0..BATCH_SIZE)
                        .map(|i| {
                            let minute = (batch_id as i64 * 7 + i as i64) % 1024;
                            vec![
                                service.into(),
                                Value::I64(minute),
                                Value::I64(1),
                                Value::I64(u64::from(i % 50 == 0) as i64),
                            ]
                        })
                        .collect();
                    cluster
                        .load(origin, "metrics", &rows, 0)
                        .expect("stream batch");
                    total_requests.fetch_add(BATCH_SIZE as u64, Ordering::Relaxed);
                }
            });
        }

        // Dashboards: snapshot totals must always be whole batches.
        for dashboard in 0..2u64 {
            let cluster = &cluster;
            let done = &done;
            scope.spawn(move || {
                let origin = (dashboard % NODES) + 1;
                let mut observations = 0u64;
                while !done.load(Ordering::Relaxed) {
                    let result = cluster
                        .query(
                            origin,
                            "metrics",
                            &Query::aggregate(vec![Aggregation::new(AggFn::Sum, "requests")]),
                            IsolationMode::Snapshot,
                        )
                        .expect("dashboard query");
                    let total = result.scalar().unwrap_or(0.0) as u64;
                    assert_eq!(
                        total % BATCH_SIZE as u64,
                        0,
                        "snapshot saw a partial batch — SI violated"
                    );
                    observations += 1;
                }
                println!("dashboard {dashboard}: {observations} consistent snapshot reads");
            });
        }

        // Producers run inside this scope; signal dashboards once the
        // producer threads complete.
        scope.spawn(|| {
            // Busy-wait on the produced count; producers are peers in
            // the same scope.
            while total_requests.load(Ordering::Relaxed)
                < PRODUCERS as u64 * BATCHES_PER_PRODUCER * BATCH_SIZE as u64
            {
                std::thread::yield_now();
            }
            done.store(true, Ordering::Relaxed);
        });
    });

    // --- durability: flush every node, then crash + recover node 2 ---
    let base = std::env::temp_dir().join(format!("aosi-realtime-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let tracker = ReplicationTracker::new(NODES);
    for node in 1..=NODES {
        let mut ctl =
            FlushController::new(base.join(format!("node-{node}")), node).expect("flush dir");
        let outcome = ctl
            .flush_round(cluster.engine(node), &tracker)
            .expect("flush");
        println!(
            "node {node}: flushed through epoch {} ({} deltas, LSE advanced: {})",
            outcome.lse_prime, outcome.deltas, outcome.lse_advanced
        );
    }
    // With every replica flushed, LSE advances and purge compacts.
    let purged = cluster.purge_all();
    println!(
        "purge after flush: {} epochs entries reclaimed across the cluster",
        purged.entries_reclaimed
    );

    let node2_rows = cluster.engine(2).memory().rows;
    let restored = Engine::new(2);
    restored.create_cube(schema()).expect("cube");
    let report = recover_into(&base.join("node-2"), &restored).expect("recovery");
    println!(
        "recovered node 2 from disk: {} rounds, {} rows (lost node held {})",
        report.rounds_applied, report.rows_recovered, node2_rows
    );
    assert_eq!(report.rows_recovered, node2_rows, "no data lost");

    let grand_total = cluster
        .query(
            1,
            "metrics",
            &Query::aggregate(vec![
                Aggregation::new(AggFn::Sum, "requests"),
                Aggregation::new(AggFn::Sum, "errors"),
            ])
            .grouped_by("service"),
            IsolationMode::Snapshot,
        )
        .expect("final query");
    println!("\nfinal per-service totals:");
    for (service, values) in &grand_total.rows {
        println!(
            "  {:<5} requests={:<7} errors={}",
            service[0], values[0], values[1]
        );
    }
    let _ = std::fs::remove_dir_all(&base);
}
