//! A scripted SQL session against the engine — the paper's Section
//! V-A example cube driven entirely through the SQL front-end.
//!
//! Pass your own statements as CLI arguments to run them instead of
//! the built-in script:
//!
//! ```sh
//! cargo run --release --example sql_session
//! cargo run --release --example sql_session -- \
//!     "CREATE CUBE t (k INT DIM(16, 4), v INT METRIC)" \
//!     "INSERT INTO t VALUES (1, 10), (2, 20)" \
//!     "SELECT SUM(v) FROM t"
//! ```

use aosi_repro::cubrick::sql::{execute, SqlError};
use aosi_repro::cubrick::Engine;

const SCRIPT: &[&str] = &[
    "CREATE CUBE test (region STRING DIM(4, 2), gender STRING DIM(4, 1), \
     likes INT METRIC, comments INT METRIC)",
    "INSERT INTO test VALUES ('us', 'male', 12, 3), ('us', 'female', 7, 1), \
     ('br', 'male', 5, 0), ('br', 'female', 2, 2), ('mx', 'female', 9, 4)",
    "SELECT SUM(likes), COUNT(*), AVG(comments) FROM test GROUP BY region",
    "SELECT SUM(likes) FROM test WHERE gender IN ('female')",
    "SELECT MIN(likes), MAX(likes) FROM test WHERE region IN ('us', 'br')",
    "SELECT SUM(likes) FROM test GROUP BY region, gender ORDER BY SUM(likes) DESC LIMIT 3",
    // The operation AOSI deliberately does not support:
    "UPDATE test SET likes = 100",
    // Partition-level retention instead:
    "DELETE FROM test WHERE gender IN ('male')",
    "SELECT COUNT(*) FROM test",
    // Time travel: the pre-delete snapshot stays readable while its
    // epoch is inside the [LSE, LCE] window (i.e. until PURGE below
    // moves LSE past it).
    "SELECT COUNT(*) FROM test AS OF 1",
    "PURGE",
    "SHOW MEMORY",
    "SHOW CUBES",
    "SHOW STATS",
    "DROP CUBE test",
];

fn main() {
    let engine = Engine::new(4);
    let args: Vec<String> = std::env::args().skip(1).collect();
    let statements: Vec<&str> = if args.is_empty() {
        SCRIPT.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };

    for sql in statements {
        println!("sql> {sql}");
        match execute(&engine, sql) {
            Ok(output) => println!("{}\n", output.render()),
            Err(e @ SqlError::Unsupported(_)) => {
                println!("rejected: {e}\n");
            }
            Err(e) => {
                eprintln!("error: {e}\n");
                std::process::exit(1);
            }
        }
    }
}
