//! Quickstart: create a cube, load data, query it under snapshot
//! isolation, and watch the AOSI metadata stay tiny.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use aosi_repro::columnar::Value;
use aosi_repro::cubrick::{
    AggFn, Aggregation, CubeSchema, DimFilter, Dimension, Engine, IsolationMode, Metric, Query,
};

fn main() {
    // The paper's Section V-A example cube:
    // CREATE CUBE(region STRING 4:2, gender STRING 4:1,
    //             likes INT, comments INT)
    let schema = CubeSchema::new(
        "test",
        vec![
            Dimension::string("region", 4, 2),
            Dimension::string("gender", 4, 1),
        ],
        vec![Metric::int("likes"), Metric::int("comments")],
    )
    .expect("valid schema");

    let engine = Engine::new(4);
    engine.create_cube(schema).expect("create cube");

    // Load a batch — one implicit AOSI transaction.
    let rows = vec![
        vec!["us".into(), "male".into(), Value::I64(12), Value::I64(3)],
        vec!["us".into(), "female".into(), Value::I64(7), Value::I64(1)],
        vec!["br".into(), "male".into(), Value::I64(5), Value::I64(0)],
        vec!["mx".into(), "female".into(), Value::I64(9), Value::I64(4)],
    ];
    let outcome = engine.load("test", &rows, 0).expect("load");
    println!(
        "loaded {} rows as transaction T{} across {} brick(s)",
        outcome.accepted, outcome.epoch, outcome.bricks_touched
    );

    // Query under snapshot isolation: likes by region.
    let query = Query::aggregate(vec![
        Aggregation::new(AggFn::Sum, "likes"),
        Aggregation::new(AggFn::Count, "likes"),
    ])
    .grouped_by("region");
    let result = engine
        .query("test", &query, IsolationMode::Snapshot)
        .expect("query");
    println!("\nlikes by region:");
    for (region, values) in &result.rows {
        println!("  {:<4} sum={} rows={}", region[0], values[0], values[1]);
    }

    // An explicit transaction: its writes are invisible until commit.
    let txn = engine.begin();
    engine
        .append(
            "test",
            &[vec![
                "us".into(),
                "male".into(),
                Value::I64(1000),
                Value::I64(0),
            ]],
            &txn,
        )
        .expect("append");
    let committed_only = engine
        .query(
            "test",
            &Query::aggregate(vec![Aggregation::new(AggFn::Sum, "likes")])
                .filter(DimFilter::new("region", vec!["us".into()])),
            IsolationMode::Snapshot,
        )
        .expect("query");
    println!(
        "\nwhile T{} is open, a snapshot reader sums us-likes = {} (not 1019)",
        txn.epoch(),
        committed_only.scalar().unwrap()
    );
    engine.commit(&txn).expect("commit");
    let after = engine
        .query(
            "test",
            &Query::aggregate(vec![Aggregation::new(AggFn::Sum, "likes")])
                .filter(DimFilter::new("region", vec!["us".into()])),
            IsolationMode::Snapshot,
        )
        .expect("query");
    println!(
        "after commit it sums us-likes = {}",
        after.scalar().unwrap()
    );

    // The whole concurrency-control footprint.
    let memory = engine.memory();
    println!(
        "\nmemory: {} rows, {} data, {} AOSI metadata (MVCC would need {})",
        memory.rows, memory.data_bytes, memory.aosi_bytes, memory.mvcc_baseline_bytes
    );
}
