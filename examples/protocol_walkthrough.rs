//! A narrated walkthrough of the AOSI protocol, reproducing the
//! paper's running examples:
//!
//! * Table I — epoch counters and pending sets across three
//!   concurrent transactions.
//! * Figure 1 — the epochs vector under interleaved appends.
//! * Figure 2 / Table III — partition deletes and the visibility
//!   bitmaps different readers derive.
//! * Figure 3 — purge at LSE 3 and LSE 5.
//! * Table IV — Lamport epoch clocks on a 3-node cluster.
//!
//! ```sh
//! cargo run --release --example protocol_walkthrough
//! ```

use aosi_repro::aosi::{EpochsVector, Snapshot, TxnManager};
use aosi_repro::cluster::{ProtocolCluster, SimulatedNetwork};

fn render(v: &EpochsVector) -> String {
    v.entries().iter().map(|e| format!("{e:?} ")).collect()
}

fn main() {
    println!("== Table I: three concurrent transactions on one node ==");
    let mgr = TxnManager::single_node();
    let t1 = mgr.begin_rw();
    let t2 = mgr.begin_rw();
    let t3 = mgr.begin_rw();
    println!(
        "start T1..T3   EC={} LCE={} pending={:?} T2.deps={:?} T3.deps={:?}",
        mgr.clock().current_ec(),
        mgr.lce(),
        mgr.pending_txs(),
        t2.snapshot().deps(),
        t3.snapshot().deps()
    );
    mgr.commit(&t1).unwrap();
    println!("commit T1      LCE={} (all priors finished)", mgr.lce());
    mgr.commit(&t3).unwrap();
    println!(
        "commit T3      LCE={} (T2 still pending: T3 is parked)",
        mgr.lce()
    );
    mgr.commit(&t2).unwrap();
    println!("commit T2      LCE={} (T2 and T3 released)", mgr.lce());

    println!("\n== Figure 1: the epochs vector under interleaved appends ==");
    let mut part = EpochsVector::new();
    part.append(1, 3);
    println!("(a) T1 +3 rows:   {}", render(&part));
    part.append(1, 2);
    println!("(b) T1 +2 rows:   {} (back entry extended)", render(&part));
    part.append(2, 4);
    println!("(c) T2 +4 rows:   {}", render(&part));
    part.append(1, 4);
    println!(
        "(d) T1 +4 rows:   {} (new entry: T1 not at back)",
        render(&part)
    );

    println!("\n== Figure 2(a) + Table III: deletes and visibility ==");
    let mut part = EpochsVector::new();
    part.append(1, 2);
    part.append(3, 2);
    part.append(1, 1);
    part.mark_delete(5);
    part.append(3, 4);
    part.append(7, 1);
    println!("epochs vector: {}", render(&part));
    for reader in [2u64, 4, 6, 8] {
        let bitmap = part.visible_bitmap(&Snapshot::committed(reader));
        println!("read txn {reader}: {}", bitmap.to_bit_string());
    }

    println!("\n== Figure 3: purge at LSE 3 and LSE 5 ==");
    let at3 = aosi_repro::aosi::purge::purge(&part, 3);
    println!(
        "LSE=3: {} (history merged; T5's delete still pending)",
        render(&at3.vector)
    );
    let at5 = aosi_repro::aosi::purge::purge(&part, 5);
    println!(
        "LSE=5: {} ({} rows reclaimed; only T7's record remains)",
        render(&at5.vector),
        at5.purged_rows
    );

    println!("\n== Table IV: Lamport epoch clocks on 3 nodes ==");
    let cluster = ProtocolCluster::new(3, SimulatedNetwork::instant());
    let ec = |n| cluster.manager(n).clock().current_ec();
    let show = |event: &str, c: &ProtocolCluster| {
        println!(
            "{event:<18} n1={} n2={} n3={}",
            c.manager(1).clock().current_ec(),
            c.manager(2).clock().current_ec(),
            c.manager(3).clock().current_ec()
        );
    };
    show("initial", &cluster);
    let mut t1 = cluster.begin_rw(1);
    show("create(n1) -> T1", &cluster);
    cluster.broadcast_begin(&mut t1, 1024).unwrap();
    show("append(T1)", &cluster);
    let t6 = cluster.begin_rw(3);
    show("create(n3) -> T6", &cluster);
    let t5 = cluster.begin_rw(2);
    show("create(n2) -> T5", &cluster);
    cluster.commit(&t1).unwrap();
    show("commit(T1)", &cluster);
    assert_eq!((ec(1), ec(2), ec(3)), (10, 8, 9), "Table IV's final row");
    println!("\n(T5 = epoch {}, T6 = epoch {})", t5.epoch, t6.epoch);
    cluster.commit(&t5).unwrap();
    cluster.commit(&t6).unwrap();
}
